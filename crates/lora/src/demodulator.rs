//! The LoRa demodulator (paper Fig. 6b).
//!
//! Pipeline, exactly as the paper wires it: "It begins by reading data
//! from the I/Q radio into the I/Q Deserializer […] we run the data
//! through a 14 tap FIR low-pass filter to suppress high frequency noise
//! and interference. We store the filtered samples in a buffer […] we
//! use the Chirp Generator module from the LoRa Modulator to generate a
//! baseline upchirp/downchirp symbol, and then we multiply that with the
//! received chirp symbol using our Complex Multiplier unit. The output
//! of the multiplication then goes to an FFT block […] Finally the
//! Symbol Detector scans the output of the FFT for peaks and records the
//! frequency of the peak to determine the symbol value. To detect chirp
//! type (upchirp/downchirp), we multiply each chirp symbol with both an
//! upchirp and downchirp and then compare the amplitudes of their FFT
//! peaks."

use tinysdr_dsp::chirp::{dechirp_into, ChirpConfig, ChirpGenerator};
use tinysdr_dsp::complex::Complex;
use tinysdr_dsp::fft::FftPlan;
use tinysdr_dsp::fir::{demod_frontend, Fir};

/// Reusable working state for one demodulator's `*_with` hot paths:
/// the front-end FIR (cloned from the demodulator so taps match), the
/// group-delay-compensated capture, and the dechirp/FFT symbol buffer.
/// Build with [`Demodulator::scratch`]; hold one per worker thread.
#[derive(Debug, Clone)]
pub struct DemodScratch {
    fir: Fir,
    filtered: Vec<Complex>,
    buf: Vec<Complex>,
}

use crate::packet::FrameParams;
use crate::phy::{self, CodeParams};

/// Result of detecting one chirp symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolDetection {
    /// Winning symbol value (FFT peak bin folded to `0..2^SF`).
    pub symbol: u16,
    /// Peak magnitude.
    pub magnitude: f64,
    /// Mean magnitude across bins (noise reference for thresholding).
    pub mean_magnitude: f64,
}

impl SymbolDetection {
    /// Peak-to-mean ratio; preamble detection thresholds on this.
    pub fn quality(&self) -> f64 {
        if self.mean_magnitude > 0.0 {
            self.magnitude / self.mean_magnitude
        } else {
            f64::INFINITY
        }
    }
}

/// A demodulated frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DemodFrame {
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
    /// Payload CRC passed.
    pub crc_ok: bool,
    /// Header intact.
    pub header_ok: bool,
    /// FEC corrections performed.
    pub corrections: usize,
    /// Sample index where the first payload symbol starts.
    pub payload_start: usize,
    /// Raw payload symbols prior to decoding.
    pub symbols: Vec<u16>,
}

/// The demodulator for one `(SF, BW, OSR)` configuration.
#[derive(Debug, Clone)]
pub struct Demodulator {
    cfg: ChirpConfig,
    frame_params: FrameParams,
    fir: Fir,
    plan: FftPlan,
    /// Conjugate base upchirp (dechirp reference for data symbols).
    up_ref: Vec<Complex>,
    /// Conjugate base downchirp (dechirp reference for SFD detection).
    down_ref: Vec<Complex>,
    /// Peak-to-mean quality needed to accept a preamble symbol.
    pub preamble_quality: f64,
}

impl Demodulator {
    /// Build a demodulator.
    pub fn new(cfg: ChirpConfig, frame_params: FrameParams) -> Self {
        assert_eq!(cfg.sf, frame_params.code.sf, "chirp and code SF must agree");
        let generator = ChirpGenerator::new(cfg);
        let up_ref = generator.dechirp_reference();
        let down_ref: Vec<Complex> = generator
            .downchirp()
            .into_iter()
            .map(|z| z.conj())
            .collect();
        let ns = cfg.samples_per_symbol();
        Demodulator {
            cfg,
            frame_params,
            fir: demod_frontend(0.45 / cfg.osr as f64),
            plan: FftPlan::new(ns),
            up_ref,
            down_ref,
            // at the SF8 sensitivity point the preamble peak-to-mean sits
            // near 5.7; noise-only windows max out near 2.7 — 3.5 splits
            // them with margin on both sides
            preamble_quality: 3.5,
        }
    }

    /// Convenience constructor matching [`crate::modulator::Modulator::standard`].
    pub fn standard(sf: u8, bw: f64, osr: usize, cr: u8) -> Self {
        let chirp = ChirpConfig::new(sf, bw, osr);
        let code = CodeParams::new(sf, cr);
        Demodulator::new(chirp, FrameParams::new(code))
    }

    /// Chirp configuration.
    pub fn config(&self) -> &ChirpConfig {
        &self.cfg
    }

    /// Fresh per-demodulator scratch state for the `*_with` hot paths:
    /// a private FIR clone plus the filtered-capture and dechirp/FFT
    /// buffers. One per worker thread; reusable across captures.
    pub fn scratch(&self) -> DemodScratch {
        DemodScratch {
            fir: self.fir.clone(),
            filtered: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Run the front-end low-pass filter over a capture with group-delay
    /// compensation: the output is sample-aligned with the input (the
    /// trailing edge is flushed with zeros).
    pub fn filter(&self, x: &[Complex]) -> Vec<Complex> {
        let mut f = self.fir.clone();
        let mut out = Vec::new();
        self.filter_core(x, &mut f, &mut out);
        out
    }

    /// The filter body, against caller-owned FIR state and output.
    fn filter_core(&self, x: &[Complex], f: &mut Fir, out: &mut Vec<Complex>) {
        f.reset();
        let delay = f.group_delay() as usize;
        f.process_into(x, out);
        for _ in 0..delay {
            out.push(f.push(Complex::ZERO));
        }
        out.drain(..delay);
    }

    fn detect_with(&self, window: &[Complex], reference: &[Complex]) -> SymbolDetection {
        let mut buf = Vec::with_capacity(window.len());
        self.detect_with_buf(window, reference, &mut buf)
    }

    /// Dechirp → FFT → peak against a caller-owned working buffer.
    /// Bit-identical to the allocating `detect_with`.
    fn detect_with_buf(
        &self,
        window: &[Complex],
        reference: &[Complex],
        buf: &mut Vec<Complex>,
    ) -> SymbolDetection {
        let ns = self.cfg.samples_per_symbol();
        assert_eq!(window.len(), ns, "window must be one symbol");
        dechirp_into(window, reference, buf);
        self.plan.forward(buf);
        let n = self.cfg.n_chips();
        let osr = self.cfg.osr;
        let mut best = (0u16, f64::MIN);
        let mut sum = 0.0;
        for s in 0..n {
            let mut mag = buf[s].abs();
            if osr > 1 {
                mag += buf[(ns - n + s) % ns].abs();
            }
            sum += mag;
            if mag > best.1 {
                best = (s as u16, mag);
            }
        }
        SymbolDetection {
            symbol: best.0,
            magnitude: best.1,
            mean_magnitude: sum / n as f64,
        }
    }

    /// Detect the symbol in an aligned window (dechirp → FFT → peak).
    pub fn detect_symbol(&self, window: &[Complex]) -> SymbolDetection {
        self.detect_with(window, &self.up_ref)
    }

    /// Detect chirp direction by comparing up- and down-dechirped peaks
    /// (the paper's chirp-type detector).
    pub fn detect_direction(&self, window: &[Complex]) -> tinysdr_dsp::chirp::ChirpDirection {
        let up = self.detect_with(window, &self.up_ref);
        let down = self.detect_with(window, &self.down_ref);
        if up.magnitude >= down.magnitude {
            tinysdr_dsp::chirp::ChirpDirection::Up
        } else {
            tinysdr_dsp::chirp::ChirpDirection::Down
        }
    }

    /// Chirp-symbol error rate over an *aligned* stream of known symbols
    /// — the measurement behind Figs. 11 and 15 ("We record the received
    /// RF signals in the FPGA memory and run them through our
    /// demodulator to compute a chirp symbol error rate").
    pub fn symbol_error_rate(&self, rx: &[Complex], sent: &[u16]) -> f64 {
        let (errors, total) = self.symbol_errors(rx, sent);
        if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        }
    }

    /// Raw `(errors, trials)` counts behind [`Self::symbol_error_rate`]
    /// — the waterfall sweeps accumulate counts so that per-point Wilson
    /// intervals and merged curves stay exact. Symbols whose window runs
    /// past the capture are counted as errors (a truncated capture lost
    /// them; ignoring them would understate the error rate).
    pub fn symbol_errors(&self, rx: &[Complex], sent: &[u16]) -> (u64, u64) {
        self.symbol_errors_with(rx, sent, &mut self.scratch())
    }

    /// [`Demodulator::symbol_errors`] against caller-owned scratch —
    /// the sweep engine's hot path, allocation-free in steady state and
    /// bit-identical to the allocating route.
    pub fn symbol_errors_with(
        &self,
        rx: &[Complex],
        sent: &[u16],
        scratch: &mut DemodScratch,
    ) -> (u64, u64) {
        let ns = self.cfg.samples_per_symbol();
        let DemodScratch { fir, filtered, buf } = scratch;
        self.filter_core(rx, fir, filtered);
        let mut errors = 0u64;
        for (i, &tx_sym) in sent.iter().enumerate() {
            let start = i * ns;
            if start + ns > filtered.len() {
                errors += (sent.len() - i) as u64;
                break;
            }
            let det = self.detect_with_buf(&filtered[start..start + ns], &self.up_ref, buf);
            if det.symbol != tx_sym {
                errors += 1;
            }
        }
        (errors, sent.len() as u64)
    }

    /// Detect every aligned symbol window of a capture — front-end
    /// filter, then dechirp/FFT/peak per `samples_per_symbol` chunk —
    /// into `units`. This is the stream modem's demodulation pipeline
    /// against caller-owned scratch: bit-identical to [`Demodulator::filter`]
    /// followed by per-window [`Demodulator::detect_symbol`], with zero
    /// steady-state allocation.
    pub fn detect_aligned_with(
        &self,
        rx: &[Complex],
        scratch: &mut DemodScratch,
        units: &mut Vec<u16>,
    ) {
        let ns = self.cfg.samples_per_symbol();
        let DemodScratch { fir, filtered, buf } = scratch;
        self.filter_core(rx, fir, filtered);
        units.clear();
        units.extend(
            filtered
                .chunks_exact(ns)
                .map(|w| self.detect_with_buf(w, &self.up_ref, buf).symbol),
        );
    }

    /// Locate the preamble in `rx` and return `(symbol_grid_start,
    /// preamble_window_index)`: the sample index of a symbol boundary
    /// inside the preamble.
    fn find_preamble(&self, rx: &[Complex], buf: &mut Vec<Complex>) -> Option<usize> {
        let ns = self.cfg.samples_per_symbol();
        let osr = self.cfg.osr;
        let n = self.cfg.n_chips() as i64;
        let needed = 3; // consecutive consistent windows
        let mut run = 0usize;
        let mut run_sym = 0u16;
        let mut run_start = 0usize;
        let mut k = 0usize;
        while (k + 1) * ns <= rx.len() {
            let det = self.detect_with_buf(&rx[k * ns..(k + 1) * ns], &self.up_ref, buf);
            if det.quality() >= self.preamble_quality {
                // tolerate ±1 chip jitter between windows (quantized
                // chirps + filter edges wobble the split-bin estimate)
                let close = {
                    let d = (det.symbol as i64 - run_sym as i64).rem_euclid(n);
                    d <= 1 || d == n - 1
                };
                if run > 0 && close {
                    run += 1;
                    run_sym = det.symbol;
                } else {
                    run = 1;
                    run_sym = det.symbol;
                    run_start = k;
                }
                if run >= needed {
                    // misalignment δ (samples): window starts δ after the
                    // symbol boundary, and the detected preamble symbol
                    // equals δ in chips
                    let delta = run_sym as usize * osr;
                    let coarse = run_start * ns + if delta == 0 { 0 } else { ns - delta };
                    return Some(self.refine_alignment(rx, coarse, buf));
                }
            } else {
                run = 0;
            }
            k += 1;
        }
        None
    }

    /// Fine alignment: probe sample offsets around the coarse estimate
    /// (which may be off by ±1 chip) and keep the one whose window
    /// dechirps to *exactly* symbol 0 with the strongest peak — at the
    /// true boundary the preamble lands in bin 0; an offset of a full
    /// chip moves it to bin ±1 and must be rejected, or every payload
    /// symbol would read off by one.
    fn refine_alignment(&self, rx: &[Complex], coarse: usize, buf: &mut Vec<Complex>) -> usize {
        let ns = self.cfg.samples_per_symbol();
        let span = (self.cfg.osr as i64).max(2);
        let mut best = (coarse, f64::MIN);
        for e in -span..=span {
            let pos = coarse as i64 + e;
            if pos < 0 || (pos as usize + ns) > rx.len() {
                continue;
            }
            let det = self.detect_with_buf(&rx[pos as usize..pos as usize + ns], &self.up_ref, buf);
            if det.symbol == 0 && det.magnitude > best.1 {
                best = (pos as usize, det.magnitude);
            }
        }
        best.0
    }

    /// Demodulate one frame from a raw capture: front-end filter,
    /// preamble search, SFD alignment, header decode, payload decode.
    ///
    /// Returns `None` when no frame is found (no preamble, SFD missing,
    /// or the header block is unreadable).
    pub fn demodulate(&self, rx: &[Complex]) -> Option<DemodFrame> {
        self.demodulate_with(rx, &mut self.scratch())
    }

    /// [`Demodulator::demodulate`] against caller-owned scratch: the
    /// batch path reuses the FIR state and the filtered/dechirp buffers
    /// across captures. Bit-identical to the allocating route.
    pub fn demodulate_with(
        &self,
        rx: &[Complex],
        scratch: &mut DemodScratch,
    ) -> Option<DemodFrame> {
        let ns = self.cfg.samples_per_symbol();
        let DemodScratch { fir, filtered, buf } = scratch;
        self.filter_core(rx, fir, filtered);
        // one symbol of tail padding so a grid offset can't starve the
        // final symbol window
        filtered.extend(std::iter::repeat_n(Complex::ZERO, ns));
        let pos = self.find_preamble(filtered, buf)?;

        // Locate the SFD by total evidence rather than a fragile
        // window-by-window walk: the two consecutive downchirp windows
        // maximize (down-energy − up-energy) summed over the pair. The
        // search span covers the rest of the preamble plus the sync
        // word from wherever the run-of-3 locked on.
        let max_j = self.frame_params.preamble_len + 4;
        let mut best: Option<(usize, f64)> = None;
        for j in 1..=max_j {
            let start = pos + j * ns;
            if start + 2 * ns > filtered.len() {
                break;
            }
            let d0 = self.detect_with_buf(&filtered[start..start + ns], &self.down_ref, buf);
            let d1 =
                self.detect_with_buf(&filtered[start + ns..start + 2 * ns], &self.down_ref, buf);
            let u0 = self.detect_with_buf(&filtered[start..start + ns], &self.up_ref, buf);
            let u1 = self.detect_with_buf(&filtered[start + ns..start + 2 * ns], &self.up_ref, buf);
            let score = d0.magnitude + d1.magnitude - u0.magnitude - u1.magnitude;
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((start, score));
            }
        }
        let (sfd_start, score) = best?;
        if score <= 0.0 {
            return None; // no downchirp evidence anywhere — not a frame
        }
        // skip the 2.25-symbol SFD
        let payload_start = sfd_start + ns * 2 + ns / 4;

        // header block: 8 symbols
        if payload_start + 8 * ns > filtered.len() {
            return None;
        }
        let mut symbols: Vec<u16> = Vec::new();
        for i in 0..8 {
            let w = &filtered[payload_start + i * ns..payload_start + (i + 1) * ns];
            symbols.push(self.detect_with_buf(w, &self.up_ref, buf).symbol);
        }
        // decode just the header block to learn the payload length
        let payload_len = header_declared_len(&symbols, self.frame_params.code)?;
        let total_syms = phy::symbol_count(payload_len, self.frame_params.code);
        if payload_start + total_syms * ns > filtered.len() {
            return None;
        }
        for i in 8..total_syms {
            let w = &filtered[payload_start + i * ns..payload_start + (i + 1) * ns];
            symbols.push(self.detect_with_buf(w, &self.up_ref, buf).symbol);
        }
        let dec = phy::decode(&symbols, self.frame_params.code)?;
        Some(DemodFrame {
            payload: dec.payload,
            crc_ok: dec.crc_ok,
            header_ok: dec.header_ok,
            corrections: dec.corrections,
            payload_start,
            symbols,
        })
    }
}

/// Extract the declared payload length from a decoded header block
/// (symbols 0..8), verifying the header checksum. Returns `None` on a
/// corrupt header.
fn header_declared_len(symbols: &[u16], code: CodeParams) -> Option<usize> {
    use crate::phy::{deinterleave, gray_encode, hamming_decode};
    let hdr_sf_app = (code.sf - 2) as usize;
    let blk: Vec<u16> = symbols[..8]
        .iter()
        .map(|&s| (gray_encode(s) & ((1 << code.sf) - 1)) >> 2)
        .collect();
    let cws = deinterleave(&blk, hdr_sf_app, 4);
    let nib: Vec<u8> = cws.iter().map(|&c| hamming_decode(c, 4).nibble).collect();
    if nib.len() < 5 {
        return None;
    }
    let len = ((nib[0] << 4) | nib[1]) as usize;
    let flags = nib[2];
    let chk = (nib[3] << 4) | nib[4];
    if chk == (len as u8 ^ (flags << 4) ^ 0x5A) {
        Some(len)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::Modulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tinysdr_rf::channel::{apply_delay, AwgnChannel};

    fn loopback(sf: u8, bw: f64, osr: usize, cr: u8, payload: &[u8]) -> DemodFrame {
        let m = Modulator::standard(sf, bw, osr, cr);
        let d = Demodulator::standard(sf, bw, osr, cr);
        let sig = m.modulate(payload);
        d.demodulate(&sig).expect("clean loopback must decode")
    }

    #[test]
    fn clean_loopback_sf8() {
        let f = loopback(8, 125e3, 1, 1, b"hello tinySDR");
        assert_eq!(f.payload, b"hello tinySDR");
        assert!(f.crc_ok && f.header_ok);
    }

    #[test]
    fn clean_loopback_all_sf() {
        for sf in 7..=12u8 {
            let f = loopback(sf, 125e3, 1, 1, b"sf sweep");
            assert_eq!(f.payload, b"sf sweep", "SF{sf}");
            assert!(f.crc_ok, "SF{sf}");
        }
    }

    #[test]
    fn clean_loopback_oversampled() {
        let f = loopback(8, 125e3, 4, 2, b"osr4");
        assert_eq!(f.payload, b"osr4");
        assert!(f.crc_ok);
    }

    #[test]
    fn decodes_with_unaligned_start() {
        let m = Modulator::standard(8, 125e3, 1, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let sig = m.modulate(b"offset test");
        for delay in [1usize, 17, 100, 255, 300] {
            let delayed = apply_delay(&sig, delay);
            let f = d
                .demodulate(&delayed)
                .unwrap_or_else(|| panic!("delay {delay}"));
            assert_eq!(f.payload, b"offset test", "delay {delay}");
            assert!(f.crc_ok, "delay {delay}");
        }
    }

    #[test]
    fn decodes_at_high_snr_with_noise() {
        let m = Modulator::standard(8, 125e3, 1, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let mut ch = AwgnChannel::new(4.5, 11);
        let mut sig = m.modulate(b"noisy");
        ch.apply(&mut sig, -100.0, 125e3); // 18 dB above sensitivity
        let f = d.demodulate(&sig).expect("decode at -100 dBm");
        assert_eq!(f.payload, b"noisy");
        assert!(f.crc_ok);
    }

    #[test]
    fn fails_gracefully_on_pure_noise() {
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let mut ch = AwgnChannel::new(4.5, 3);
        let noise = ch.noise_only(256 * 40, 125e3);
        assert!(d.demodulate(&noise).is_none(), "noise must not decode");
    }

    #[test]
    fn symbol_error_rate_zero_at_high_snr() {
        let m = Modulator::standard(8, 125e3, 1, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let syms: Vec<u16> = (0..100).map(|_| rng.gen_range(0..256)).collect();
        let mut sig = m.modulate_symbols(&syms);
        let mut ch = AwgnChannel::new(4.5, 8);
        ch.apply(&mut sig, -110.0, 125e3);
        let ser = d.symbol_error_rate(&sig, &syms);
        assert_eq!(ser, 0.0, "SER at -110 dBm should be zero");
    }

    #[test]
    fn symbol_error_rate_transitions_near_sensitivity() {
        // SF8/BW125 sensitivity is −126 dBm: a few dB above → low SER,
        // several dB below → SER near (M−1)/M
        let m = Modulator::standard(8, 125e3, 1, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let syms: Vec<u16> = (0..300).map(|_| rng.gen_range(0..256)).collect();
        let base = m.modulate_symbols(&syms);

        let mut ch = AwgnChannel::new(4.5, 21);
        let mut good = base.clone();
        ch.apply(&mut good, -122.0, 125e3);
        let ser_good = d.symbol_error_rate(&good, &syms);

        let mut ch = AwgnChannel::new(4.5, 22);
        let mut bad = base.clone();
        ch.apply(&mut bad, -135.0, 125e3);
        let ser_bad = d.symbol_error_rate(&bad, &syms);

        assert!(ser_good < 0.05, "SER at -122 dBm: {ser_good}");
        assert!(ser_bad > 0.5, "SER at -135 dBm: {ser_bad}");
    }

    #[test]
    fn scratch_paths_are_bit_identical_to_allocating_paths() {
        let m = Modulator::standard(8, 125e3, 1, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let mut rng = StdRng::seed_from_u64(17);
        let mut scratch = d.scratch();
        // frame path, reusing scratch across noisy captures
        for trial in 0..3u64 {
            let mut sig = m.modulate(b"scratch contract");
            let mut ch = AwgnChannel::new(4.5, 100 + trial);
            ch.apply(&mut sig, -115.0, 125e3);
            assert_eq!(d.demodulate_with(&sig, &mut scratch), d.demodulate(&sig));
        }
        // aligned-symbol path
        let syms: Vec<u16> = (0..60).map(|_| rng.gen_range(0..256)).collect();
        let mut sig = m.modulate_symbols(&syms);
        let mut ch = AwgnChannel::new(4.5, 9);
        ch.apply(&mut sig, -130.0, 125e3);
        assert_eq!(
            d.symbol_errors_with(&sig, &syms, &mut scratch),
            d.symbol_errors(&sig, &syms)
        );
        // and filter itself
        let mut s2 = d.scratch();
        let DemodScratch { fir, filtered, .. } = &mut s2;
        d.filter_core(&sig, fir, filtered);
        assert_eq!(*filtered, d.filter(&sig));
    }

    #[test]
    fn direction_detector_works() {
        use tinysdr_dsp::chirp::{ChirpDirection, ChirpGenerator};
        let cfg = ChirpConfig::new(8, 125e3, 1);
        let d = Demodulator::standard(8, 125e3, 1, 1);
        let g = ChirpGenerator::new(cfg);
        assert_eq!(d.detect_direction(&g.upchirp(37)), ChirpDirection::Up);
        assert_eq!(d.detect_direction(&g.downchirp()), ChirpDirection::Down);
    }

    #[test]
    fn fec_earns_its_keep_under_noise() {
        // at a marginal SNR, CR 4/8 decodes packets CR 4/5 loses
        let payload = b"fec gain test payload";
        let rssi = -124.5;
        let mut ok = [0u32; 2];
        for (i, cr) in [1u8, 4].iter().enumerate() {
            let m = Modulator::standard(8, 125e3, 1, *cr);
            let d = Demodulator::standard(8, 125e3, 1, *cr);
            for trial in 0..30 {
                let mut ch = AwgnChannel::new(4.5, 1000 + trial);
                let mut sig = m.modulate(payload);
                ch.apply(&mut sig, rssi, 125e3);
                if let Some(f) = d.demodulate(&sig) {
                    if f.crc_ok && f.payload == payload {
                        ok[i] += 1;
                    }
                }
            }
        }
        assert!(
            ok[1] >= ok[0],
            "CR4/8 ({}) must beat CR4/5 ({})",
            ok[1],
            ok[0]
        );
    }
}

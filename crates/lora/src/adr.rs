//! Rate adaptation — the paper's §7 research question, answered.
//!
//! "What is the trade-off between packet length and overall throughput?
//! Are there benefits of rate adaptation?" LoRa's SF knob trades 2.5 dB
//! of sensitivity per step against a 2× airtime cost; a node that knows
//! its link margin can pick the *fastest* SF that still closes the link
//! — the essence of LoRaWAN's ADR.

use tinysdr_rf::sx1276::{sensitivity_dbm, LoRaParams};

/// Pick the fastest (lowest) spreading factor whose sensitivity plus
/// `margin_db` of fade headroom still closes a link at `rssi_dbm`.
/// Returns `None` if even SF12 cannot close it.
pub fn select_sf(rssi_dbm: f64, bw_hz: f64, margin_db: f64) -> Option<u8> {
    (7..=12u8).find(|&sf| rssi_dbm >= sensitivity_dbm(sf, bw_hz) + margin_db)
}

/// Airtime for a payload at the ADR-selected rate, seconds.
pub fn adaptive_airtime_s(
    rssi_dbm: f64,
    bw_hz: f64,
    margin_db: f64,
    payload_len: usize,
) -> Option<f64> {
    let sf = select_sf(rssi_dbm, bw_hz, margin_db)?;
    Some(LoRaParams::new(sf, bw_hz, 5).airtime_s(payload_len))
}

/// One row of the rate-adaptation study: a link's RSSI, the fixed-SF8
/// outcome and the adaptive outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdrComparison {
    /// Link RSSI, dBm.
    pub rssi_dbm: f64,
    /// Airtime at fixed SF8 (None = link does not close).
    pub fixed_sf8_airtime_s: Option<f64>,
    /// ADR-selected SF (None = unreachable even at SF12).
    pub adaptive_sf: Option<u8>,
    /// Airtime at the adaptive rate.
    pub adaptive_airtime_s: Option<f64>,
}

/// Compare fixed SF8 against ADR across a set of link RSSIs (the §7
/// study, quantified). `margin_db` is the fade headroom requirement.
pub fn study(rssis: &[f64], bw_hz: f64, margin_db: f64, payload_len: usize) -> Vec<AdrComparison> {
    rssis
        .iter()
        .map(|&rssi| {
            let fixed = if rssi >= sensitivity_dbm(8, bw_hz) + margin_db {
                Some(LoRaParams::new(8, bw_hz, 5).airtime_s(payload_len))
            } else {
                None
            };
            let sf = select_sf(rssi, bw_hz, margin_db);
            AdrComparison {
                rssi_dbm: rssi,
                fixed_sf8_airtime_s: fixed,
                adaptive_sf: sf,
                adaptive_airtime_s: adaptive_airtime_s(rssi, bw_hz, margin_db, payload_len),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_links_get_fast_rates() {
        // −100 dBm at BW125: SF7 closes with room to spare
        assert_eq!(select_sf(-100.0, 125e3, 10.0), Some(7));
    }

    #[test]
    fn weak_links_step_up_sf() {
        // each ~2.5 dB below SF7's threshold costs one SF step
        let s7 = sensitivity_dbm(7, 125e3);
        assert_eq!(select_sf(s7 + 10.0, 125e3, 10.0), Some(7));
        assert_eq!(select_sf(s7 + 8.0, 125e3, 10.0), Some(8));
        // 4 dB below SF7's threshold with a 5 dB margin → SF11 territory
        assert!(select_sf(s7 - 4.0, 125e3, 5.0).unwrap() >= 10);
    }

    #[test]
    fn dead_links_return_none() {
        assert_eq!(select_sf(-150.0, 125e3, 5.0), None);
    }

    #[test]
    fn adr_extends_range_beyond_fixed_sf8() {
        // the §7 payoff: between SF8's margin limit and SF12's, ADR
        // reaches nodes a fixed-SF8 deployment loses
        let rows = study(&[-100.0, -120.0, -130.0], 125e3, 5.0, 20);
        // strong link: both work, ADR is faster or equal
        assert!(rows[0].fixed_sf8_airtime_s.is_some());
        assert!(rows[0].adaptive_airtime_s.unwrap() <= rows[0].fixed_sf8_airtime_s.unwrap());
        // mid link: both close, same or slower rate
        assert!(rows[1].fixed_sf8_airtime_s.is_some());
        // far link: fixed SF8 fails, ADR still delivers
        assert!(rows[2].fixed_sf8_airtime_s.is_none());
        assert!(rows[2].adaptive_sf.is_some(), "ADR must reach the far node");
    }

    #[test]
    fn airtime_monotone_in_sf() {
        let mut prev = 0.0;
        for sf in 7..=12u8 {
            let t = LoRaParams::new(sf, 125e3, 5).airtime_s(20);
            assert!(t > prev, "SF{sf} airtime must grow");
            prev = t;
        }
    }

    #[test]
    fn margin_trades_rate_for_robustness() {
        // demanding more fade margin forces slower rates on the same link
        let tight = select_sf(-115.0, 125e3, 2.0).unwrap();
        let safe = select_sf(-115.0, 125e3, 12.0).unwrap();
        assert!(safe >= tight);
    }
}

//! LoRaWAN MAC layer (TTN-compatible subset, paper §4.1).
//!
//! "To demonstrate that our LoRa implementation on tinySDR is compatible
//! with existing LoRa networks such as the LoRa Alliance's The Things
//! Network (TTN), we adopt their LoRa MAC design […] TTN uses two
//! methods for device association; Over-the-air activation (OTAA) and
//! activation by personalization (ABP). […] Our platform can support
//! both OTAA and ABP methods."
//!
//! The offline crate set has no cryptography crate, so [`aes`] and
//! [`cmac`] implement AES-128 (FIPS-197) and AES-CMAC (RFC 4493) from
//! scratch, validated against the published test vectors. [`frame`]
//! builds/parses LoRaWAN 1.0.x frames with real MIC and payload
//! encryption; [`mac`] is the Class-A device state machine with ABP and
//! the OTAA join procedure.

pub mod aes;
pub mod cmac;
pub mod frame;
pub mod mac;
pub mod regional;

pub use aes::Aes128;
pub use cmac::cmac_aes128;
pub use frame::{DataFrame, FrameDirection, JoinAccept, JoinRequest, SessionKeys};
pub use mac::{Activation, ClassAMac, MacConfig};
pub use regional::Region;

//! AES-CMAC (RFC 4493) — the LoRaWAN MIC primitive.

use super::aes::Aes128;

const RB: u8 = 0x87;

fn left_shift_one(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    out
}

/// Generate the CMAC subkeys K1, K2.
fn subkeys(aes: &Aes128) -> ([u8; 16], [u8; 16]) {
    let l = aes.encrypt_block(&[0u8; 16]);
    let mut k1 = left_shift_one(&l);
    if l[0] & 0x80 != 0 {
        k1[15] ^= RB;
    }
    let mut k2 = left_shift_one(&k1);
    if k1[0] & 0x80 != 0 {
        k2[15] ^= RB;
    }
    (k1, k2)
}

/// Compute the 16-byte AES-CMAC of `msg` under `key`.
pub fn cmac_aes128(key: &[u8; 16], msg: &[u8]) -> [u8; 16] {
    let aes = Aes128::new(key);
    let (k1, k2) = subkeys(&aes);

    let n_blocks = if msg.is_empty() {
        1
    } else {
        msg.len().div_ceil(16)
    };
    let complete_last = !msg.is_empty() && msg.len().is_multiple_of(16);

    let mut x = [0u8; 16];
    for i in 0..n_blocks - 1 {
        let mut block = [0u8; 16];
        block.copy_from_slice(&msg[i * 16..(i + 1) * 16]);
        for j in 0..16 {
            x[j] ^= block[j];
        }
        x = aes.encrypt_block(&x);
    }

    // last block
    let mut last = [0u8; 16];
    let start = (n_blocks - 1) * 16;
    if complete_last {
        last.copy_from_slice(&msg[start..start + 16]);
        for j in 0..16 {
            last[j] ^= k1[j];
        }
    } else {
        let rem = &msg[start..];
        last[..rem.len()].copy_from_slice(rem);
        last[rem.len()] = 0x80;
        for j in 0..16 {
            last[j] ^= k2[j];
        }
    }
    for j in 0..16 {
        x[j] ^= last[j];
    }
    aes.encrypt_block(&x)
}

/// First four bytes of the CMAC — the LoRaWAN MIC.
pub fn mic(key: &[u8; 16], msg: &[u8]) -> [u8; 4] {
    let full = cmac_aes128(key, msg);
    [full[0], full[1], full[2], full[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4493 test key.
    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    const MSG64: [u8; 64] = [
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17,
        0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
        0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a,
        0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b,
        0xe6, 0x6c, 0x37, 0x10,
    ];

    #[test]
    fn rfc4493_subkey_generation() {
        // RFC 4493 §4, Subkey Generation example: L = AES-128(K, 0^128),
        // then K1 and K2 by the doubling rule
        let aes = Aes128::new(&KEY);
        let l = aes.encrypt_block(&[0u8; 16]);
        let want_l = [
            0x7d, 0xf7, 0x6b, 0x0c, 0x1a, 0xb8, 0x99, 0xb3, 0x3e, 0x42, 0xf0, 0x47, 0xb9, 0x1b,
            0x54, 0x6f,
        ];
        assert_eq!(l, want_l);
        let (k1, k2) = subkeys(&aes);
        let want_k1 = [
            0xfb, 0xee, 0xd6, 0x18, 0x35, 0x71, 0x33, 0x66, 0x7c, 0x85, 0xe0, 0x8f, 0x72, 0x36,
            0xa8, 0xde,
        ];
        let want_k2 = [
            0xf7, 0xdd, 0xac, 0x30, 0x6a, 0xe2, 0x66, 0xcc, 0xf9, 0x0b, 0xc1, 0x1e, 0xe4, 0x6d,
            0x51, 0x3b,
        ];
        assert_eq!(k1, want_k1);
        assert_eq!(k2, want_k2);
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let want = [
            0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
            0x67, 0x46,
        ];
        assert_eq!(cmac_aes128(&KEY, &[]), want);
    }

    #[test]
    fn rfc4493_example_2_16_bytes() {
        let want = [
            0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
            0x28, 0x7c,
        ];
        assert_eq!(cmac_aes128(&KEY, &MSG64[..16]), want);
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let want = [
            0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
            0xc8, 0x27,
        ];
        assert_eq!(cmac_aes128(&KEY, &MSG64[..40]), want);
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let want = [
            0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17, 0x79, 0x36,
            0x3c, 0xfe,
        ];
        assert_eq!(cmac_aes128(&KEY, &MSG64), want);
    }

    #[test]
    fn mic_is_prefix() {
        let full = cmac_aes128(&KEY, b"lorawan");
        let m = mic(&KEY, b"lorawan");
        assert_eq!(&full[..4], &m);
    }

    #[test]
    fn mic_detects_tampering() {
        let a = mic(&KEY, b"payload one");
        let b = mic(&KEY, b"payload two");
        assert_ne!(a, b);
    }
}

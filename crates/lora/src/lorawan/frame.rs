//! LoRaWAN 1.0.x frame construction and parsing.
//!
//! Wire layout (LoRaWAN 1.0.3 §4):
//!
//! ```text
//! PHYPayload = MHDR(1) | MACPayload | MIC(4)
//! MACPayload = FHDR | FPort(1) | FRMPayload
//! FHDR       = DevAddr(4, LE) | FCtrl(1) | FCnt(2, LE) | FOpts(0..15)
//! ```
//!
//! FRMPayload is encrypted with the AES "A-block" keystream; the MIC is
//! the 4-byte AES-CMAC over `B0 | MHDR | MACPayload`.

use super::aes::Aes128;
use super::cmac;

/// Uplink or downlink — affects the crypto direction byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDirection {
    /// Device → network (Dir = 0).
    Uplink,
    /// Network → device (Dir = 1).
    Downlink,
}

impl FrameDirection {
    fn byte(self) -> u8 {
        match self {
            FrameDirection::Uplink => 0,
            FrameDirection::Downlink => 1,
        }
    }
}

/// MAC header message types (MType field of MHDR).
pub mod mtype {
    /// Join-request.
    pub const JOIN_REQUEST: u8 = 0x00;
    /// Join-accept.
    pub const JOIN_ACCEPT: u8 = 0x20;
    /// Unconfirmed data up.
    pub const UNCONFIRMED_UP: u8 = 0x40;
    /// Unconfirmed data down.
    pub const UNCONFIRMED_DOWN: u8 = 0x60;
    /// Confirmed data up.
    pub const CONFIRMED_UP: u8 = 0x80;
    /// Confirmed data down.
    pub const CONFIRMED_DOWN: u8 = 0xA0;
}

/// Session keys (either personalized for ABP or derived by OTAA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKeys {
    /// Network session key (MIC).
    pub nwk_skey: [u8; 16],
    /// Application session key (payload encryption).
    pub app_skey: [u8; 16],
}

/// Encrypt/decrypt an FRMPayload with the LoRaWAN A-block keystream
/// (symmetric operation).
pub fn crypt_payload(
    key: &[u8; 16],
    dev_addr: u32,
    fcnt: u32,
    dir: FrameDirection,
    payload: &[u8],
) -> Vec<u8> {
    let aes = Aes128::new(key);
    let mut out = Vec::with_capacity(payload.len());
    for (i, chunk) in payload.chunks(16).enumerate() {
        let mut a = [0u8; 16];
        a[0] = 0x01;
        a[5] = dir.byte();
        a[6..10].copy_from_slice(&dev_addr.to_le_bytes());
        a[10..14].copy_from_slice(&fcnt.to_le_bytes());
        a[15] = (i + 1) as u8;
        let s = aes.encrypt_block(&a);
        for (j, &b) in chunk.iter().enumerate() {
            out.push(b ^ s[j]);
        }
    }
    out
}

/// Compute the frame MIC over `MHDR | MACPayload`.
pub fn frame_mic(
    nwk_skey: &[u8; 16],
    dev_addr: u32,
    fcnt: u32,
    dir: FrameDirection,
    mhdr_and_macpayload: &[u8],
) -> [u8; 4] {
    let mut b0 = [0u8; 16];
    b0[0] = 0x49;
    b0[5] = dir.byte();
    b0[6..10].copy_from_slice(&dev_addr.to_le_bytes());
    b0[10..14].copy_from_slice(&fcnt.to_le_bytes());
    b0[15] = mhdr_and_macpayload.len() as u8;
    let mut msg = Vec::with_capacity(16 + mhdr_and_macpayload.len());
    msg.extend_from_slice(&b0);
    msg.extend_from_slice(mhdr_and_macpayload);
    cmac::mic(nwk_skey, &msg)
}

/// A data frame (uplink or downlink).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Device short address.
    pub dev_addr: u32,
    /// Frame counter.
    pub fcnt: u32,
    /// Application port (1..=223 for app data).
    pub fport: u8,
    /// Decrypted application payload.
    pub payload: Vec<u8>,
    /// Confirmed-traffic flag.
    pub confirmed: bool,
    /// Direction.
    pub dir: FrameDirection,
}

/// Errors from frame parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer too short to be a LoRaWAN frame.
    TooShort,
    /// MIC verification failed.
    BadMic,
    /// Unexpected message type.
    WrongType {
        /// MHDR found.
        mhdr: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame too short"),
            FrameError::BadMic => write!(f, "MIC verification failed"),
            FrameError::WrongType { mhdr } => write!(f, "unexpected MHDR {mhdr:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl DataFrame {
    /// Serialize to the PHYPayload wire format (encrypting the payload
    /// and appending the MIC).
    pub fn to_bytes(&self, keys: &SessionKeys) -> Vec<u8> {
        let mhdr = match (self.dir, self.confirmed) {
            (FrameDirection::Uplink, false) => mtype::UNCONFIRMED_UP,
            (FrameDirection::Uplink, true) => mtype::CONFIRMED_UP,
            (FrameDirection::Downlink, false) => mtype::UNCONFIRMED_DOWN,
            (FrameDirection::Downlink, true) => mtype::CONFIRMED_DOWN,
        };
        let mut buf = vec![mhdr];
        buf.extend_from_slice(&self.dev_addr.to_le_bytes());
        buf.push(0x00); // FCtrl: no ADR/ACK/FOpts in this subset
        buf.extend_from_slice(&(self.fcnt as u16).to_le_bytes());
        buf.push(self.fport);
        let key = if self.fport == 0 {
            &keys.nwk_skey
        } else {
            &keys.app_skey
        };
        buf.extend(crypt_payload(
            key,
            self.dev_addr,
            self.fcnt,
            self.dir,
            &self.payload,
        ));
        let mic = frame_mic(&keys.nwk_skey, self.dev_addr, self.fcnt, self.dir, &buf);
        buf.extend_from_slice(&mic);
        buf
    }

    /// Parse and verify a PHYPayload, decrypting the application data.
    ///
    /// # Errors
    /// Fails on truncation, a wrong message type, or MIC mismatch.
    pub fn from_bytes(bytes: &[u8], keys: &SessionKeys) -> Result<Self, FrameError> {
        if bytes.len() < 13 {
            return Err(FrameError::TooShort);
        }
        let mhdr = bytes[0];
        let (dir, confirmed) = match mhdr {
            x if x == mtype::UNCONFIRMED_UP => (FrameDirection::Uplink, false),
            x if x == mtype::CONFIRMED_UP => (FrameDirection::Uplink, true),
            x if x == mtype::UNCONFIRMED_DOWN => (FrameDirection::Downlink, false),
            x if x == mtype::CONFIRMED_DOWN => (FrameDirection::Downlink, true),
            _ => return Err(FrameError::WrongType { mhdr }),
        };
        let dev_addr = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        let fctrl = bytes[5];
        let fopts_len = (fctrl & 0x0F) as usize;
        let fcnt = u16::from_le_bytes([bytes[6], bytes[7]]) as u32;
        let body_end = bytes.len() - 4;
        // lint: allow(unjustified-panic, slice is exactly four bytes by the index arithmetic)
        let mic_got: [u8; 4] = bytes[body_end..].try_into().unwrap();
        let mic_want = frame_mic(&keys.nwk_skey, dev_addr, fcnt, dir, &bytes[..body_end]);
        if mic_got != mic_want {
            return Err(FrameError::BadMic);
        }
        let port_idx = 8 + fopts_len;
        if port_idx >= body_end {
            // no FPort/FRMPayload
            return Ok(DataFrame {
                dev_addr,
                fcnt,
                fport: 0,
                payload: Vec::new(),
                confirmed,
                dir,
            });
        }
        let fport = bytes[port_idx];
        let enc = &bytes[port_idx + 1..body_end];
        let key = if fport == 0 {
            &keys.nwk_skey
        } else {
            &keys.app_skey
        };
        let payload = crypt_payload(key, dev_addr, fcnt, dir, enc);
        Ok(DataFrame {
            dev_addr,
            fcnt,
            fport,
            payload,
            confirmed,
            dir,
        })
    }
}

/// OTAA join-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinRequest {
    /// Application (join EUI), little-endian on the wire.
    pub app_eui: [u8; 8],
    /// Device EUI.
    pub dev_eui: [u8; 8],
    /// Device nonce (random per join attempt).
    pub dev_nonce: u16,
}

impl JoinRequest {
    /// Serialize with MIC under the AppKey.
    pub fn to_bytes(&self, app_key: &[u8; 16]) -> Vec<u8> {
        let mut buf = vec![mtype::JOIN_REQUEST];
        buf.extend(self.app_eui.iter().rev());
        buf.extend(self.dev_eui.iter().rev());
        buf.extend_from_slice(&self.dev_nonce.to_le_bytes());
        let mic = cmac::mic(app_key, &buf);
        buf.extend_from_slice(&mic);
        buf
    }

    /// Parse and verify.
    ///
    /// # Errors
    /// Fails on truncation, type or MIC mismatch.
    pub fn from_bytes(bytes: &[u8], app_key: &[u8; 16]) -> Result<Self, FrameError> {
        if bytes.len() != 23 {
            return Err(FrameError::TooShort);
        }
        if bytes[0] != mtype::JOIN_REQUEST {
            return Err(FrameError::WrongType { mhdr: bytes[0] });
        }
        let mic_want = cmac::mic(app_key, &bytes[..19]);
        if bytes[19..] != mic_want {
            return Err(FrameError::BadMic);
        }
        let mut app_eui = [0u8; 8];
        let mut dev_eui = [0u8; 8];
        for i in 0..8 {
            app_eui[i] = bytes[8 - i];
            dev_eui[i] = bytes[16 - i];
        }
        Ok(JoinRequest {
            app_eui,
            dev_eui,
            dev_nonce: u16::from_le_bytes([bytes[17], bytes[18]]),
        })
    }
}

/// OTAA join-accept (what the network sends back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinAccept {
    /// Server nonce.
    pub app_nonce: [u8; 3],
    /// Network identifier.
    pub net_id: [u8; 3],
    /// Assigned device address.
    pub dev_addr: u32,
}

impl JoinAccept {
    /// Serialize: the join-accept body is encrypted with AES *decrypt*
    /// under the AppKey so the device can use its encrypt-only engine.
    pub fn to_bytes(&self, app_key: &[u8; 16]) -> Vec<u8> {
        let mut body = vec![mtype::JOIN_ACCEPT];
        body.extend(self.app_nonce.iter().rev());
        body.extend(self.net_id.iter().rev());
        body.extend_from_slice(&self.dev_addr.to_le_bytes());
        body.push(0x00); // DLSettings
        body.push(0x01); // RxDelay
        let mic = cmac::mic(app_key, &body);
        body.extend_from_slice(&mic);
        // encrypt all but MHDR with aes128_decrypt
        let aes = Aes128::new(app_key);
        let mut out = vec![body[0]];
        for chunk in body[1..].chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&aes.decrypt_block(&block));
        }
        out
    }

    /// Device-side parse: apply AES *encrypt* to recover the body, then
    /// verify the MIC.
    ///
    /// # Errors
    /// Fails on truncation, type or MIC mismatch.
    pub fn from_bytes(bytes: &[u8], app_key: &[u8; 16]) -> Result<Self, FrameError> {
        if bytes.len() < 17 {
            return Err(FrameError::TooShort);
        }
        if bytes[0] != mtype::JOIN_ACCEPT {
            return Err(FrameError::WrongType { mhdr: bytes[0] });
        }
        let aes = Aes128::new(app_key);
        let mut body = vec![bytes[0]];
        for chunk in bytes[1..].chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            body.extend_from_slice(&aes.encrypt_block(&block));
        }
        body.truncate(1 + 12 + 4); // MHDR + body + MIC in the base form
                                   // lint: allow(unjustified-panic, slice is exactly four bytes by the index arithmetic)
        let mic_got: [u8; 4] = body[body.len() - 4..].try_into().unwrap();
        let mic_want = cmac::mic(app_key, &body[..body.len() - 4]);
        if mic_got != mic_want {
            return Err(FrameError::BadMic);
        }
        let mut app_nonce = [0u8; 3];
        let mut net_id = [0u8; 3];
        for i in 0..3 {
            app_nonce[i] = body[3 - i];
            net_id[i] = body[6 - i];
        }
        let dev_addr = u32::from_le_bytes([body[7], body[8], body[9], body[10]]);
        Ok(JoinAccept {
            app_nonce,
            net_id,
            dev_addr,
        })
    }

    /// Derive the session keys (LoRaWAN 1.0.x key derivation).
    pub fn derive_keys(&self, app_key: &[u8; 16], dev_nonce: u16) -> SessionKeys {
        let aes = Aes128::new(app_key);
        let mut base = [0u8; 16];
        base[1..4].copy_from_slice(&{
            let mut n = self.app_nonce;
            n.reverse();
            n
        });
        base[4..7].copy_from_slice(&{
            let mut n = self.net_id;
            n.reverse();
            n
        });
        base[7..9].copy_from_slice(&dev_nonce.to_le_bytes());
        let mut nwk = base;
        nwk[0] = 0x01;
        let mut app = base;
        app[0] = 0x02;
        SessionKeys {
            nwk_skey: aes.encrypt_block(&nwk),
            app_skey: aes.encrypt_block(&app),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SessionKeys {
        SessionKeys {
            nwk_skey: core::array::from_fn(|i| i as u8),
            app_skey: core::array::from_fn(|i| (i + 100) as u8),
        }
    }

    #[test]
    fn data_frame_round_trip() {
        let k = keys();
        let f = DataFrame {
            dev_addr: 0x2601_1FAB,
            fcnt: 42,
            fport: 1,
            payload: b"temperature=21.5".to_vec(),
            confirmed: false,
            dir: FrameDirection::Uplink,
        };
        let wire = f.to_bytes(&k);
        let back = DataFrame::from_bytes(&wire, &k).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn payload_is_actually_encrypted_on_the_wire() {
        let k = keys();
        let f = DataFrame {
            dev_addr: 1,
            fcnt: 0,
            fport: 1,
            payload: b"plaintext secret".to_vec(),
            confirmed: false,
            dir: FrameDirection::Uplink,
        };
        let wire = f.to_bytes(&k);
        // the plaintext must not appear anywhere in the wire format
        let needle = b"plaintext";
        assert!(!wire.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn mic_catches_single_bit_flip() {
        let k = keys();
        let f = DataFrame {
            dev_addr: 7,
            fcnt: 1,
            fport: 2,
            payload: vec![1, 2, 3],
            confirmed: true,
            dir: FrameDirection::Uplink,
        };
        let mut wire = f.to_bytes(&k);
        for i in 0..wire.len() {
            wire[i] ^= 0x01;
            assert!(
                DataFrame::from_bytes(&wire, &k).is_err(),
                "flip at byte {i} must be caught"
            );
            wire[i] ^= 0x01;
        }
    }

    #[test]
    fn crypt_is_involutive() {
        let key = [9u8; 16];
        let data = b"the keystream construction is symmetric";
        let enc = crypt_payload(&key, 5, 77, FrameDirection::Downlink, data);
        let dec = crypt_payload(&key, 5, 77, FrameDirection::Downlink, &enc);
        assert_eq!(dec, data);
        assert_ne!(enc.as_slice(), data.as_slice());
    }

    #[test]
    fn different_fcnt_gives_different_ciphertext() {
        let key = [9u8; 16];
        let a = crypt_payload(&key, 5, 1, FrameDirection::Uplink, b"same payload");
        let b = crypt_payload(&key, 5, 2, FrameDirection::Uplink, b"same payload");
        assert_ne!(a, b);
    }

    #[test]
    fn join_request_round_trip() {
        let app_key = [0x77u8; 16];
        let jr = JoinRequest {
            app_eui: *b"APPEUI!!",
            dev_eui: *b"DEVEUI!!",
            dev_nonce: 0xBEEF,
        };
        let wire = jr.to_bytes(&app_key);
        assert_eq!(wire.len(), 23);
        let back = JoinRequest::from_bytes(&wire, &app_key).unwrap();
        assert_eq!(back, jr);
        // wrong key → MIC failure
        assert!(JoinRequest::from_bytes(&wire, &[0u8; 16]).is_err());
    }

    #[test]
    fn join_accept_round_trip_and_key_derivation() {
        let app_key = [0x42u8; 16];
        let ja = JoinAccept {
            app_nonce: [1, 2, 3],
            net_id: [0x13, 0x00, 0x00],
            dev_addr: 0x0F0E_0D0C,
        };
        let wire = ja.to_bytes(&app_key);
        let back = JoinAccept::from_bytes(&wire, &app_key).unwrap();
        assert_eq!(back, ja);
        // both sides derive identical session keys
        let dev = back.derive_keys(&app_key, 0x1234);
        let srv = ja.derive_keys(&app_key, 0x1234);
        assert_eq!(dev, srv);
        assert_ne!(dev.nwk_skey, dev.app_skey);
    }

    #[test]
    fn fport0_uses_network_key() {
        let k = keys();
        let f = DataFrame {
            dev_addr: 3,
            fcnt: 9,
            fport: 0,
            payload: vec![0x02], // a MAC command
            confirmed: false,
            dir: FrameDirection::Uplink,
        };
        let wire = f.to_bytes(&k);
        let back = DataFrame::from_bytes(&wire, &k).unwrap();
        assert_eq!(back.payload, vec![0x02]);
    }

    #[test]
    fn truncated_frames_rejected() {
        let k = keys();
        assert_eq!(
            DataFrame::from_bytes(&[0x40; 5], &k),
            Err(FrameError::TooShort)
        );
        assert!(matches!(
            DataFrame::from_bytes(&[0xFF; 20], &k),
            Err(FrameError::WrongType { .. })
        ));
    }
}

//! Class-A device MAC state machine with ABP and OTAA activation.
//!
//! "In OTAA, each node performs a join-procedure during which a dynamic
//! device address is assigned to a node. However, in ABP we can
//! hard-code the device address in the device which makes it simpler
//! since the node skips the join procedure. Our platform can support
//! both OTAA and ABP methods" (paper §4.1).
//!
//! Class A timing: after every uplink the device opens RX1 at
//! `RECEIVE_DELAY1` (1 s) and RX2 at `RECEIVE_DELAY2` (2 s) — the
//! Table 4 switching delays (TX→RX 45 µs) are what make these windows
//! reachable.

use super::frame::{DataFrame, FrameDirection, JoinAccept, JoinRequest, SessionKeys};

/// RX1 delay, seconds (LoRaWAN default).
pub const RECEIVE_DELAY1_S: f64 = 1.0;
/// RX2 delay, seconds.
pub const RECEIVE_DELAY2_S: f64 = 2.0;
/// Join-accept RX1 delay, seconds.
pub const JOIN_ACCEPT_DELAY1_S: f64 = 5.0;

/// How the device was activated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activation {
    /// Activation by personalization: keys and address baked in.
    Abp {
        /// Hard-coded device address.
        dev_addr: u32,
        /// Hard-coded session keys.
        keys: SessionKeys,
    },
    /// Over-the-air activation: joins with the AppKey.
    Otaa {
        /// Application EUI.
        app_eui: [u8; 8],
        /// Device EUI.
        dev_eui: [u8; 8],
        /// Root application key.
        app_key: [u8; 16],
    },
}

/// Static MAC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacConfig {
    /// Activation material.
    pub activation: Activation,
}

/// MAC protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacState {
    /// OTAA device before/while joining.
    Joining,
    /// Session established (always the case for ABP).
    Joined,
}

/// Errors from the MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacError {
    /// Operation requires a session.
    NotJoined,
    /// ABP devices do not join.
    AbpCannotJoin,
    /// Downlink did not verify/parse.
    BadDownlink,
}

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacError::NotJoined => write!(f, "no session: join first"),
            MacError::AbpCannotJoin => write!(f, "ABP devices have no join procedure"),
            MacError::BadDownlink => write!(f, "downlink failed verification"),
        }
    }
}

impl std::error::Error for MacError {}

/// The Class-A device MAC.
#[derive(Debug, Clone)]
pub struct ClassAMac {
    config: MacConfig,
    state: MacState,
    session: Option<(u32, SessionKeys)>,
    fcnt_up: u32,
    fcnt_down: u32,
    last_dev_nonce: u16,
}

impl ClassAMac {
    /// Create the MAC. ABP devices come up joined; OTAA devices must
    /// run the join procedure.
    pub fn new(config: MacConfig) -> Self {
        let (state, session) = match &config.activation {
            Activation::Abp { dev_addr, keys } => (MacState::Joined, Some((*dev_addr, *keys))),
            Activation::Otaa { .. } => (MacState::Joining, None),
        };
        ClassAMac {
            config,
            state,
            session,
            fcnt_up: 0,
            fcnt_down: 0,
            last_dev_nonce: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> MacState {
        self.state
    }

    /// Uplink frame counter.
    pub fn fcnt_up(&self) -> u32 {
        self.fcnt_up
    }

    /// Device address once joined.
    pub fn dev_addr(&self) -> Option<u32> {
        self.session.map(|(a, _)| a)
    }

    /// Build a join-request (OTAA only). `dev_nonce` must be fresh per
    /// attempt (the network rejects reuse).
    ///
    /// # Errors
    /// Fails for ABP devices.
    pub fn build_join_request(&mut self, dev_nonce: u16) -> Result<Vec<u8>, MacError> {
        match &self.config.activation {
            Activation::Otaa {
                app_eui,
                dev_eui,
                app_key,
            } => {
                self.last_dev_nonce = dev_nonce;
                self.state = MacState::Joining;
                Ok(JoinRequest {
                    app_eui: *app_eui,
                    dev_eui: *dev_eui,
                    dev_nonce,
                }
                .to_bytes(app_key))
            }
            Activation::Abp { .. } => Err(MacError::AbpCannotJoin),
        }
    }

    /// Process a join-accept, deriving session keys.
    ///
    /// # Errors
    /// Fails for ABP devices or an invalid accept.
    pub fn process_join_accept(&mut self, bytes: &[u8]) -> Result<u32, MacError> {
        match &self.config.activation {
            Activation::Otaa { app_key, .. } => {
                let ja =
                    JoinAccept::from_bytes(bytes, app_key).map_err(|_| MacError::BadDownlink)?;
                let keys = ja.derive_keys(app_key, self.last_dev_nonce);
                self.session = Some((ja.dev_addr, keys));
                self.state = MacState::Joined;
                self.fcnt_up = 0;
                self.fcnt_down = 0;
                Ok(ja.dev_addr)
            }
            Activation::Abp { .. } => Err(MacError::AbpCannotJoin),
        }
    }

    /// Build an uplink data frame, incrementing the frame counter.
    ///
    /// # Errors
    /// Fails before a session exists.
    pub fn build_uplink(
        &mut self,
        fport: u8,
        payload: &[u8],
        confirmed: bool,
    ) -> Result<Vec<u8>, MacError> {
        let (dev_addr, keys) = self.session.ok_or(MacError::NotJoined)?;
        let frame = DataFrame {
            dev_addr,
            fcnt: self.fcnt_up,
            fport,
            payload: payload.to_vec(),
            confirmed,
            dir: FrameDirection::Uplink,
        };
        self.fcnt_up += 1;
        Ok(frame.to_bytes(&keys))
    }

    /// Process a downlink received in RX1/RX2.
    ///
    /// # Errors
    /// Fails without a session, on MIC failure, on a foreign address,
    /// or on a replayed counter.
    pub fn process_downlink(&mut self, bytes: &[u8]) -> Result<DataFrame, MacError> {
        let (dev_addr, keys) = self.session.ok_or(MacError::NotJoined)?;
        let f = DataFrame::from_bytes(bytes, &keys).map_err(|_| MacError::BadDownlink)?;
        if f.dev_addr != dev_addr || f.dir != FrameDirection::Downlink {
            return Err(MacError::BadDownlink);
        }
        if f.fcnt < self.fcnt_down {
            return Err(MacError::BadDownlink); // replay
        }
        self.fcnt_down = f.fcnt + 1;
        Ok(f)
    }

    /// The two Class-A receive-window offsets after an uplink, seconds.
    pub fn rx_windows(&self) -> (f64, f64) {
        match self.state {
            MacState::Joining => (JOIN_ACCEPT_DELAY1_S, JOIN_ACCEPT_DELAY1_S + 1.0),
            MacState::Joined => (RECEIVE_DELAY1_S, RECEIVE_DELAY2_S),
        }
    }
}

/// A minimal network-server counterpart for tests and examples: accepts
/// joins and reflects confirmed uplinks with downlinks.
#[derive(Debug, Clone)]
pub struct TestNetworkServer {
    /// Root key shared with devices.
    pub app_key: [u8; 16],
    /// Network-assigned addresses, next to hand out.
    next_addr: u32,
    sessions: Vec<(u32, SessionKeys)>,
}

impl TestNetworkServer {
    /// New server with a key.
    pub fn new(app_key: [u8; 16]) -> Self {
        TestNetworkServer {
            app_key,
            next_addr: 0x2600_0001,
            sessions: Vec::new(),
        }
    }

    /// Handle a join-request; returns the join-accept wire bytes.
    pub fn handle_join(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        let jr = JoinRequest::from_bytes(bytes, &self.app_key).ok()?;
        let ja = JoinAccept {
            app_nonce: [0xA1, 0xB2, 0xC3],
            net_id: [0x13, 0x00, 0x00],
            dev_addr: self.next_addr,
        };
        let keys = ja.derive_keys(&self.app_key, jr.dev_nonce);
        self.sessions.push((self.next_addr, keys));
        self.next_addr += 1;
        Some(ja.to_bytes(&self.app_key))
    }

    /// Verify and decrypt an uplink from any joined device.
    pub fn handle_uplink(&self, bytes: &[u8]) -> Option<DataFrame> {
        for (_, keys) in &self.sessions {
            if let Ok(f) = DataFrame::from_bytes(bytes, keys) {
                return Some(f);
            }
        }
        None
    }

    /// Build a downlink to a device.
    pub fn build_downlink(&self, dev_addr: u32, fcnt: u32, payload: &[u8]) -> Option<Vec<u8>> {
        let keys = self
            .sessions
            .iter()
            .find(|(a, _)| *a == dev_addr)
            .map(|(_, k)| *k)?;
        Some(
            DataFrame {
                dev_addr,
                fcnt,
                fport: 1,
                payload: payload.to_vec(),
                confirmed: false,
                dir: FrameDirection::Downlink,
            }
            .to_bytes(&keys),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abp_mac() -> ClassAMac {
        ClassAMac::new(MacConfig {
            activation: Activation::Abp {
                dev_addr: 0x2601_1FAB,
                keys: SessionKeys {
                    nwk_skey: [1u8; 16],
                    app_skey: [2u8; 16],
                },
            },
        })
    }

    #[test]
    fn abp_comes_up_joined() {
        let mac = abp_mac();
        assert_eq!(mac.state(), MacState::Joined);
        assert_eq!(mac.dev_addr(), Some(0x2601_1FAB));
    }

    #[test]
    fn abp_uplinks_count_up() {
        let mut mac = abp_mac();
        let a = mac.build_uplink(1, b"one", false).unwrap();
        let b = mac.build_uplink(1, b"two", false).unwrap();
        assert_ne!(a, b);
        assert_eq!(mac.fcnt_up(), 2);
    }

    #[test]
    fn abp_cannot_join() {
        let mut mac = abp_mac();
        assert_eq!(
            mac.build_join_request(1).unwrap_err(),
            MacError::AbpCannotJoin
        );
    }

    #[test]
    fn full_otaa_join_and_data_exchange() {
        let app_key = [0x5Au8; 16];
        let mut server = TestNetworkServer::new(app_key);
        let mut mac = ClassAMac::new(MacConfig {
            activation: Activation::Otaa {
                app_eui: *b"APP_EUI_",
                dev_eui: *b"DEV_EUI_",
                app_key,
            },
        });
        assert_eq!(mac.state(), MacState::Joining);
        // join round trip
        let jr = mac.build_join_request(0x1234).unwrap();
        let ja = server.handle_join(&jr).expect("server accepts");
        let addr = mac.process_join_accept(&ja).unwrap();
        assert_eq!(mac.state(), MacState::Joined);
        assert_eq!(mac.dev_addr(), Some(addr));
        // uplink decodes on the server with derived keys
        let up = mac.build_uplink(1, b"sensor reading", false).unwrap();
        let got = server.handle_uplink(&up).expect("server decodes");
        assert_eq!(got.payload, b"sensor reading");
        assert_eq!(got.dev_addr, addr);
        // downlink decodes on the device
        let down = server.build_downlink(addr, 0, b"ack!").unwrap();
        let f = mac.process_downlink(&down).unwrap();
        assert_eq!(f.payload, b"ack!");
    }

    #[test]
    fn replayed_downlink_rejected() {
        let app_key = [0x66u8; 16];
        let mut server = TestNetworkServer::new(app_key);
        let mut mac = ClassAMac::new(MacConfig {
            activation: Activation::Otaa {
                app_eui: [0; 8],
                dev_eui: [1; 8],
                app_key,
            },
        });
        let jr = mac.build_join_request(7).unwrap();
        let ja = server.handle_join(&jr).unwrap();
        let addr = mac.process_join_accept(&ja).unwrap();
        let down = server.build_downlink(addr, 5, b"x").unwrap();
        mac.process_downlink(&down).unwrap();
        // same counter again → replay
        assert_eq!(
            mac.process_downlink(&down).unwrap_err(),
            MacError::BadDownlink
        );
    }

    #[test]
    fn uplink_before_join_fails() {
        let mut mac = ClassAMac::new(MacConfig {
            activation: Activation::Otaa {
                app_eui: [0; 8],
                dev_eui: [0; 8],
                app_key: [0; 16],
            },
        });
        assert_eq!(
            mac.build_uplink(1, b"x", false).unwrap_err(),
            MacError::NotJoined
        );
    }

    #[test]
    fn rx_window_timing() {
        let mac = abp_mac();
        assert_eq!(mac.rx_windows(), (1.0, 2.0));
        // TX→RX switch (45 µs, Table 4) easily makes a 1 s window
        const { assert!(45e-6 < RECEIVE_DELAY1_S) };
    }

    #[test]
    fn corrupt_join_accept_rejected() {
        let app_key = [9u8; 16];
        let mut server = TestNetworkServer::new(app_key);
        let mut mac = ClassAMac::new(MacConfig {
            activation: Activation::Otaa {
                app_eui: [0; 8],
                dev_eui: [2; 8],
                app_key,
            },
        });
        let jr = mac.build_join_request(3).unwrap();
        let mut ja = server.handle_join(&jr).unwrap();
        ja[5] ^= 0xFF;
        assert_eq!(
            mac.process_join_accept(&ja).unwrap_err(),
            MacError::BadDownlink
        );
        assert_eq!(mac.state(), MacState::Joining);
    }
}

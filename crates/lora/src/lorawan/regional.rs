//! Regional channel plans for the LoRaWAN MAC.
//!
//! TTN compatibility (paper §4.1) means obeying a region's channel grid,
//! data-rate table and duty-cycle rules. The paper's testbed runs in the
//! US 900 MHz ISM band (US915); EU868 is included because TTN's public
//! network launched there and the Class-A RX2 parameters differ in ways
//! the MAC must know about.

use tinysdr_rf::sx1276::LoRaParams;

/// A LoRaWAN region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// US 902–928 MHz (the paper's deployment band).
    Us915,
    /// EU 863–870 MHz.
    Eu868,
}

impl Region {
    /// Uplink channel center frequencies, Hz. US915 defines 64×125 kHz
    /// channels; TTN uses sub-band 2 (channels 8–15), which is what we
    /// expose. EU868 has the three mandatory join channels plus TTN's
    /// five extras.
    pub fn uplink_channels(self) -> Vec<f64> {
        match self {
            Region::Us915 => (0..8).map(|i| 903.9e6 + i as f64 * 200e3).collect(),
            Region::Eu868 => vec![
                868.1e6, 868.3e6, 868.5e6, 867.1e6, 867.3e6, 867.5e6, 867.7e6, 867.9e6,
            ],
        }
    }

    /// Downlink RX2 parameters: `(frequency_hz, sf, bw_hz)`.
    pub fn rx2(self) -> (f64, u8, f64) {
        match self {
            Region::Us915 => (923.3e6, 12, 500e3),
            Region::Eu868 => (869.525e6, 9, 125e3),
        }
    }

    /// Default uplink data-rate table as `(sf, bw)` pairs, DR0 first.
    pub fn data_rates(self) -> Vec<(u8, f64)> {
        match self {
            Region::Us915 => vec![(10, 125e3), (9, 125e3), (8, 125e3), (7, 125e3), (8, 500e3)],
            Region::Eu868 => vec![
                (12, 125e3),
                (11, 125e3),
                (10, 125e3),
                (9, 125e3),
                (8, 125e3),
                (7, 125e3),
                (7, 250e3),
            ],
        }
    }

    /// Maximum application payload per data rate index (LoRaWAN 1.0.3
    /// regional parameters, dwell-time limited for US915).
    pub fn max_payload(self, dr: usize) -> usize {
        match self {
            Region::Us915 => [11, 53, 125, 242, 242].get(dr).copied().unwrap_or(0),
            Region::Eu868 => [51, 51, 51, 115, 242, 242, 242]
                .get(dr)
                .copied()
                .unwrap_or(0),
        }
    }

    /// Duty-cycle cap as a fraction (EU 868 MHz band g: 1 %); US915 has
    /// a 400 ms dwell-time rule instead, expressed here as `None`.
    pub fn duty_cycle_cap(self) -> Option<f64> {
        match self {
            Region::Us915 => None,
            Region::Eu868 => Some(0.01),
        }
    }

    /// US915 dwell-time limit per transmission, seconds.
    pub fn dwell_limit_s(self) -> Option<f64> {
        match self {
            Region::Us915 => Some(0.4),
            Region::Eu868 => None,
        }
    }

    /// Check a planned uplink against the region's rules. Returns the
    /// airtime on success.
    ///
    /// # Errors
    /// Returns a human-readable violation.
    pub fn check_uplink(self, dr: usize, payload_len: usize) -> Result<f64, String> {
        let rates = self.data_rates();
        let &(sf, bw) = rates.get(dr).ok_or_else(|| format!("DR{dr} undefined"))?;
        if payload_len > self.max_payload(dr) {
            return Err(format!(
                "payload {payload_len} B exceeds DR{dr} limit {} B",
                self.max_payload(dr)
            ));
        }
        let airtime = LoRaParams::new(sf, bw, 5).airtime_s(payload_len + 13); // +MAC overhead
        if let Some(dwell) = self.dwell_limit_s() {
            if airtime > dwell {
                return Err(format!(
                    "airtime {airtime:.3} s exceeds the {dwell} s dwell limit"
                ));
            }
        }
        Ok(airtime)
    }

    /// Minimum period between uplinks of `airtime_s` under the region's
    /// duty-cycle rules, seconds (0 when only dwell rules apply).
    pub fn min_period_s(self, airtime_s: f64) -> f64 {
        match self.duty_cycle_cap() {
            Some(cap) => airtime_s / cap,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us915_channels_in_band() {
        let chans = Region::Us915.uplink_channels();
        assert_eq!(chans.len(), 8);
        for c in chans {
            assert!((902e6..=928e6).contains(&c), "{c}");
            // the AT86RF215 band plan covers them all
            assert!(tinysdr_rf::at86rf215::Band::containing(c).is_some());
        }
    }

    #[test]
    fn eu868_channels_in_band() {
        for c in Region::Eu868.uplink_channels() {
            assert!((863e6..=870e6).contains(&c));
        }
    }

    #[test]
    fn rx2_parameters() {
        let (f, sf, bw) = Region::Us915.rx2();
        assert_eq!((f, sf, bw), (923.3e6, 12, 500e3));
        let (f, sf, bw) = Region::Eu868.rx2();
        assert_eq!((f, sf, bw), (869.525e6, 9, 125e3));
    }

    #[test]
    fn us915_dwell_time_bounds_dr0() {
        // SF10/BW125 with an 11-byte payload squeaks under 400 ms
        let t = Region::Us915
            .check_uplink(0, 11)
            .expect("DR0 legal at 11 B");
        assert!(t <= 0.4, "airtime {t}");
        // a large payload at DR0 violates the payload cap
        assert!(Region::Us915.check_uplink(0, 50).is_err());
    }

    #[test]
    fn eu868_duty_cycle_math() {
        // a 1.2 s SF12 uplink at 1% duty cycle → ≥120 s between packets
        let t = Region::Eu868.check_uplink(0, 20).unwrap();
        let period = Region::Eu868.min_period_s(t);
        assert!(period >= 100.0 * t);
    }

    #[test]
    fn undefined_dr_rejected() {
        assert!(Region::Us915.check_uplink(9, 5).is_err());
    }

    #[test]
    fn payload_caps_monotone_in_dr() {
        for r in [Region::Us915, Region::Eu868] {
            let n = r.data_rates().len();
            for dr in 1..n {
                assert!(r.max_payload(dr) >= r.max_payload(dr - 1), "{r:?} DR{dr}");
            }
        }
    }
}

//! LoRa frame structure (paper Fig. 5).
//!
//! "the LoRa packet structure […] begins with a preamble of 10 zero
//! symbols (upchirps with zero cyclic-shift). This is followed by the
//! Sync field with two upchirp symbols. Next, a sequence of 2.25
//! downchirp symbols (chirp symbol with linearly decreasing frequency)
//! indicate the beginning of the payload. The payload then consists of a
//! sequence of upchirp symbols which encode a header, payload and CRC."

use crate::phy::CodeParams;

/// Frame-level parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameParams {
    /// PHY coding parameters.
    pub code: CodeParams,
    /// Preamble length in upchirp symbols (Fig. 5 uses 10; the OTA link
    /// of §5.3 uses 8).
    pub preamble_len: usize,
    /// The two sync-word symbols (network discriminator).
    pub sync_word: [u16; 2],
}

impl FrameParams {
    /// Paper Fig. 5 defaults: 10-symbol preamble, public-network-style
    /// sync symbols.
    pub fn new(code: CodeParams) -> Self {
        FrameParams {
            code,
            preamble_len: 10,
            sync_word: [8, 16],
        }
    }

    /// The §5.3 OTA configuration: 8-chirp preamble.
    pub fn ota(code: CodeParams) -> Self {
        FrameParams {
            code,
            preamble_len: 8,
            sync_word: [8, 16],
        }
    }

    /// Total frame length in *symbol periods* for a given payload-symbol
    /// count: preamble + 2 sync + 2.25 SFD + payload.
    pub fn frame_symbols(&self, payload_symbols: usize) -> f64 {
        self.preamble_len as f64 + 2.0 + 2.25 + payload_symbols as f64
    }
}

/// A fully described frame ready for the modulator: the symbol-domain
/// view of Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame parameters used to build it.
    pub params: FrameParams,
    /// Payload chirp-symbol values (header + payload + CRC encoded).
    pub symbols: Vec<u16>,
}

impl Frame {
    /// Build a frame from payload bytes.
    pub fn from_payload(payload: &[u8], params: FrameParams) -> Self {
        let symbols = crate::phy::encode(payload, params.code);
        Frame { params, symbols }
    }

    /// Total duration in seconds at bandwidth `bw`.
    pub fn duration_s(&self, bw: f64) -> f64 {
        let tsym = (1u32 << self.params.code.sf) as f64 / bw;
        self.params.frame_symbols(self.symbols.len()) * tsym
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_structure_counts() {
        let p = FrameParams::new(CodeParams::new(8, 1));
        assert_eq!(p.preamble_len, 10);
        // 10 preamble + 2 sync + 2.25 SFD + payload
        assert!((p.frame_symbols(20) - 34.25).abs() < 1e-12);
    }

    #[test]
    fn frame_builds_and_times() {
        let params = FrameParams::new(CodeParams::new(8, 1));
        let f = Frame::from_payload(&[1, 2, 3], params);
        assert!(!f.symbols.is_empty());
        // SF8 BW125: tsym = 2.048 ms
        let d = f.duration_s(125e3);
        let expect = params.frame_symbols(f.symbols.len()) * 0.002048;
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn ota_preamble_is_8() {
        let p = FrameParams::ota(CodeParams::new(8, 2));
        assert_eq!(p.preamble_len, 8);
    }

    #[test]
    fn sync_word_symbols_in_range() {
        let p = FrameParams::new(CodeParams::new(7, 1));
        for s in p.sync_word {
            assert!((s as usize) < (1 << 7));
        }
    }
}

//! Property-based invariants for the LoRa stack.

use proptest::prelude::*;
use tinysdr_lora::demodulator::Demodulator;
use tinysdr_lora::lorawan::frame::{crypt_payload, DataFrame, FrameDirection, SessionKeys};
use tinysdr_lora::lorawan::Aes128;
use tinysdr_lora::modulator::Modulator;
use tinysdr_lora::phy::{self, CodeParams};
use tinysdr_rf::impairments::ImpairmentChain;

proptest! {
    /// The full PHY chain (whiten → CRC → Hamming → interleave → Gray)
    /// is the identity for any payload at any SF/CR.
    #[test]
    fn phy_encode_decode_identity(
        payload in prop::collection::vec(any::<u8>(), 0..120),
        sf in 7u8..=12,
        cr in 1u8..=4,
    ) {
        let p = CodeParams::new(sf, cr);
        let syms = phy::encode(&payload, p);
        let dec = phy::decode(&syms, p).expect("decodes");
        prop_assert_eq!(dec.payload, payload);
        prop_assert!(dec.crc_ok && dec.header_ok);
    }

    /// Any single corrupted symbol is absorbed at CR 4/7 and 4/8 (the
    /// diagonal interleaver turns it into ≤1 bit per codeword).
    #[test]
    fn single_symbol_error_absorbed(
        payload in prop::collection::vec(any::<u8>(), 4..60),
        sf in 7u8..=10,
        cr in 3u8..=4,
        hit in any::<u16>(),
        flip in any::<u16>(),
    ) {
        let p = CodeParams::new(sf, cr);
        let mut syms = phy::encode(&payload, p);
        let idx = 8 + (hit as usize % (syms.len() - 8)); // spare the header
        let mask = ((1u16 << sf) - 1) & flip.max(1);
        syms[idx] ^= mask;
        if let Some(dec) = phy::decode(&syms, p) {
            // either fully corrected or flagged — never silently wrong
            if dec.crc_ok && dec.header_ok {
                prop_assert_eq!(dec.payload, payload);
            }
        }
    }

    /// Hamming encode/decode identity for every nibble and rate, and
    /// single-bit correction at CR 4/7 and 4/8.
    #[test]
    fn hamming_identity_and_correction(n in 0u8..16, cr in 1u8..=4, bit in 0u8..7) {
        let c = phy::hamming_encode(n, cr);
        prop_assert_eq!(phy::hamming_decode(c, cr).nibble, n);
        if cr >= 3 {
            let r = phy::hamming_decode(c ^ (1 << bit), cr);
            prop_assert_eq!(r.nibble, n);
        }
    }

    /// Interleaver is a bijection on blocks.
    #[test]
    fn interleaver_bijection(seed in any::<u64>(), sf_app in 5usize..=12, cr in 1u8..=4) {
        let mask = ((1u16 << (4 + cr)) - 1) as u8;
        let cws: Vec<u8> = (0..sf_app)
            .map(|i| (seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32 * 7) as u8) & mask)
            .collect();
        let syms = phy::interleave(&cws, sf_app, cr);
        prop_assert_eq!(phy::deinterleave(&syms, sf_app, cr), cws);
    }

    /// AES decrypt ∘ encrypt is the identity for any key/block.
    #[test]
    fn aes_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// LoRaWAN payload crypto is involutive and never the identity for
    /// nonempty payloads (keystream is never all-zero in practice).
    #[test]
    fn lorawan_crypt_involutive(
        key in any::<[u8; 16]>(),
        addr in any::<u32>(),
        fcnt in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let enc = crypt_payload(&key, addr, fcnt, FrameDirection::Uplink, &data);
        let dec = crypt_payload(&key, addr, fcnt, FrameDirection::Uplink, &enc);
        prop_assert_eq!(dec, data);
    }

    /// LoRaWAN data frames round-trip and any byte flip breaks the MIC.
    #[test]
    fn lorawan_frame_round_trip(
        addr in any::<u32>(),
        fcnt in 0u32..65536,
        fport in 1u8..=223,
        payload in prop::collection::vec(any::<u8>(), 0..48),
        flip_at in any::<u16>(),
    ) {
        let keys = SessionKeys { nwk_skey: [7; 16], app_skey: [9; 16] };
        let f = DataFrame {
            dev_addr: addr,
            fcnt,
            fport,
            payload: payload.clone(),
            confirmed: false,
            dir: FrameDirection::Uplink,
        };
        let wire = f.to_bytes(&keys);
        let back = DataFrame::from_bytes(&wire, &keys).expect("verifies");
        prop_assert_eq!(back.payload, payload);
        prop_assert_eq!(back.fcnt, fcnt);
        // tamper
        let mut bad = wire.clone();
        let i = flip_at as usize % bad.len();
        bad[i] ^= 0x01;
        prop_assert!(DataFrame::from_bytes(&bad, &keys).is_err());
    }

    /// The *waveform* chain — modulate → calibrated channel at high SNR
    /// → demodulate — recovers any payload at any SF/CR (the sample-
    /// domain mirror of `phy_encode_decode_identity`). −100 dBm is
    /// ~18 dB above the SF8/BW125 sensitivity, so failure means a modem
    /// regression, not bad luck.
    #[test]
    fn modem_round_trip_at_high_snr(
        payload in prop::collection::vec(any::<u8>(), 1..12),
        sf in 7u8..=8,
        cr in 1u8..=4,
        seed in any::<u64>(),
    ) {
        let bw = 125e3;
        let m = Modulator::standard(sf, bw, 1, cr);
        let d = Demodulator::standard(sf, bw, 1, cr);
        let tx = m.modulate(&payload);
        let rx = ImpairmentChain::new(4.5).apply(&tx, -100.0, bw, seed);
        let f = d.demodulate(&rx).expect("high-SNR frame must decode");
        prop_assert_eq!(f.payload, payload);
        prop_assert!(f.crc_ok && f.header_ok);
    }

    /// The modem absorbs carrier and timing offsets inside the
    /// documented tolerance. The budget is *combined*: a fractional
    /// timing offset of τ chips shifts the dechirped peak by τ bins and
    /// a CFO of ε bins by ±ε (the sign flips between up- and
    /// downchirps), so correct decoding needs |τ| + |ε| comfortably
    /// below the half-bin ambiguity point. We exercise ε ≤ 0.125 bin
    /// and τ ≤ 0.25 chip (plus any integer offset); beyond the budget
    /// the decoder fails loudly via CRC, never silently (covered by
    /// `heavy_header_damage_never_decodes_silently_wrong`).
    #[test]
    fn modem_survives_cfo_and_timing_within_tolerance(
        payload in prop::collection::vec(any::<u8>(), 1..8),
        sf in 7u8..=8,
        cfo_frac in -0.125f64..=0.125,
        delay_int in 0u16..300,
        delay_frac in 0.0f64..0.25,
        seed in any::<u64>(),
    ) {
        let bw = 125e3;
        let bin_hz = bw / (1u32 << sf) as f64;
        let m = Modulator::standard(sf, bw, 1, 4);
        let d = Demodulator::standard(sf, bw, 1, 4);
        let tx = m.modulate(&payload);
        let chain = ImpairmentChain::new(4.5)
            .with_cfo_hz(cfo_frac * bin_hz)
            .with_timing_offset(delay_int as f64 + delay_frac);
        let rx = chain.apply(&tx, -100.0, bw, seed);
        let f = d.demodulate(&rx).expect("offsets within tolerance must decode");
        prop_assert_eq!(f.payload, payload);
        prop_assert!(f.crc_ok);
    }

    /// Gray code: adjacent symbol values differ in exactly one bit.
    #[test]
    fn gray_adjacency(n in 0u16..4095) {
        let d = phy::gray_encode(n) ^ phy::gray_encode(n + 1);
        prop_assert_eq!(d.count_ones(), 1);
    }

    /// Whitening is involutive on arbitrary buffers.
    #[test]
    fn whitening_involutive(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut x = data.clone();
        phy::Whitener::new().apply(&mut x);
        phy::Whitener::new().apply(&mut x);
        prop_assert_eq!(x, data);
    }
}

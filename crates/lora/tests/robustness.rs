//! Robustness tests: impairments the bench figures don't sweep —
//! carrier frequency offset, receive-gain variation, and the full
//! radio-in-the-loop path through the AT86RF215 model and LVDS serdes.

use tinysdr_dsp::chirp::ChirpConfig;
use tinysdr_lora::demodulator::Demodulator;
use tinysdr_lora::modulator::Modulator;
use tinysdr_lora::packet::FrameParams;
use tinysdr_lora::phy::CodeParams;
use tinysdr_rf::channel::{apply_cfo, apply_delay, AwgnChannel};

fn modem() -> (Modulator, Demodulator, ChirpConfig) {
    let chirp = ChirpConfig::new(8, 125e3, 1);
    let fp = FrameParams::new(CodeParams::new(8, 4));
    (
        Modulator::new(chirp, fp),
        Demodulator::new(chirp, fp),
        chirp,
    )
}

/// Small carrier offsets (a fraction of one FFT bin) must not break
/// decoding. One bin at SF8/BW125 is 488 Hz; crystal error of ±10 ppm at
/// 915 MHz is ±9.2 kHz — real receivers correct that first, so we test
/// the residual-CFO regime (post-correction) of ±0.3 bin.
#[test]
fn tolerates_residual_cfo() {
    let (m, d, chirp) = modem();
    let bin_hz = chirp.bw / chirp.n_chips() as f64;
    for frac in [-0.3, -0.15, 0.15, 0.3] {
        let mut sig = m.modulate(b"cfo test");
        apply_cfo(&mut sig, frac * bin_hz, chirp.fs());
        let mut ch = AwgnChannel::new(4.5, 3);
        ch.apply(&mut sig, -115.0, chirp.fs());
        let f = d
            .demodulate(&sig)
            .unwrap_or_else(|| panic!("CFO {frac} bins"));
        assert_eq!(f.payload, b"cfo test", "CFO {frac} bins");
        assert!(f.crc_ok);
    }
}

/// Whole-bin CFO shifts every symbol identically; the frame alignment
/// absorbs it as a timing offset and decoding still succeeds.
#[test]
fn tolerates_integer_bin_cfo() {
    let (m, d, chirp) = modem();
    let bin_hz = chirp.bw / chirp.n_chips() as f64;
    for bins in [-2.0f64, 1.0, 3.0] {
        let mut sig = m.modulate(b"int cfo");
        apply_cfo(&mut sig, bins * bin_hz, chirp.fs());
        let mut ch = AwgnChannel::new(4.5, 5);
        ch.apply(&mut sig, -110.0, chirp.fs());
        if let Some(f) = d.demodulate(&sig) {
            // integer-bin offsets alias timing: either decoded clean or
            // rejected — never a silent wrong payload
            if f.crc_ok && f.header_ok {
                assert_eq!(f.payload, b"int cfo", "CFO {bins} bins decoded wrong");
            }
        }
    }
}

/// The full radio path: modulate → 13-bit DAC → LVDS serialize →
/// deserialize → AGC → 13-bit ADC → demodulate.
#[test]
fn radio_in_the_loop() {
    use tinysdr_rf::at86rf215::{At86Rf215, RadioState};
    use tinysdr_rf::lvds::{Deserializer, Serializer};

    let (m, d, chirp) = modem();
    let baseband = m.modulate(b"radio loop");

    // TX through the radio model
    let mut tx = At86Rf215::new();
    tx.transition(RadioState::Tx);
    tx.set_tx_power(0.0).unwrap();
    let rf = tx.transmit(&baseband).unwrap();

    // a weak link
    let mut ch = AwgnChannel::new(4.5, 9);
    let mut sig = rf;
    ch.apply(&mut sig, -112.0, chirp.fs());

    // RX through AGC + ADC
    let mut rx = At86Rf215::new();
    rx.transition(RadioState::Rx);
    rx.agc(&sig, 0.25);
    let (digitized, clipped) = rx.receive(&sig).unwrap();
    assert_eq!(clipped, 0, "AGC must avoid clipping");

    // across the LVDS interface into the FPGA
    let bits = Serializer::new().serialize(&digitized);
    let mut des = Deserializer::new();
    des.push_bits(&bits);
    let fpga_samples = des.finish();
    assert!(fpga_samples.len() >= digitized.len() - 1);

    let f = d
        .demodulate(&fpga_samples)
        .expect("decodes through the full chain");
    assert_eq!(f.payload, b"radio loop");
    assert!(f.crc_ok);
}

/// Two frames back to back in one capture: the demodulator finds the
/// first; re-running on the remainder finds the second.
#[test]
fn back_to_back_frames() {
    let (m, d, chirp) = modem();
    let mut capture = m.modulate(b"frame one");
    capture.extend(apply_delay(&m.modulate(b"frame two!"), 500));
    let mut ch = AwgnChannel::new(4.5, 11);
    ch.apply(&mut capture, -110.0, chirp.fs());

    let f1 = d.demodulate(&capture).expect("first frame");
    assert_eq!(f1.payload, b"frame one");
    let rest = &capture[f1.payload_start + f1.symbols.len() * 256..];
    let f2 = d.demodulate(rest).expect("second frame");
    assert_eq!(f2.payload, b"frame two!");
}

/// Payload sizes from empty to large survive the whole modem.
#[test]
fn payload_size_sweep() {
    let (m, d, chirp) = modem();
    for len in [0usize, 1, 13, 64, 255] {
        let payload: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let mut sig = m.modulate(&payload);
        let mut ch = AwgnChannel::new(4.5, len as u64);
        ch.apply(&mut sig, -105.0, chirp.fs());
        let f = d.demodulate(&sig).unwrap_or_else(|| panic!("len {len}"));
        assert_eq!(f.payload, payload, "len {len}");
    }
}

//! Adversarial ARQ battery: deterministic loss/duplication/reorder
//! schedules — including an exhaustive sweep over *all* loss patterns
//! for small transfers — must always end in exactly-once in-order
//! delivery or a clean typed timeout. Silent loss, duplicated bytes,
//! out-of-order bytes, and hangs are the bugs this file exists to
//! catch; every simulation runs under the event budget, so a protocol
//! livelock fails loudly instead of spinning.

use tinysdr_link::phylink::test_payload;
use tinysdr_link::pipe::{transfer, tuned_config, Hop};
use tinysdr_link::sim::{HopProfile, Pattern};
use tinysdr_link::testphy::TestPhy;

/// The one acceptable pair of outcomes, checked everywhere: either the
/// transfer completed and the receiver saw exactly the payload, or it
/// failed with a typed error and the receiver saw a strict in-order
/// prefix (never reordered, duplicated, or invented bytes).
fn assert_exactly_once_or_typed_timeout(
    label: &str,
    payload: &[u8],
    completed: bool,
    error: &Option<String>,
    delivered: &[u8],
) {
    if completed {
        assert_eq!(delivered, payload, "{label}: completed but bytes differ");
        assert!(error.is_none(), "{label}: completed with error {error:?}");
    } else {
        assert!(
            error.is_some(),
            "{label}: failed without a typed error (silent loss)"
        );
        assert!(
            payload.starts_with(delivered),
            "{label}: failure delivered non-prefix bytes (reorder/dup leak)"
        );
    }
}

/// Exhaustive loss schedules on the data direction: every one of the
/// 2^10 patterns over the first ten transmissions. The schedule is
/// finite, so retransmission must always win — every single pattern
/// must complete with exactly the payload.
#[test]
fn exhaustive_forward_loss_schedules_all_deliver() {
    let phy = TestPhy::new();
    let payload = test_payload(150, 21); // 3 data frames + FIN
    let cfg = tuned_config(&phy, 2);
    for bits in 0u32..(1 << 10) {
        let fire: Vec<bool> = (0..10).map(|i| bits & (1 << i) != 0).collect();
        let hop = Hop {
            forward: HopProfile {
                loss: Pattern::Schedule { fire },
                ..HopProfile::clean(-90.0)
            },
            reverse: HopProfile::clean(-90.0),
        };
        let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg.clone(), 4);
        assert!(
            rep.completed,
            "forward schedule {bits:#012b} did not complete: {:?}",
            rep.error
        );
        assert_eq!(delivered, payload, "forward schedule {bits:#012b}");
    }
}

/// Exhaustive loss schedules on the ACK direction — the direction that
/// produces duplicate deliveries if the receiver mishandles re-ACKs.
#[test]
fn exhaustive_reverse_loss_schedules_all_deliver() {
    let phy = TestPhy::new();
    let payload = test_payload(150, 22);
    let cfg = tuned_config(&phy, 2);
    for bits in 0u32..(1 << 10) {
        let fire: Vec<bool> = (0..10).map(|i| bits & (1 << i) != 0).collect();
        let hop = Hop {
            forward: HopProfile::clean(-90.0),
            reverse: HopProfile {
                loss: Pattern::Schedule { fire },
                ..HopProfile::clean(-90.0)
            },
        };
        let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg.clone(), 4);
        assert!(
            rep.completed,
            "reverse schedule {bits:#012b} did not complete: {:?}",
            rep.error
        );
        assert_eq!(delivered, payload, "reverse schedule {bits:#012b}");
    }
}

/// Joint exhaustive sweep: all 2^5 x 2^5 combinations of loss on the
/// first five transmissions of each direction simultaneously.
#[test]
fn exhaustive_joint_loss_schedules_all_deliver() {
    let phy = TestPhy::new();
    let payload = test_payload(100, 23); // 2 data frames + FIN
    let cfg = tuned_config(&phy, 2);
    for fwd_bits in 0u32..(1 << 5) {
        for rev_bits in 0u32..(1 << 5) {
            let hop = Hop {
                forward: HopProfile {
                    loss: Pattern::Schedule {
                        fire: (0..5).map(|i| fwd_bits & (1 << i) != 0).collect(),
                    },
                    ..HopProfile::clean(-90.0)
                },
                reverse: HopProfile {
                    loss: Pattern::Schedule {
                        fire: (0..5).map(|i| rev_bits & (1 << i) != 0).collect(),
                    },
                    ..HopProfile::clean(-90.0)
                },
            };
            let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg.clone(), 4);
            assert!(
                rep.completed,
                "joint schedule fwd {fwd_bits:#07b} rev {rev_bits:#07b}: {:?}",
                rep.error
            );
            assert_eq!(
                delivered, payload,
                "joint schedule fwd {fwd_bits:#07b} rev {rev_bits:#07b}"
            );
        }
    }
}

/// Worst-case periodic bursts, both directions, every phase: the burst
/// recurs forever, so completion is not guaranteed — but the outcome
/// must always be exactly-once delivery or a typed timeout, and with
/// the default 12-attempt budget every sub-saturation burst must in
/// fact complete.
#[test]
fn periodic_bursts_deliver_or_fail_typed() {
    let phy = TestPhy::new();
    let payload = test_payload(200, 24);
    let cfg = tuned_config(&phy, 4);
    for period in [2u64, 3, 5] {
        for len in 1..=period {
            for offset in 0..period {
                let burst = Pattern::Burst {
                    period,
                    len,
                    offset,
                };
                for dir in ["fwd", "rev"] {
                    let hop = if dir == "fwd" {
                        Hop {
                            forward: HopProfile {
                                loss: burst.clone(),
                                ..HopProfile::clean(-90.0)
                            },
                            reverse: HopProfile::clean(-90.0),
                        }
                    } else {
                        Hop {
                            forward: HopProfile::clean(-90.0),
                            reverse: HopProfile {
                                loss: burst.clone(),
                                ..HopProfile::clean(-90.0)
                            },
                        }
                    };
                    let label = format!("burst {len}/{period}+{offset} on {dir}");
                    let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg.clone(), 9);
                    assert_exactly_once_or_typed_timeout(
                        &label,
                        &payload,
                        rep.completed,
                        &rep.error,
                        &delivered,
                    );
                    if len < period {
                        assert!(
                            rep.completed,
                            "{label}: sub-saturation burst must complete, got {:?}",
                            rep.error
                        );
                    }
                }
            }
        }
    }
}

/// Seeded Bernoulli storms across loss x duplication x reorder and
/// many seeds: never silent loss, never a duplicate byte, never a
/// hang — and at moderate loss the transfer must actually complete.
#[test]
fn seeded_bernoulli_storms_are_exactly_once_or_typed() {
    let phy = TestPhy::new();
    let payload = test_payload(420, 25);
    let cfg = tuned_config(&phy, 4);
    for &loss in &[0.0, 0.15, 0.35] {
        for &dup in &[0.0, 0.25] {
            for &reorder in &[0.0, 0.25] {
                for seed in 0..12u64 {
                    let mk = || HopProfile {
                        loss: Pattern::Bernoulli { prob: loss },
                        duplicate: Pattern::Bernoulli { prob: dup },
                        reorder: Pattern::Bernoulli { prob: reorder },
                        ..HopProfile::clean(-90.0)
                    };
                    let hop = Hop {
                        forward: mk(),
                        reverse: mk(),
                    };
                    let label =
                        format!("storm loss={loss} dup={dup} reorder={reorder} seed={seed}");
                    let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg.clone(), seed);
                    assert_exactly_once_or_typed_timeout(
                        &label,
                        &payload,
                        rep.completed,
                        &rep.error,
                        &delivered,
                    );
                    if loss <= 0.15 {
                        assert!(
                            rep.completed,
                            "{label}: moderate loss must complete, got {:?}",
                            rep.error
                        );
                    }
                }
            }
        }
    }
}

/// A dead channel is a typed timeout naming the stuck frame — not a
/// hang, not a partial delivery passed off as success.
#[test]
fn blackout_is_a_typed_timeout() {
    let phy = TestPhy::new();
    let payload = test_payload(300, 26);
    let mut cfg = tuned_config(&phy, 4);
    cfg.max_attempts = 5;
    let hop = Hop {
        forward: HopProfile {
            loss: Pattern::Bernoulli { prob: 1.0 },
            ..HopProfile::clean(-120.0)
        },
        reverse: HopProfile::clean(-120.0),
    };
    let (rep, delivered) = transfer(&payload, &phy, &[hop], cfg, 3);
    assert!(!rep.completed);
    let err = rep.error.expect("typed error");
    assert!(
        err.contains("unacked after 5 attempts"),
        "error must name the attempt budget: {err}"
    );
    assert!(delivered.is_empty());
}

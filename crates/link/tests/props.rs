//! Property-based invariants of the frame codec: lossless round-trips
//! for arbitrary (including escape-dense) payloads, and the guarantee
//! that a single flipped bit anywhere on the wire is always caught by
//! the CRC or the framing — never delivered as a valid frame.

use proptest::prelude::*;
use tinysdr_link::frame::{Deframer, Frame, FrameError, FEND, FESC, MAX_PAYLOAD, TFEND, TFESC};

proptest! {
    /// `decode(encode(frame))` is the identity for any data frame.
    #[test]
    fn data_frame_round_trips(
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
    ) {
        let f = Frame::data(seq, payload);
        let wire = f.encode();
        prop_assert_eq!(Frame::decode(&wire).expect("decodes"), f);
    }

    /// Escape-dense payloads — every byte is one of the four KISS
    /// special values — survive the escaping round trip.
    #[test]
    fn escape_heavy_payload_round_trips(
        seq in any::<u16>(),
        picks in prop::collection::vec(0usize..4, 1..=MAX_PAYLOAD),
    ) {
        let specials = [FEND, FESC, TFEND, TFESC];
        let payload: Vec<u8> = picks.iter().map(|&i| specials[i]).collect();
        let f = Frame::data(seq, payload.clone());
        let wire = f.encode();
        // worst-case expansion is bounded: every special costs 2 bytes
        prop_assert!(wire.len() <= 2 * payload.len() + 16, "wire {} for payload {}", wire.len(), payload.len());
        prop_assert_eq!(Frame::decode(&wire).expect("decodes"), f);
    }

    /// The control frames round-trip too (they carry the ARQ).
    #[test]
    fn control_frames_round_trip(seq in any::<u16>(), rssi in -140.0f64..0.0) {
        for f in [Frame::ack(seq), Frame::fin(seq), Frame::fin_ack(seq), Frame::ping(seq), Frame::pong(seq, rssi)] {
            let wire = f.encode();
            prop_assert_eq!(Frame::decode(&wire).expect("decodes"), f.clone());
        }
    }

    /// Any single-bit corruption of the wire image is caught: direct
    /// decode errors, and a streaming deframer never emits a frame
    /// from the corrupted buffer (a flip that forges a FEND splits the
    /// frame into fragments, each of which must then fail the CRC or
    /// the structure checks).
    #[test]
    fn single_bit_corruption_is_always_caught(
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
        flip in any::<u32>(),
    ) {
        let f = Frame::data(seq, payload);
        let wire = f.encode();
        let bit = flip as usize % (wire.len() * 8);
        let mut bad = wire.clone();
        bad[bit / 8] ^= 1u8 << (bit % 8);
        prop_assert!(
            Frame::decode(&bad).is_err(),
            "decode accepted a corrupted wire image (bit {bit})"
        );
        let mut deframer = Deframer::new();
        let mut out = Vec::new();
        deframer.push_bytes(&bad, &mut out);
        prop_assert!(
            out.is_empty(),
            "deframer emitted {} frame(s) from a single-bit-corrupted buffer (bit {bit})",
            out.len()
        );
    }

    /// A streaming deframer recovers every frame from a concatenated
    /// multi-frame capture, in order, regardless of how the bytes are
    /// sliced into pushes.
    #[test]
    fn deframer_recovers_concatenated_frames(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..6),
        slice in 1usize..17,
    ) {
        let frames: Vec<Frame> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| Frame::data(i as u16, p.clone()))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut deframer = Deframer::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(slice) {
            deframer.push_bytes(chunk, &mut out);
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(deframer.rejected(), 0);
    }

    /// The deframer resynchronizes: garbage before and after a valid
    /// frame is discarded (and counted), the frame itself survives.
    #[test]
    fn deframer_resyncs_through_noise(
        noise_pre in prop::collection::vec(any::<u8>(), 0..32),
        noise_post in prop::collection::vec(any::<u8>(), 0..32),
        payload in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let f = Frame::data(7, payload);
        let mut stream = noise_pre.clone();
        stream.extend_from_slice(&f.encode());
        stream.extend_from_slice(&noise_post);
        let mut deframer = Deframer::new();
        let mut out = Vec::new();
        deframer.push_bytes(&stream, &mut out);
        prop_assert!(
            out.contains(&f),
            "frame lost in noise (pre {} post {} bytes)",
            noise_pre.len(),
            noise_post.len()
        );
    }

    /// Bytes spliced into the envelope (a growth corruption, not a
    /// flip) land on the CRC, never on a silent mis-parse.
    #[test]
    fn spliced_bytes_fail_the_crc(extra in 1usize..16, at_frac in 0.0f64..1.0) {
        let f = Frame::data(1, vec![0x11; 24]);
        let mut grown = f.encode();
        // insert plain (non-special) bytes strictly inside the envelope
        let at = 1 + ((at_frac * (grown.len() - 2) as f64) as usize);
        for _ in 0..extra {
            grown.insert(at, 0x22);
        }
        match Frame::decode(&grown) {
            Err(FrameError::BadCrc) => {}
            other => prop_assert!(false, "expected BadCrc, got {other:?}"),
        }
    }
}

//! End-to-end OTA-over-ARQ: the firmware wire stream travels over the
//! real packet data plane, the unpacked image is CRC-verified, runs
//! are bit-identical, a relay chain delivers byte-identical images,
//! and the byte accounting agrees with the abstract session model that
//! prices the same stream in `repro energy`.

use tinysdr_link::pipe::{tuned_config, Hop};
use tinysdr_link::sim::HopProfile;
use tinysdr_link::testphy::TestPhy;
use tinysdr_link::transfer::ota_transfer;
use tinysdr_ota::blocks::BlockedUpdate;
use tinysdr_ota::image::FirmwareImage;
use tinysdr_ota::protocol::packetize;
use tinysdr_ota::session::{run_session, LinkModel, SessionConfig};

fn update() -> BlockedUpdate {
    BlockedUpdate::build(&FirmwareImage::mcu("e2e_fw", 9_000, 5))
}

/// Two runs with identical inputs produce the identical report — per
/// -node energy ledgers, per-edge statistics, timings, everything.
#[test]
fn ota_transfer_is_bit_identical_across_runs() {
    let phy = TestPhy::new();
    let upd = update();
    let hops = [Hop::symmetric(HopProfile::lossy(-90.0, 0.12))];
    let cfg = tuned_config(&phy, 4);
    let (rep_a, img_a) = ota_transfer(&upd, &phy, &hops, cfg.clone(), 31);
    let (rep_b, img_b) = ota_transfer(&upd, &phy, &hops, cfg, 31);
    assert!(
        rep_a.link.completed && rep_a.image_ok,
        "{:?}",
        rep_a.link.error
    );
    assert_eq!(rep_a, rep_b, "same inputs must reproduce the same report");
    assert_eq!(img_a, img_b);
}

/// The delivered image is the original image, bit for bit, and the
/// update's CRC endorses it.
#[test]
fn delivered_image_matches_source() {
    let phy = TestPhy::new();
    let image = FirmwareImage::mcu("e2e_src", 7_000, 9);
    let upd = BlockedUpdate::build(&image);
    let hops = [Hop::symmetric(HopProfile::lossy(-90.0, 0.1))];
    let (rep, img) = ota_transfer(&upd, &phy, &hops, tuned_config(&phy, 4), 32);
    assert!(rep.link.completed && rep.image_ok, "{:?}", rep.link.error);
    assert_eq!(img, image.data, "unpacked image differs from the source");
    assert_eq!(rep.image_len, image.data.len() as u64);
}

/// A 2-hop relay chain delivers exactly the bytes the direct link
/// delivers — store-and-forward must be invisible to the image.
#[test]
fn relay_chain_delivers_single_hop_bytes() {
    let phy = TestPhy::new();
    let upd = update();
    let cfg = tuned_config(&phy, 4);
    let hop = || Hop::symmetric(HopProfile::lossy(-90.0, 0.1));
    let (direct, img_direct) = ota_transfer(&upd, &phy, &[hop()], cfg.clone(), 33);
    let (relayed, img_relayed) = ota_transfer(&upd, &phy, &[hop(), hop()], cfg, 33);
    assert!(
        direct.link.completed && direct.image_ok,
        "{:?}",
        direct.link.error
    );
    assert!(
        relayed.link.completed && relayed.image_ok,
        "{:?}",
        relayed.link.error
    );
    assert_eq!(
        img_direct, img_relayed,
        "relay chain altered the image bytes"
    );
    assert_eq!(direct.stream_len, relayed.stream_len);
    // the relay genuinely worked both faces
    let relay = &relayed.link.sim.nodes[1];
    assert!(relay.label.starts_with("relay"));
    let tags = relay.energy.by_tag();
    assert!(tags["radio_rx"] > 0.0 && tags["radio_tx"] > 0.0);
}

/// Byte accounting agrees with the abstract session model: both
/// transports move the same `wire_stream`, so the link transfer's
/// stream length equals the stream the session packetizes, and a
/// completed session airs exactly one distinct data packet per
/// packetized chunk of that same stream.
#[test]
fn accounting_matches_abstract_session_model() {
    let phy = TestPhy::new();
    let upd = update();
    let stream = upd.wire_stream();
    let hops = [Hop::symmetric(HopProfile::clean(-80.0))];
    let (rep, _) = ota_transfer(&upd, &phy, &hops, tuned_config(&phy, 4), 34);
    assert!(rep.link.completed && rep.image_ok, "{:?}", rep.link.error);
    assert_eq!(
        rep.stream_len,
        stream.len() as u64,
        "link transport moved a different stream than the session model prices"
    );
    let session = run_session(
        &upd,
        &LinkModel::from_downlink(-80.0),
        &SessionConfig::default(),
    );
    assert!(session.completed);
    assert_eq!(
        session.data_packets as usize,
        packetize(&stream).len(),
        "session model airs one distinct packet per chunk of the same stream"
    );
    // delivered payload bytes agree: chunks concatenate back to the stream
    let rebuilt: usize = packetize(&stream)
        .iter()
        .map(|m| match m {
            tinysdr_ota::protocol::OtaMessage::Data { chunk, .. } => chunk.len(),
            _ => 0,
        })
        .sum();
    assert_eq!(rebuilt as u64, rep.stream_len);
}

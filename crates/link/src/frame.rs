//! KISS-style byte framing with escaping, sequence numbers, and a
//! CRC-16 trailer.
//!
//! The wire image of one frame is
//!
//! ```text
//! FEND  escape( kind | seq_lo seq_hi | payload… | crc_hi crc_lo )  FEND
//! ```
//!
//! where `escape` replaces in-band `FEND`/`FESC` bytes with the
//! two-byte KISS sequences (`FESC TFEND` / `FESC TFESC`), `seq` is a
//! little-endian `u16`, and the CRC-16 (the workspace's CRC-16/XMODEM,
//! shared with the LoRa PHY) covers `kind|seq|payload` big-endian —
//! the same trailer convention as `tinysdr_ota::protocol`.
//!
//! The framing exists so a packet layer can ride **any** registered
//! [`tinysdr_rf::phy::PhyModem`]: a modem's `demodulate` returns a
//! best-effort byte stream, and the [`Deframer`] recovers frame
//! boundaries from it even when leading/trailing bytes are noise.
//! Anything that does not validate (bad escape, short body, CRC
//! mismatch, unknown kind) is *dropped and counted* — corruption
//! becomes loss, never a silently different frame.

use tinysdr_lora::phy::crc16;

/// Frame delimiter (KISS `FEND`).
pub const FEND: u8 = 0xC0;
/// Escape byte (KISS `FESC`).
pub const FESC: u8 = 0xDB;
/// Escaped substitute for an in-band `FEND`.
pub const TFEND: u8 = 0xDC;
/// Escaped substitute for an in-band `FESC`.
pub const TFESC: u8 = 0xDD;

/// Largest payload a single frame may carry, bytes. Chosen to keep the
/// worst-case escaped wire image inside a 255-byte LoRa packet with
/// headroom for header, CRC and escaping overhead.
pub const MAX_PAYLOAD: usize = 120;

/// Frame types of the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// One chunk of an ARQ byte stream.
    Data,
    /// Acknowledges a received `Data` frame (same `seq`).
    Ack,
    /// End of an ARQ stream (sent only after every `Data` is acked).
    Fin,
    /// Acknowledges a `Fin` — distinct from [`FrameKind::Ack`] so a
    /// late duplicate data ACK can never terminate a stream early.
    FinAck,
    /// RF ping request.
    Ping,
    /// RF ping reply (payload carries the responder's measured RSSI).
    Pong,
}

impl FrameKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            FrameKind::Data => 0x01,
            FrameKind::Ack => 0x02,
            FrameKind::Fin => 0x03,
            FrameKind::FinAck => 0x04,
            FrameKind::Ping => 0x05,
            FrameKind::Pong => 0x06,
        }
    }

    /// Parse a wire tag.
    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        Some(match tag {
            0x01 => FrameKind::Data,
            0x02 => FrameKind::Ack,
            0x03 => FrameKind::Fin,
            0x04 => FrameKind::FinAck,
            0x05 => FrameKind::Ping,
            0x06 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// One link-layer frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Sequence number (wire-level; ARQ endpoints track 64-bit logical
    /// indices and put the low 16 bits here).
    pub seq: u16,
    /// Payload bytes (`Data` chunks; RSSI report in a `Pong`).
    pub payload: Vec<u8>,
}

/// Decoding failures. Every variant means the frame is *dropped* — the
/// deframer counts it and moves on, so corruption is indistinguishable
/// from loss at the ARQ layer, exactly like a real radio CRC gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No complete `FEND … FEND` envelope in the input.
    NoFrame,
    /// Unescaped body shorter than header + CRC (5 bytes).
    Truncated,
    /// `FESC` followed by something other than `TFEND`/`TFESC`.
    BadEscape(u8),
    /// CRC-16 trailer mismatch.
    BadCrc,
    /// Unknown frame kind tag.
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NoFrame => write!(f, "no complete frame envelope"),
            FrameError::Truncated => write!(f, "frame body shorter than header + CRC"),
            FrameError::BadEscape(b) => write!(f, "invalid escape sequence FESC {b:#04x}"),
            FrameError::BadCrc => write!(f, "frame CRC-16 mismatch"),
            FrameError::BadKind(t) => write!(f, "unknown frame kind tag {t:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// A data chunk.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`MAX_PAYLOAD`] — chunking is the
    /// ARQ layer's job, and a silent truncation here would corrupt the
    /// stream.
    pub fn data(seq: u16, payload: Vec<u8>) -> Frame {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "data payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            payload.len()
        );
        Frame {
            kind: FrameKind::Data,
            seq,
            payload,
        }
    }

    /// An ACK for `seq`.
    pub fn ack(seq: u16) -> Frame {
        Frame {
            kind: FrameKind::Ack,
            seq,
            payload: Vec::new(),
        }
    }

    /// A stream-terminating FIN (seq = total frame count, mod 2^16).
    pub fn fin(seq: u16) -> Frame {
        Frame {
            kind: FrameKind::Fin,
            seq,
            payload: Vec::new(),
        }
    }

    /// A FIN acknowledgement.
    pub fn fin_ack(seq: u16) -> Frame {
        Frame {
            kind: FrameKind::FinAck,
            seq,
            payload: Vec::new(),
        }
    }

    /// A ping request.
    pub fn ping(seq: u16) -> Frame {
        Frame {
            kind: FrameKind::Ping,
            seq,
            payload: Vec::new(),
        }
    }

    /// A ping reply carrying the responder's measured RSSI, dBm.
    pub fn pong(seq: u16, rssi_dbm: f64) -> Frame {
        Frame {
            kind: FrameKind::Pong,
            seq,
            payload: rssi_dbm.to_le_bytes().to_vec(),
        }
    }

    /// The RSSI a [`Frame::pong`] carries; `None` for other frames or a
    /// malformed payload.
    pub fn pong_rssi_dbm(&self) -> Option<f64> {
        if self.kind != FrameKind::Pong {
            return None;
        }
        let bytes: [u8; 8] = self.payload.as_slice().try_into().ok()?;
        Some(f64::from_le_bytes(bytes))
    }

    /// Encode to the delimited, escaped wire image.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] (unreachable via
    /// the constructors, which enforce the bound).
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_PAYLOAD,
            "payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            self.payload.len()
        );
        let mut body = Vec::with_capacity(5 + self.payload.len());
        body.push(self.kind.tag());
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&self.payload);
        let crc = crc16(&body);
        body.extend_from_slice(&crc.to_be_bytes());

        let mut wire = Vec::with_capacity(body.len() + 2);
        wire.push(FEND);
        for &b in &body {
            match b {
                FEND => wire.extend_from_slice(&[FESC, TFEND]),
                FESC => wire.extend_from_slice(&[FESC, TFESC]),
                other => wire.push(other),
            }
        }
        wire.push(FEND);
        wire
    }

    /// Decode exactly one frame from a wire image. Strict: the input
    /// must contain one complete envelope (noise before the first and
    /// after the last delimiter is tolerated and ignored, matching what
    /// a radio capture looks like).
    ///
    /// # Errors
    /// Any validation failure ([`FrameError`]); the input should then
    /// be treated as loss.
    pub fn decode(wire: &[u8]) -> Result<Frame, FrameError> {
        let mut d = Deframer::new();
        let mut out = Vec::new();
        d.push_bytes(wire, &mut out);
        match out.pop() {
            Some(f) if out.is_empty() => Ok(f),
            Some(_) => Err(FrameError::NoFrame), // more than one frame: ambiguous
            None => Err(d.last_error.unwrap_or(FrameError::NoFrame)),
        }
    }

    /// Decode the unescaped body (everything between two delimiters,
    /// escapes already resolved).
    fn from_body(body: &[u8]) -> Result<Frame, FrameError> {
        if body.len() < 5 {
            return Err(FrameError::Truncated);
        }
        let (content, crc_bytes) = body.split_at(body.len() - 2);
        let want = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
        if crc16(content) != want {
            return Err(FrameError::BadCrc);
        }
        let kind = FrameKind::from_tag(content[0]).ok_or(FrameError::BadKind(content[0]))?;
        let seq = u16::from_le_bytes([content[1], content[2]]);
        Ok(Frame {
            kind,
            seq,
            payload: content[3..].to_vec(),
        })
    }
}

/// Streaming frame recovery from a (possibly noisy) byte stream.
///
/// Feed arbitrary byte slices in; complete, validated frames come out.
/// Bytes before the first delimiter are skipped as noise; empty
/// envelopes (back-to-back `FEND`s, a KISS idiom) are ignored; bodies
/// that fail validation are counted in [`Deframer::rejected`] and
/// dropped. An unterminated trailing frame stays buffered until its
/// closing `FEND` arrives on a later push.
#[derive(Debug, Default)]
pub struct Deframer {
    body: Vec<u8>,
    in_frame: bool,
    escaped: bool,
    bad_body: bool,
    noise_bytes: u64,
    rejected: u64,
    last_error: Option<FrameError>,
}

impl Deframer {
    /// A fresh deframer.
    pub fn new() -> Self {
        Deframer::default()
    }

    /// Bytes discarded outside any frame envelope.
    pub fn noise_bytes(&self) -> u64 {
        self.noise_bytes
    }

    /// Complete envelopes that failed validation (escape/CRC/kind).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Consume `bytes`, appending every recovered frame to `out`.
    pub fn push_bytes(&mut self, bytes: &[u8], out: &mut Vec<Frame>) {
        for &b in bytes {
            if !self.in_frame {
                if b == FEND {
                    self.in_frame = true;
                    self.body.clear();
                    self.escaped = false;
                    self.bad_body = false;
                } else {
                    self.noise_bytes += 1;
                }
                continue;
            }
            if b == FEND {
                // end of envelope (or a spurious re-sync delimiter)
                if self.escaped {
                    // dangling FESC before the delimiter: invalid body
                    self.bad_body = true;
                    self.last_error = Some(FrameError::BadEscape(FEND));
                }
                if !self.body.is_empty() || self.bad_body {
                    if self.bad_body {
                        self.rejected += 1;
                    } else {
                        match Frame::from_body(&self.body) {
                            Ok(f) => out.push(f),
                            Err(e) => {
                                self.rejected += 1;
                                self.last_error = Some(e);
                            }
                        }
                    }
                }
                // stay in-frame: this FEND also opens the next envelope
                self.body.clear();
                self.escaped = false;
                self.bad_body = false;
                continue;
            }
            if self.escaped {
                self.escaped = false;
                match b {
                    TFEND => self.body.push(FEND),
                    TFESC => self.body.push(FESC),
                    other => {
                        self.bad_body = true;
                        self.last_error = Some(FrameError::BadEscape(other));
                    }
                }
            } else if b == FESC {
                self.escaped = true;
            } else {
                self.body.push(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        let frames = vec![
            Frame::data(7, vec![1, 2, 3]),
            Frame::ack(7),
            Frame::fin(999),
            Frame::fin_ack(999),
            Frame::ping(3),
            Frame::pong(3, -91.25),
        ];
        for f in frames {
            let wire = f.encode();
            assert_eq!(wire.first(), Some(&FEND));
            assert_eq!(wire.last(), Some(&FEND));
            assert_eq!(Frame::decode(&wire).expect("decodes"), f);
        }
    }

    #[test]
    fn escape_heavy_payload_round_trips() {
        // payload consisting entirely of delimiter/escape bytes
        let payload = vec![FEND, FESC, FEND, FESC, TFEND, TFESC, FEND];
        let f = Frame::data(0xBEEF, payload.clone());
        let wire = f.encode();
        // no raw FEND inside the envelope
        assert!(wire[1..wire.len() - 1].iter().all(|&b| b != FEND));
        let back = Frame::decode(&wire).expect("decodes");
        assert_eq!(back.payload, payload);
        assert_eq!(back.seq, 0xBEEF);
    }

    #[test]
    fn pong_carries_rssi() {
        let f = Frame::pong(1, -103.5);
        assert_eq!(f.pong_rssi_dbm(), Some(-103.5));
        assert_eq!(Frame::ack(1).pong_rssi_dbm(), None);
    }

    #[test]
    fn deframer_recovers_frames_from_noisy_stream() {
        let a = Frame::data(1, vec![0xAA; 10]);
        let b = Frame::ack(1);
        let mut stream = vec![0x17, 0x99]; // leading noise
        stream.extend_from_slice(&a.encode());
        stream.extend_from_slice(&[FEND, FEND]); // empty envelopes
        stream.extend_from_slice(&b.encode());
        stream.extend_from_slice(&[0x42]); // trailing noise (next frame?)
        let mut d = Deframer::new();
        let mut out = Vec::new();
        d.push_bytes(&stream, &mut out);
        assert_eq!(out, vec![a, b]);
        assert_eq!(d.noise_bytes(), 2, "only the pre-sync bytes count");
        assert_eq!(d.rejected(), 0);
    }

    #[test]
    fn deframer_survives_split_pushes() {
        let f = Frame::data(42, (0u8..100).collect());
        let wire = f.encode();
        for split in 1..wire.len() {
            let mut d = Deframer::new();
            let mut out = Vec::new();
            d.push_bytes(&wire[..split], &mut out);
            d.push_bytes(&wire[split..], &mut out);
            assert_eq!(out, vec![f.clone()], "split at {split}");
        }
    }

    #[test]
    fn corrupted_body_is_rejected_and_counted() {
        let f = Frame::data(5, vec![1, 2, 3, 4]);
        let mut wire = f.encode();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x10;
        let mut d = Deframer::new();
        let mut out = Vec::new();
        d.push_bytes(&wire, &mut out);
        // either the CRC catches it, or the flip hit a delimiter and the
        // fragments fail validation — never a silently different frame
        assert!(out.is_empty() || out == vec![f.clone()]);
        if out.is_empty() {
            assert!(d.rejected() > 0 || d.noise_bytes() > 0);
        }
    }

    #[test]
    fn bad_escape_is_rejected() {
        // FEND, kind, FESC followed by a non-TFEND/TFESC byte, FEND
        let wire = vec![FEND, 0x01, FESC, 0x00, 0x10, 0x20, 0x30, 0x40, FEND];
        assert_eq!(Frame::decode(&wire), Err(FrameError::BadEscape(0x00)));
    }

    #[test]
    fn short_body_is_truncated() {
        let wire = vec![FEND, 0x01, 0x02, FEND];
        assert_eq!(Frame::decode(&wire), Err(FrameError::Truncated));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut body = vec![0x7Fu8, 0, 0];
        let crc = crc16(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        let mut wire = vec![FEND];
        wire.extend_from_slice(&body);
        wire.push(FEND);
        assert_eq!(Frame::decode(&wire), Err(FrameError::BadKind(0x7F)));
    }

    #[test]
    fn decode_requires_a_complete_envelope() {
        let f = Frame::ack(9);
        let wire = f.encode();
        // missing the closing delimiter: not a frame yet
        assert!(Frame::decode(&wire[..wire.len() - 1]).is_err());
        // missing the opening delimiter: body is noise, no frame
        assert!(Frame::decode(&wire[1..]).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PAYLOAD")]
    fn oversized_payload_panics() {
        let _ = Frame::data(0, vec![0; MAX_PAYLOAD + 1]);
    }
}

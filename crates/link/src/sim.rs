//! Deterministic event-driven multi-node network simulation.
//!
//! One [`NetSim`] is a set of nodes (ARQ senders/receivers, relays,
//! pingers, pongers) on a broadcast medium described by directed edges.
//! Time is the integer-nanosecond clock of
//! [`tinysdr_dsp::event::EventQueue`]; every frame occupies the air for
//! its real PHY airtime ([`tinysdr_rf::phy::PhyModem::airtime_len_s`]
//! of the escaped wire image), transmissions from one radio serialize
//! with the OTA turnaround gap, and energy is charged to each node's
//! [`EnergyLedger`] at the paper-calibrated powers — the same
//! `radio_rx` / `radio_tx` / `mcu` tags as the PR 5 session engine.
//!
//! Physics implemented, in the order a transmission experiences them:
//!
//! 1. **Serialization** — a node's transmissions queue behind each
//!    other (`tx_free` cursor) with [`tinysdr_ota::session::TURNAROUND_S`]
//!    between frames; half-duplex, so transmitting corrupts anything
//!    the node was receiving at the same instant.
//! 2. **Listen-before-talk with random backoff** — a node first adds a
//!    CSMA-style backoff (a per-node, per-transmission splitmix64 draw
//!    in `[0, TURNAROUND_S/2)`) and then defers past every reception
//!    already committed to the air at its own antenna (carrier sense).
//!    Without the deferral a saturated half-duplex sender talks over
//!    every returning ACK and a store-and-forward relay can never
//!    interleave its two faces; without the backoff a relay chain —
//!    where every node shares identical turnaround constants and zero
//!    propagation delay — self-synchronizes into a phase lock in which
//!    the downstream ACK lands on the next upstream data frame on
//!    *every* cycle. Sensing only covers frames the node can hear:
//!    hidden terminals, by definition, are not sensed.
//! 3. **Collisions** — two receptions overlapping in time at the same
//!    receiver corrupt *both* (no capture effect). Because nodes only
//!    hear their graph neighbours, a star where the leaves cannot hear
//!    each other reproduces the classic hidden-terminal pathology.
//! 4. **Channel schedules** — per-edge loss/duplication/reorder
//!    [`Pattern`]s, evaluated per transmission index from
//!    order-independent splitmix64 streams (the PR 6 seed discipline),
//!    so a hop behaves identically no matter how events interleave.
//!
//! Determinism contract: given the same topology, payloads and seed,
//! [`NetSim::run`] produces a bit-identical [`SimReport`] — the event
//! queue breaks time ties by insertion order, every random draw is a
//! pure function of `(seed, edge, index)`, and no wall-clock or
//! iteration-order nondeterminism exists anywhere in the loop. The
//! `repro link` gate asserts exactly this, sharded vs sequential.

use crate::arq::{Action, ArqConfig, ArqReceiver, ArqSender, LinkError};
use crate::frame::{Frame, FrameKind};
use crate::ping::{PingConfig, PingReport, Pinger, Ponger};
use crate::unit_draw;
use std::collections::BTreeMap;
use tinysdr_dsp::event::{ns_to_s, s_to_ns, EventQueue};
use tinysdr_ota::seed::node_stream_seed;
use tinysdr_ota::session::TURNAROUND_S;
use tinysdr_power::energy::EnergyLedger;
use tinysdr_power::state::OtaEnergyModel;
use tinysdr_rf::phy::PhyModem;

/// Stream tag: per-edge frame-loss draws.
pub const STREAM_LINK_LOSS: u64 = 0x117A_0001;
/// Stream tag: per-edge duplication draws.
pub const STREAM_LINK_DUP: u64 = 0x117A_0002;
/// Stream tag: per-edge reordering draws.
pub const STREAM_LINK_REORDER: u64 = 0x117A_0003;
/// Stream tag: per-node retry-jitter draws (ARQ senders, pingers).
pub const STREAM_LINK_JITTER: u64 = 0x117A_0004;
/// Stream tag: per-node CSMA backoff draws (one per transmission).
pub const STREAM_LINK_CSMA: u64 = 0x117A_0006;

/// Default event budget: far above any legitimate scenario, low enough
/// to catch a protocol livelock in finite test time.
pub const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

/// When (relative to a per-edge seed stream) a channel effect fires.
/// All variants are pure functions of `(seed, transmission index)`, so
/// a schedule replays identically regardless of event interleaving.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Never fires.
    Never,
    /// Independent Bernoulli draw per transmission.
    Bernoulli {
        /// Firing probability in `[0, 1]`.
        prob: f64,
    },
    /// Explicit per-transmission schedule; beyond the end it never
    /// fires. The adversarial battery enumerates these exhaustively.
    Schedule {
        /// `fire[i]` = does transmission `i` get hit.
        fire: Vec<bool>,
    },
    /// Periodic burst: fires when `(index + offset) % period < len` —
    /// the worst case for a window of retransmissions.
    Burst {
        /// Cycle length in transmissions (0 disables).
        period: u64,
        /// Consecutive hits per cycle.
        len: u64,
        /// Phase shift of the burst within the cycle.
        offset: u64,
    },
}

impl Pattern {
    /// Does the effect fire on transmission `index`?
    #[must_use]
    pub fn fires(&self, seed: u64, index: u64) -> bool {
        match self {
            Pattern::Never => false,
            Pattern::Bernoulli { prob } => unit_draw(seed, index) < *prob,
            Pattern::Schedule { fire } => {
                usize::try_from(index)
                    .ok()
                    .and_then(|i| fire.get(i).copied())
                    == Some(true)
            }
            Pattern::Burst {
                period,
                len,
                offset,
            } => *period > 0 && (index.wrapping_add(*offset)) % period < *len,
        }
    }
}

/// One directed hop's channel model.
#[derive(Debug, Clone, PartialEq)]
pub struct HopProfile {
    /// RSSI the receiver observes on this hop, dBm.
    pub rssi_dbm: f64,
    /// Which transmissions the channel erases.
    pub loss: Pattern,
    /// Which transmissions arrive twice.
    pub duplicate: Pattern,
    /// Which transmissions are delayed past their natural slot.
    pub reorder: Pattern,
    /// Extra delivery delay applied to reordered transmissions.
    pub reorder_delay_s: f64,
    /// Propagation delay of the hop.
    pub prop_delay_s: f64,
}

impl HopProfile {
    /// A lossless, instantaneous hop at the given RSSI.
    #[must_use]
    pub fn clean(rssi_dbm: f64) -> Self {
        HopProfile {
            rssi_dbm,
            loss: Pattern::Never,
            duplicate: Pattern::Never,
            reorder: Pattern::Never,
            reorder_delay_s: 0.005,
            prop_delay_s: 0.0,
        }
    }

    /// A hop that independently erases each transmission with
    /// probability `loss_prob` (the shape `frame_loss_prob` measures
    /// out of the impairment chain).
    #[must_use]
    pub fn lossy(rssi_dbm: f64, loss_prob: f64) -> Self {
        HopProfile {
            loss: Pattern::Bernoulli { prob: loss_prob },
            ..HopProfile::clean(rssi_dbm)
        }
    }
}

/// What a node does in the scenario.
#[derive(Debug)]
pub enum Role {
    /// Transmits `payload` through the ARQ pipe and closes.
    Sender {
        /// Bytes to transfer.
        payload: Vec<u8>,
        /// ARQ parameters (use the same at the matching receiver).
        cfg: ArqConfig,
    },
    /// Terminates an ARQ stream and delivers bytes in order.
    Receiver {
        /// ARQ parameters.
        cfg: ArqConfig,
    },
    /// Store-and-forward: terminates the upstream ARQ stream and
    /// re-originates it downstream, chunk by chunk.
    Relay {
        /// ARQ parameters used on both faces.
        cfg: ArqConfig,
    },
    /// Sends pings and collects RTT/RSSI statistics.
    Pinger {
        /// Ping run parameters.
        cfg: PingConfig,
        /// First sequence number (offset co-located pingers so their
        /// pongs cannot cross-match).
        seq0: u16,
    },
    /// Answers every ping it hears.
    Ponger,
}

enum Actor {
    Sender { arq: ArqSender, payload: Vec<u8> },
    Receiver { arq: ArqReceiver },
    Relay { rx: ArqReceiver, tx: ArqSender },
    Pinger { p: Pinger },
    Ponger { p: Ponger },
}

impl Actor {
    fn start(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        match self {
            Actor::Sender { arq, payload } => {
                let bytes = std::mem::take(payload);
                arq.offer(&bytes, out);
                arq.close(out);
            }
            Actor::Pinger { p } => p.start(now_ns, out),
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: &Frame, rssi_dbm: f64, now_ns: u64, out: &mut Vec<Action>) {
        match self {
            Actor::Sender { arq, .. } => arq.on_frame(frame, out),
            Actor::Receiver { arq } => arq.on_frame(frame, out),
            Actor::Relay { rx, tx } => match frame.kind {
                FrameKind::Data | FrameKind::Fin => {
                    let mut up = Vec::new();
                    rx.on_frame(frame, &mut up);
                    for a in up {
                        match a {
                            Action::Deliver { bytes } => {
                                tx.offer(&bytes, out);
                                out.push(Action::Deliver { bytes });
                            }
                            Action::Finished => tx.close(out),
                            other => out.push(other),
                        }
                    }
                }
                FrameKind::Ack | FrameKind::FinAck => tx.on_frame(frame, out),
                _ => {}
            },
            Actor::Pinger { p } => p.on_frame(frame, rssi_dbm, now_ns, out),
            Actor::Ponger { p } => p.on_frame(frame, rssi_dbm, out),
        }
    }

    fn on_timer(&mut self, timer_id: u64, now_ns: u64, out: &mut Vec<Action>) {
        match self {
            Actor::Sender { arq, .. } => arq.on_timer(timer_id, out),
            Actor::Relay { tx, .. } => tx.on_timer(timer_id, out),
            Actor::Pinger { p } => p.on_timer(timer_id, now_ns, out),
            _ => {}
        }
    }

    /// Does this role ever declare itself finished? (Pongers are
    /// passive and never do.)
    fn is_terminal(&self) -> bool {
        !matches!(self, Actor::Ponger { .. })
    }
}

struct Node {
    label: String,
    actor: Actor,
    tx_free_ns: u64,
    /// Seed of this node's CSMA backoff stream.
    csma_seed: u64,
    /// Backoff draws taken so far (the stream index).
    tx_draws: u64,
    /// Active reception windows: (start, end, reception index).
    rx_windows: Vec<(u64, u64, usize)>,
    /// Active own-transmission windows: (start, end).
    tx_windows: Vec<(u64, u64)>,
    delivered: Vec<u8>,
    ledger: EnergyLedger,
    finished: bool,
    error: Option<LinkError>,
}

struct Edge {
    profile: HopProfile,
    to: usize,
    loss_seed: u64,
    dup_seed: u64,
    reorder_seed: u64,
    tx_count: u64,
    report: EdgeReport,
}

struct Reception {
    to: usize,
    from_edge: usize,
    frame: Frame,
    rssi_dbm: f64,
    corrupted: bool,
    channel_lost: bool,
    phantom: bool,
    reordered: bool,
}

enum Ev {
    Deliver { rec: usize },
    Timer { node: usize, timer_id: u64 },
}

/// Per-node outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Scenario label of the node.
    pub label: String,
    /// In-order bytes the node's application saw (for a relay: bytes
    /// it forwarded downstream).
    pub delivered_bytes: u64,
    /// Did the node's protocol reach its terminal state?
    pub finished: bool,
    /// Typed failure, rendered, if the node gave up.
    pub error: Option<String>,
    /// Energy spent, per component (`radio_rx`/`radio_tx`/`mcu`).
    pub energy: EnergyLedger,
}

/// Per-directed-edge channel statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeReport {
    /// Transmitting node index.
    pub from: usize,
    /// Receiving node index.
    pub to: usize,
    /// Frames put on the air on this edge.
    pub tx_frames: u64,
    /// Frames that reached the receiver's deframer intact.
    pub delivered: u64,
    /// Frames erased by the channel schedule.
    pub lost: u64,
    /// Frames destroyed by overlapping receptions or half-duplex
    /// self-interference.
    pub collisions: u64,
    /// Extra deliveries injected by the duplication schedule.
    pub duplicated: u64,
    /// Deliveries delayed by the reordering schedule.
    pub reordered: u64,
    /// Wire bytes transmitted (escaped, delimited).
    pub bytes_on_air: u64,
    /// Total airtime spent on this edge.
    pub airtime_s: f64,
}

/// The full deterministic outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated time of the last processed event.
    pub duration_s: f64,
    /// Events processed.
    pub events: u64,
    /// Per-node outcomes, in node-creation order.
    pub nodes: Vec<NodeReport>,
    /// Per-edge statistics, in edge-creation order.
    pub edges: Vec<EdgeReport>,
}

/// The simulator. Build a topology with [`NetSim::add_node`] /
/// [`NetSim::link`], then [`NetSim::run`] it to completion.
pub struct NetSim {
    phy: Box<dyn PhyModem>,
    seed: u64,
    energy: OtaEnergyModel,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<usize>>,
    queue: EventQueue<Ev>,
    receptions: Vec<Reception>,
    airtime_cache: BTreeMap<usize, u64>,
    turnaround_ns: u64,
    max_events: u64,
    now_ns: u64,
    events: u64,
    ran: bool,
}

impl NetSim {
    /// A simulator carrying frames over `phy`'s airtime model, with all
    /// randomness derived from `seed`.
    #[must_use]
    pub fn new(phy: &dyn PhyModem, seed: u64) -> Self {
        NetSim {
            phy: phy.clone_box(),
            seed,
            energy: OtaEnergyModel::paper(),
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            queue: EventQueue::new(),
            receptions: Vec::new(),
            airtime_cache: BTreeMap::new(),
            turnaround_ns: s_to_ns(TURNAROUND_S),
            max_events: DEFAULT_MAX_EVENTS,
            now_ns: 0,
            events: 0,
            ran: false,
        }
    }

    /// Replace the event budget (see [`DEFAULT_MAX_EVENTS`]).
    pub fn set_max_events(&mut self, max_events: u64) {
        self.max_events = max_events;
    }

    /// Add a node; returns its index. Jitter streams are derived from
    /// `(seed, node index)`, so co-located stations never share one.
    pub fn add_node(&mut self, label: &str, role: Role) -> usize {
        let idx = self.nodes.len();
        let jitter_seed = node_stream_seed(self.seed, idx as u64, STREAM_LINK_JITTER);
        let actor = match role {
            Role::Sender { payload, cfg } => Actor::Sender {
                arq: ArqSender::new(cfg, jitter_seed),
                payload,
            },
            Role::Receiver { cfg } => Actor::Receiver {
                arq: ArqReceiver::new(cfg),
            },
            Role::Relay { cfg } => Actor::Relay {
                rx: ArqReceiver::new(cfg.clone()),
                tx: ArqSender::new(cfg, jitter_seed),
            },
            Role::Pinger { cfg, seq0 } => Actor::Pinger {
                p: Pinger::new(cfg, seq0, jitter_seed),
            },
            Role::Ponger => Actor::Ponger { p: Ponger::new() },
        };
        self.nodes.push(Node {
            label: label.to_string(),
            actor,
            tx_free_ns: 0,
            csma_seed: node_stream_seed(self.seed, idx as u64, STREAM_LINK_CSMA),
            tx_draws: 0,
            rx_windows: Vec::new(),
            tx_windows: Vec::new(),
            delivered: Vec::new(),
            ledger: EnergyLedger::new(),
            finished: false,
            error: None,
        });
        self.out_edges.push(Vec::new());
        idx
    }

    /// Add one directed hop `from → to`.
    ///
    /// # Panics
    /// Panics on out-of-range node indices or a self-edge.
    pub fn add_edge(&mut self, from: usize, to: usize, profile: HopProfile) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "edge endpoints must exist"
        );
        assert_ne!(from, to, "self-edges are not a thing on a radio");
        let e = self.edges.len() as u64;
        self.edges.push(Edge {
            loss_seed: node_stream_seed(self.seed, e, STREAM_LINK_LOSS),
            dup_seed: node_stream_seed(self.seed, e, STREAM_LINK_DUP),
            reorder_seed: node_stream_seed(self.seed, e, STREAM_LINK_REORDER),
            to,
            tx_count: 0,
            report: EdgeReport {
                from,
                to,
                tx_frames: 0,
                delivered: 0,
                lost: 0,
                collisions: 0,
                duplicated: 0,
                reordered: 0,
                bytes_on_air: 0,
                airtime_s: 0.0,
            },
            profile,
        });
        self.out_edges[from].push(self.edges.len() - 1);
    }

    /// Add both directions of a hop.
    pub fn link(&mut self, a: usize, b: usize, forward: HopProfile, reverse: HopProfile) {
        self.add_edge(a, b, forward);
        self.add_edge(b, a, reverse);
    }

    /// Bytes delivered in order at `node`.
    #[must_use]
    pub fn delivered(&self, node: usize) -> &[u8] {
        &self.nodes[node].delivered
    }

    /// Ping statistics, if `node` is a pinger.
    #[must_use]
    pub fn ping_report(&self, node: usize) -> Option<PingReport> {
        match &self.nodes[node].actor {
            Actor::Pinger { p } => Some(p.report()),
            _ => None,
        }
    }

    /// The typed error that stopped `node`, if any.
    #[must_use]
    pub fn node_error(&self, node: usize) -> Option<LinkError> {
        self.nodes[node].error
    }

    fn airtime_ns(&mut self, wire_len: usize) -> u64 {
        if let Some(&ns) = self.airtime_cache.get(&wire_len) {
            return ns;
        }
        let ns = s_to_ns(self.phy.airtime_len_s(wire_len));
        self.airtime_cache.insert(wire_len, ns);
        ns
    }

    fn process_actions(&mut self, node_idx: usize, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Tx { frame } => self.schedule_tx(node_idx, frame, None),
                Action::TxTimed {
                    frame,
                    timer_id,
                    timeout_s,
                } => {
                    self.schedule_tx(node_idx, frame, Some((timer_id, timeout_s)));
                }
                Action::Delay { timer_id, delay_s } => {
                    let t = self.now_ns.saturating_add(s_to_ns(delay_s));
                    self.queue.push(
                        t,
                        Ev::Timer {
                            node: node_idx,
                            timer_id,
                        },
                    );
                }
                Action::Deliver { bytes } => {
                    self.nodes[node_idx].delivered.extend_from_slice(&bytes);
                }
                Action::Finished => self.nodes[node_idx].finished = true,
                Action::Failed { error } => self.nodes[node_idx].error = Some(error),
            }
        }
    }

    fn schedule_tx(&mut self, from: usize, frame: Frame, timer: Option<(u64, f64)>) {
        let wire_len = frame.encode().len();
        let air_ns = self.airtime_ns(wire_len);
        let now = self.now_ns;
        let tx_mw = self.energy.ack_tx_mw;
        let (start, end) = {
            let node = &mut self.nodes[from];
            node.rx_windows.retain(|w| w.1 > now);
            // CSMA backoff: a fresh per-transmission draw desynchronizes
            // stations that share identical turnaround constants —
            // without it a relay chain phase-locks and the downstream
            // ACK collides with the next upstream data frame on every
            // cycle (retry jitter alone cannot break the lock, because
            // carrier sense re-quantizes every deferred start to the
            // end of the same reception window).
            let backoff_ns =
                (unit_draw(node.csma_seed, node.tx_draws) * 0.5 * self.turnaround_ns as f64) as u64;
            node.tx_draws += 1;
            let mut start = now.max(node.tx_free_ns).saturating_add(backoff_ns);
            // listen-before-talk: defer past every reception already
            // committed at this antenna. Fixpoint over the (few) active
            // windows — the result is the earliest clear slot, which is
            // independent of window iteration order.
            loop {
                let end = start.saturating_add(air_ns);
                let mut deferred = false;
                for &(s, e, _) in &node.rx_windows {
                    if s < end && e > start {
                        start = e;
                        deferred = true;
                    }
                }
                if !deferred {
                    break;
                }
            }
            let end = start.saturating_add(air_ns);
            node.tx_free_ns = end.saturating_add(self.turnaround_ns);
            node.ledger.record("radio_tx", tx_mw, air_ns);
            node.tx_windows.retain(|w| w.1 > now);
            node.tx_windows.push((start, end));
            (start, end)
        };
        // half-duplex: receptions committed *after* this decision that
        // overlap our own transmission are corrupted on the incoming
        // path (the tx_windows check below); nothing to corrupt here —
        // carrier sense just deferred around everything known.
        if let Some((timer_id, timeout_s)) = timer {
            let t = end.saturating_add(s_to_ns(timeout_s));
            self.queue.push(
                t,
                Ev::Timer {
                    node: from,
                    timer_id,
                },
            );
        }
        // the broadcast: every graph neighbour hears the transmission
        let out_edges = self.out_edges[from].clone();
        let rx_mw = self.energy.rx_mw;
        for e_idx in out_edges {
            let (to, rssi_dbm, prop_ns, reorder_extra_ns, lost, dup, reord) = {
                let edge = &mut self.edges[e_idx];
                let idx = edge.tx_count;
                edge.tx_count += 1;
                edge.report.tx_frames += 1;
                edge.report.bytes_on_air += wire_len as u64;
                edge.report.airtime_s += ns_to_s(air_ns);
                (
                    edge.to,
                    edge.profile.rssi_dbm,
                    s_to_ns(edge.profile.prop_delay_s),
                    s_to_ns(edge.profile.reorder_delay_s),
                    edge.profile.loss.fires(edge.loss_seed, idx),
                    edge.profile.duplicate.fires(edge.dup_seed, idx),
                    edge.profile.reorder.fires(edge.reorder_seed, idx),
                )
            };
            let rx_start = start.saturating_add(prop_ns);
            let rx_end = end.saturating_add(prop_ns);
            let rec_idx = self.receptions.len();
            let mut corrupted = false;
            let mut also_corrupt = Vec::new();
            {
                let node = &mut self.nodes[to];
                node.ledger.record("radio_rx", rx_mw, air_ns);
                node.rx_windows.retain(|w| w.1 > now);
                for &(s, e, idx) in &node.rx_windows {
                    if s < rx_end && e > rx_start {
                        also_corrupt.push(idx);
                        corrupted = true;
                    }
                }
                node.tx_windows.retain(|w| w.1 > now);
                for &(s, e) in &node.tx_windows {
                    if s < rx_end && e > rx_start {
                        corrupted = true;
                    }
                }
                node.rx_windows.push((rx_start, rx_end, rec_idx));
            }
            for idx in also_corrupt {
                self.receptions[idx].corrupted = true;
            }
            let deliver_at = if reord {
                rx_end.saturating_add(reorder_extra_ns)
            } else {
                rx_end
            };
            self.receptions.push(Reception {
                to,
                from_edge: e_idx,
                frame: frame.clone(),
                rssi_dbm,
                corrupted,
                channel_lost: lost,
                phantom: false,
                reordered: reord,
            });
            self.queue.push(deliver_at, Ev::Deliver { rec: rec_idx });
            if dup {
                // a delayed second copy: pure delivery, no physics
                let rec2 = self.receptions.len();
                self.receptions.push(Reception {
                    to,
                    from_edge: e_idx,
                    frame: frame.clone(),
                    rssi_dbm,
                    corrupted: false,
                    channel_lost: false,
                    phantom: true,
                    reordered: false,
                });
                self.queue
                    .push(deliver_at.saturating_add(air_ns), Ev::Deliver { rec: rec2 });
            }
        }
    }

    fn deliver(&mut self, rec_idx: usize) {
        let (to, from_edge, phantom, corrupted, channel_lost, reordered) = {
            let r = &self.receptions[rec_idx];
            (
                r.to,
                r.from_edge,
                r.phantom,
                r.corrupted,
                r.channel_lost,
                r.reordered,
            )
        };
        let ok = {
            let report = &mut self.edges[from_edge].report;
            if phantom {
                report.duplicated += 1;
                true
            } else if corrupted {
                report.collisions += 1;
                false
            } else if channel_lost {
                report.lost += 1;
                false
            } else {
                report.delivered += 1;
                if reordered {
                    report.reordered += 1;
                }
                true
            }
        };
        if !ok {
            return;
        }
        let frame = self.receptions[rec_idx].frame.clone();
        let rssi_dbm = self.receptions[rec_idx].rssi_dbm;
        let now = self.now_ns;
        let mut out = Vec::new();
        self.nodes[to]
            .actor
            .on_frame(&frame, rssi_dbm, now, &mut out);
        self.process_actions(to, out);
    }

    fn all_done(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.finished || n.error.is_some() || !n.actor.is_terminal())
    }

    /// Run the scenario to completion and return its report. The run
    /// ends when every terminal node has finished or failed, or when
    /// the event queue drains.
    ///
    /// # Panics
    /// Panics if the event budget is exceeded (a protocol livelock —
    /// a bug, not a result) or if called twice.
    pub fn run(&mut self) -> SimReport {
        assert!(!self.ran, "NetSim::run may only be called once");
        self.ran = true;
        for i in 0..self.nodes.len() {
            let mut out = Vec::new();
            self.nodes[i].actor.start(0, &mut out);
            self.process_actions(i, out);
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.events += 1;
            assert!(
                self.events <= self.max_events,
                "event budget {} exceeded — protocol livelock",
                self.max_events
            );
            self.now_ns = t;
            match ev {
                Ev::Deliver { rec } => self.deliver(rec),
                Ev::Timer { node, timer_id } => {
                    let mut out = Vec::new();
                    self.nodes[node].actor.on_timer(timer_id, t, &mut out);
                    self.process_actions(node, out);
                }
            }
            if self.all_done() {
                break;
            }
        }
        let dur_ns = self.now_ns;
        let mcu_mw = self.energy.mcu_mw;
        for node in &mut self.nodes {
            node.ledger.record("mcu", mcu_mw, dur_ns);
        }
        SimReport {
            duration_s: ns_to_s(dur_ns),
            events: self.events,
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeReport {
                    label: n.label.clone(),
                    delivered_bytes: n.delivered.len() as u64,
                    finished: n.finished,
                    error: n.error.map(|e| e.to_string()),
                    energy: n.ledger.clone(),
                })
                .collect(),
            edges: self.edges.iter().map(|e| e.report.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testphy::TestPhy;

    fn transfer_sim(
        payload: &[u8],
        hop: HopProfile,
        cfg: ArqConfig,
        seed: u64,
    ) -> (NetSim, SimReport) {
        let phy = TestPhy::new();
        let mut sim = NetSim::new(&phy, seed);
        let s = sim.add_node(
            "tx",
            Role::Sender {
                payload: payload.to_vec(),
                cfg: cfg.clone(),
            },
        );
        let r = sim.add_node("rx", Role::Receiver { cfg });
        sim.link(s, r, hop.clone(), HopProfile::clean(hop.rssi_dbm));
        let report = sim.run();
        (sim, report)
    }

    #[test]
    fn clean_hop_transfers_exactly() {
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        let (sim, report) =
            transfer_sim(&payload, HopProfile::clean(-80.0), ArqConfig::sliding(8), 1);
        assert_eq!(sim.delivered(1), &payload[..]);
        assert!(report.nodes[0].finished && report.nodes[1].finished);
        assert_eq!(report.nodes[1].delivered_bytes, 2000);
        assert_eq!(report.edges[0].collisions, 0);
        assert_eq!(report.edges[0].lost, 0);
        // energy flowed: both radios and both MCUs spent something
        for n in &report.nodes {
            let tags = n.energy.by_tag();
            assert!(tags["radio_tx"] > 0.0 && tags["radio_rx"] > 0.0 && tags["mcu"] > 0.0);
        }
    }

    #[test]
    fn bernoulli_loss_recovers_with_retransmissions() {
        let payload: Vec<u8> = (0..1500u32).map(|i| (i * 13 % 256) as u8).collect();
        let (sim, report) = transfer_sim(
            &payload,
            HopProfile::lossy(-95.0, 0.25),
            ArqConfig::sliding(4),
            42,
        );
        assert_eq!(sim.delivered(1), &payload[..], "ARQ must mask 25 % loss");
        assert!(report.nodes[0].finished && report.nodes[1].finished);
        assert!(report.edges[0].lost > 0, "the schedule did fire");
        assert!(
            report.edges[0].tx_frames > 25,
            "retransmissions happened (base frames: 25 data + fin)"
        );
    }

    #[test]
    fn total_blackout_fails_with_typed_timeout() {
        let payload = vec![7u8; 100];
        let (sim, report) = transfer_sim(
            &payload,
            HopProfile::lossy(-120.0, 1.0),
            ArqConfig::stop_and_wait(),
            3,
        );
        let err = sim.node_error(0).expect("sender must fail, not hang");
        assert!(matches!(
            err,
            LinkError::Timeout {
                seq: 0,
                attempts: 12
            }
        ));
        assert!(!report.nodes[1].finished);
        assert_eq!(sim.delivered(1), b"", "nothing delivered, nothing invented");
    }

    #[test]
    fn identical_seeds_produce_bit_identical_reports() {
        let payload: Vec<u8> = (0..900u32).map(|i| (i % 251) as u8).collect();
        let hop = HopProfile::lossy(-97.0, 0.3);
        let run = |seed| transfer_sim(&payload, hop.clone(), ArqConfig::sliding(8), seed).1;
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds see different channels");
    }

    #[test]
    fn relay_chain_delivers_same_bytes_as_single_hop() {
        let payload: Vec<u8> = (0..800u32).map(|i| (i * 31 % 256) as u8).collect();
        let cfg = ArqConfig::sliding(4);
        let phy = TestPhy::new();
        let mut sim = NetSim::new(&phy, 5);
        let s = sim.add_node(
            "tx",
            Role::Sender {
                payload: payload.clone(),
                cfg: cfg.clone(),
            },
        );
        let relay = sim.add_node("relay", Role::Relay { cfg: cfg.clone() });
        let r = sim.add_node("rx", Role::Receiver { cfg });
        sim.link(
            s,
            relay,
            HopProfile::lossy(-90.0, 0.1),
            HopProfile::clean(-90.0),
        );
        sim.link(
            relay,
            r,
            HopProfile::lossy(-95.0, 0.1),
            HopProfile::clean(-95.0),
        );
        let report = sim.run();
        assert_eq!(sim.delivered(r), &payload[..]);
        assert!(report.nodes.iter().all(|n| n.finished), "{report:?}");
        // the relay spent tx energy forwarding — visible per hop
        assert!(report.nodes[relay].energy.by_tag()["radio_tx"] > 0.0);
    }

    #[test]
    fn hidden_terminals_collide_then_recover() {
        let phy = TestPhy::new();
        let mut sim = NetSim::new(&phy, 11);
        let a = sim.add_node(
            "a",
            Role::Pinger {
                cfg: PingConfig::new(8),
                seq0: 0,
            },
        );
        let b = sim.add_node("b", Role::Ponger);
        let c = sim.add_node(
            "c",
            Role::Pinger {
                cfg: PingConfig::new(8),
                seq0: 1000,
            },
        );
        // a and c both hear b, but not each other
        sim.link(a, b, HopProfile::clean(-70.0), HopProfile::clean(-70.0));
        sim.link(c, b, HopProfile::clean(-72.0), HopProfile::clean(-72.0));
        let report = sim.run();
        let collisions: u64 = report.edges.iter().map(|e| e.collisions).sum();
        assert!(collisions > 0, "simultaneous first pings must collide at b");
        let ra = sim.ping_report(a).unwrap();
        let rc = sim.ping_report(c).unwrap();
        assert!(
            ra.received + rc.received > 0,
            "retry jitter must break the lockstep: {ra:?} {rc:?}"
        );
        assert!(report.nodes[a].finished && report.nodes[c].finished);
    }

    #[test]
    fn ping_measures_both_rssi_ends() {
        let phy = TestPhy::new();
        let mut sim = NetSim::new(&phy, 2);
        let a = sim.add_node(
            "a",
            Role::Pinger {
                cfg: PingConfig::new(5),
                seq0: 0,
            },
        );
        let b = sim.add_node("b", Role::Ponger);
        sim.link(a, b, HopProfile::clean(-88.0), HopProfile::clean(-94.0));
        let report = sim.run();
        let pr = sim.ping_report(a).unwrap();
        assert_eq!(pr.sent, 5);
        assert_eq!(pr.received, 5);
        assert_eq!(pr.loss, 0.0);
        assert_eq!(
            pr.rssi_fwd_dbm, -88.0,
            "forward RSSI reported by the ponger"
        );
        assert_eq!(pr.rssi_rev_dbm, -94.0, "reverse RSSI measured on the pong");
        assert!(pr.rtt_min_s > 0.0 && pr.rtt_max_s >= pr.rtt_min_s);
        assert!(report.duration_s > 0.0);
    }

    #[test]
    fn duplication_and_reorder_schedules_are_masked_by_arq() {
        let payload: Vec<u8> = (0..700u32).map(|i| (i * 7 % 256) as u8).collect();
        let hop = HopProfile {
            duplicate: Pattern::Bernoulli { prob: 0.2 },
            reorder: Pattern::Bernoulli { prob: 0.2 },
            ..HopProfile::clean(-85.0)
        };
        let (sim, report) = transfer_sim(&payload, hop, ArqConfig::sliding(8), 77);
        assert_eq!(
            sim.delivered(1),
            &payload[..],
            "exactly-once despite dup+reorder"
        );
        assert!(report.edges[0].duplicated > 0);
        assert!(report.edges[0].reordered > 0);
        assert!(report.nodes[0].finished && report.nodes[1].finished);
    }

    #[test]
    fn burst_pattern_hits_consecutive_transmissions() {
        let p = Pattern::Burst {
            period: 10,
            len: 3,
            offset: 0,
        };
        let hits: Vec<bool> = (0..20).map(|i| p.fires(0, i)).collect();
        assert!(hits[0] && hits[1] && hits[2] && !hits[3]);
        assert!(hits[10] && hits[11] && hits[12] && !hits[13]);
        assert!(!Pattern::Burst {
            period: 0,
            len: 3,
            offset: 0
        }
        .fires(0, 0));
    }

    #[test]
    fn schedule_pattern_is_exact() {
        let p = Pattern::Schedule {
            fire: vec![true, false, true],
        };
        assert!(p.fires(123, 0));
        assert!(!p.fires(123, 1));
        assert!(p.fires(123, 2));
        assert!(!p.fires(123, 3), "beyond the schedule: never");
    }
}

//! A deliberately cheap loopback PHY for link-layer testing.
//!
//! The adversarial ARQ battery and the exhaustive small-topology sweeps
//! run thousands of simulated transfers; pushing every frame through a
//! real chirp or GFSK modulator would make the debug-build test suite
//! crawl without testing anything new (the real PHYs have their own
//! conformance suites, and the registry-wide packet-layer test in
//! `tests/` exercises the true waveform path). [`TestPhy`] keeps the
//! *airtime model* honest — frames occupy the air proportionally to
//! their wire length at a LoRa-ish 50 kb/s — while `modulate` is plain
//! BPSK at one sample per bit, so the simulator's timing, collision and
//! energy arithmetic are exercised at full fidelity for microcents.

use tinysdr_dsp::complex::Complex;
use tinysdr_rf::phy::{DemodResult, PhyModem};

/// Nominal bit rate of the test PHY, bits per second.
pub const TEST_PHY_BPS: f64 = 50_000.0;

/// The cheap loopback modem (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TestPhy;

impl TestPhy {
    /// A fresh instance.
    #[must_use]
    pub fn new() -> Self {
        TestPhy
    }
}

impl PhyModem for TestPhy {
    fn label(&self) -> String {
        "test-bpsk-50k".to_string()
    }
    fn sample_rate_hz(&self) -> f64 {
        TEST_PHY_BPS
    }
    fn occupied_bw_hz(&self) -> f64 {
        TEST_PHY_BPS
    }
    fn noise_figure_db(&self) -> f64 {
        6.0
    }
    fn sensitivity_anchor_dbm(&self) -> f64 {
        -110.0
    }
    fn center_frequency_hz(&self) -> f64 {
        915e6
    }
    fn modulate(&self, frame: &[u8]) -> Vec<Complex> {
        frame
            .iter()
            .flat_map(|b| (0..8).map(move |i| (b >> i) & 1))
            .map(|bit| Complex::new(if bit == 1 { 1.0 } else { -1.0 }, 0.0))
            .collect()
    }
    fn demodulate(&self, iq: &[Complex]) -> DemodResult {
        let units: Vec<u16> = iq.iter().map(|z| u16::from(z.re > 0.0)).collect();
        let bytes = units
            .chunks(8)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i))
            })
            .collect();
        DemodResult::stream(bytes, units)
    }
    fn airtime_len_s(&self, frame_len: usize) -> f64 {
        // closed form — the hot path for the simulator's airtime cache
        frame_len as f64 * 8.0 / TEST_PHY_BPS
    }
    fn clone_box(&self) -> Box<dyn PhyModem> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bytes() {
        let phy = TestPhy::new();
        let frame = [0xC0u8, 0xDB, 0x42, 0x00, 0xFF];
        let rx = phy.demodulate(&phy.modulate(&frame));
        assert_eq!(rx.bytes, frame);
        assert!(phy.count_errors(&frame, &rx).is_clean());
    }

    #[test]
    fn closed_form_airtime_matches_waveform_route() {
        let phy = TestPhy::new();
        for len in [0usize, 1, 9, 64, 130] {
            let closed = phy.airtime_len_s(len);
            let derived = phy.airtime_s(&vec![0u8; len]);
            assert!((closed - derived).abs() < 1e-12, "len {len}");
        }
    }
}

//! # tinysdr-link
//!
//! The packet data plane of the `tinysdr` workspace — the Rust
//! reproduction of *TinySDR: Low-Power SDR Platform for Over-the-Air
//! Programmable IoT Testbeds* (NSDI 2020).
//!
//! Below this crate, the PHYs answer "what fraction of bits survive at
//! this RSSI"; above it, the testbed wants "move these bytes to that
//! node, reliably, and tell me what it cost". This crate is the layer
//! between:
//!
//! * [`frame`] — KISS-style byte framing (escaping, u16 sequence
//!   numbers, CRC-16 trailer) over **any** registered
//!   [`tinysdr_rf::phy::PhyModem`]; corruption becomes counted loss,
//!   never a silently different frame.
//! * [`arq`] — stop-and-wait and sliding-window ARQ as pure
//!   event-driven state machines: exactly-once in-order delivery or a
//!   typed timeout, pinned by an adversarial loss/duplication/reorder
//!   battery.
//! * [`ping`] — RF ping with RTT and per-end RSSI.
//! * [`sim`] — the deterministic event-driven multi-node network
//!   simulation (airtime-true, half-duplex, collisions and hidden
//!   terminals, per-edge channel schedules, per-node energy ledgers).
//! * [`pipe`] / [`transfer`] — one-call multi-hop byte transfer, and
//!   OTA firmware dissemination over the real link cross-checked
//!   against the abstract session model.
//! * [`phylink`] — frames ↔ waveforms, and measured per-hop loss out
//!   of the PR 4 impairment chain.
//! * [`testphy`] — a cheap loopback modem so the exhaustive batteries
//!   run fast in debug builds without touching waveform fidelity
//!   claims (the registry-wide test covers those).
//!
//! Everything is deterministic by construction: integer-nanosecond
//! event time, splitmix64 seed streams keyed by `(seed, node/edge,
//! index)`, no wall clock, no ambient RNG, no iteration-order
//! dependence — the same sharded==sequential contract every other
//! engine in the workspace honors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod frame;
pub mod phylink;
pub mod ping;
pub mod pipe;
pub mod sim;
pub mod testphy;
pub mod transfer;

use tinysdr_ota::seed::splitmix64;

/// A uniform draw in `[0, 1)` that is a pure function of `(seed,
/// index)` — the stateless per-event randomness underneath every
/// channel schedule and jitter stream in this crate. Order-independent
/// by construction: draw 17 is the same number whether or not draws
/// 0..16 ever happened.
#[must_use]
pub fn unit_draw(seed: u64, index: u64) -> f64 {
    (splitmix64(seed ^ splitmix64(index)) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_draws_are_uniform_ish_and_order_independent() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_draw(42, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for i in [0u64, 1, 999, u64::MAX] {
            let d = unit_draw(7, i);
            assert!((0.0..1.0).contains(&d));
            assert_eq!(d, unit_draw(7, i), "pure function");
        }
        assert_ne!(unit_draw(7, 3), unit_draw(8, 3));
    }
}

//! Reliable byte-stream ARQ over lossy frames: stop-and-wait and
//! sliding-window, as pure event-driven state machines.
//!
//! Neither endpoint owns a clock, a radio, or a thread. They consume
//! inputs (`offer`/`close`, arriving frames, expired timers) and emit
//! [`Action`]s; whoever drives them — the deterministic network
//! simulation in [`crate::sim`], or a hand-written pump in a test —
//! decides what "transmit" and "time" mean. That inversion is what
//! makes the adversarial battery possible: a test can replay any
//! loss/duplication/reorder schedule and assert the exact output.
//!
//! Protocol sketch (Go-Back-never — selective repeat):
//!
//! * The sender cuts the offered byte stream into `chunk_len` chunks,
//!   each a [`FrameKind::Data`] frame. Chunks on the air always lie in
//!   `[base, base + window)` where `base` is the oldest unacked index —
//!   the spread bound, not just an inflight count, which is what keeps
//!   a retransmission of the oldest frame recognizable at the receiver.
//!   Each frame carries the low 16 bits of its 64-bit logical index.
//! * The receiver buffers in-window chunks (deduplicating), ACKs every
//!   one it accepts (and re-ACKs recent duplicates), and delivers
//!   strictly in order.
//! * Unacked chunks retransmit on timeout with exponential backoff
//!   (`ack_timeout_s · backoff^(attempt-1)`) plus a small deterministic
//!   jitter that breaks retry lockstep between colliding stations.
//! * After every data chunk is acked the sender sends
//!   [`FrameKind::Fin`] (seq = total chunk count mod 2^16); the
//!   receiver answers [`FrameKind::FinAck`]. The distinct kind means a
//!   stale data ACK can never be mistaken for stream termination.
//! * Exceeding `max_attempts` on any frame fails the transfer with the
//!   typed [`LinkError::Timeout`] — never a hang, never silent loss.
//!
//! Logical indices are 64-bit and never reused, so a stream longer than
//! 65536 chunks is fine as long as `window ≤ 8192`: within one window
//! the 16-bit wire sequence is unambiguous.

use crate::frame::{Frame, FrameKind, MAX_PAYLOAD};
use crate::unit_draw;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Sentinel logical index for the FIN frame in the timer table.
const FIN_MARKER: u64 = u64::MAX;

/// Configuration shared by both ARQ endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct ArqConfig {
    /// Maximum data frames in flight (1 = stop-and-wait).
    pub window: u16,
    /// Transmission attempts per frame before the transfer fails.
    pub max_attempts: u32,
    /// First retransmission timeout, seconds, measured from the end of
    /// the frame's own airtime.
    pub ack_timeout_s: f64,
    /// Multiplicative backoff applied per retransmission (≥ 1).
    pub backoff: f64,
    /// Data chunk size, bytes (≤ [`MAX_PAYLOAD`]).
    pub chunk_len: usize,
    /// Upper bound of the deterministic retry jitter, seconds.
    pub retry_jitter_s: f64,
}

impl ArqConfig {
    /// Stop-and-wait: one frame in flight.
    #[must_use]
    pub fn stop_and_wait() -> Self {
        Self::sliding(1)
    }

    /// Sliding-window ARQ with `window` frames in flight.
    ///
    /// # Panics
    /// Panics when `window` is 0 or exceeds 8192 (the bound that keeps
    /// 16-bit wire sequences unambiguous against 64-bit logical
    /// indices).
    #[must_use]
    pub fn sliding(window: u16) -> Self {
        assert!(
            (1..=8192).contains(&window),
            "window {window} outside 1..=8192"
        );
        ArqConfig {
            window,
            max_attempts: 12,
            ack_timeout_s: 0.08,
            backoff: 1.5,
            chunk_len: 60,
            retry_jitter_s: 0.01,
        }
    }

    /// Validate invariants the state machines rely on.
    ///
    /// # Panics
    /// Panics on a window outside `1..=8192`, a chunk length outside
    /// `1..=MAX_PAYLOAD`, a backoff below 1, or non-positive timeout.
    pub fn check(&self) {
        assert!(
            (1..=8192).contains(&self.window),
            "window {} outside 1..=8192",
            self.window
        );
        assert!(
            (1..=MAX_PAYLOAD).contains(&self.chunk_len),
            "chunk_len {} outside 1..={MAX_PAYLOAD}",
            self.chunk_len
        );
        assert!(self.backoff >= 1.0, "backoff {} < 1", self.backoff);
        assert!(
            self.ack_timeout_s > 0.0 && self.ack_timeout_s.is_finite(),
            "non-positive ack timeout"
        );
        assert!(
            self.retry_jitter_s >= 0.0 && self.retry_jitter_s.is_finite(),
            "negative retry jitter"
        );
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
    }
}

/// Typed link-layer failure. The ARQ contract is: exactly-once in-order
/// delivery, or one of these — never a silent wedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// A frame (logical index `seq`; [`u64::MAX`] for the FIN) was
    /// transmitted `attempts` times without an acknowledgement.
    Timeout {
        /// Logical index of the frame that gave up.
        seq: u64,
        /// Transmissions performed before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Timeout { seq, attempts } if *seq == FIN_MARKER => {
                write!(f, "link timeout: FIN unacked after {attempts} attempts")
            }
            LinkError::Timeout { seq, attempts } => {
                write!(
                    f,
                    "link timeout: frame {seq} unacked after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// What an endpoint wants its driver to do. Order within one output
/// batch is significant and must be preserved by the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit a frame, fire-and-forget (ACKs, pongs).
    Tx {
        /// The frame to put on the air.
        frame: Frame,
    },
    /// Transmit a frame and start a retransmission timer that fires
    /// `timeout_s` after the frame's airtime ends.
    TxTimed {
        /// The frame to put on the air.
        frame: Frame,
        /// Timer handle to hand back via `on_timer`.
        timer_id: u64,
        /// Timeout, seconds past end-of-transmission.
        timeout_s: f64,
    },
    /// Start a pure timer `delay_s` from now (no transmission).
    Delay {
        /// Timer handle to hand back via `on_timer`.
        timer_id: u64,
        /// Delay, seconds from now.
        delay_s: f64,
    },
    /// In-order stream bytes ready for the application.
    Deliver {
        /// The delivered chunk.
        bytes: Vec<u8>,
    },
    /// The endpoint's job is done (sender: FIN acked; receiver: FIN
    /// answered; pinger: all pings resolved).
    Finished,
    /// The transfer failed with a typed error; the endpoint is inert
    /// from now on.
    Failed {
        /// Why.
        error: LinkError,
    },
}

#[derive(Debug)]
struct Inflight {
    payload: Vec<u8>,
    attempts: u32,
    timer_id: u64,
}

/// Sending half of the ARQ pipe. Drive it with [`ArqSender::offer`] /
/// [`ArqSender::close`], feed arriving frames to
/// [`ArqSender::on_frame`] and expired timers to
/// [`ArqSender::on_timer`].
#[derive(Debug)]
pub struct ArqSender {
    cfg: ArqConfig,
    jitter_seed: u64,
    jitter_draws: u64,
    /// Bytes offered but not yet cut into a full chunk.
    staged: Vec<u8>,
    /// Chunks cut but not yet transmitted.
    queue: VecDeque<Vec<u8>>,
    /// Logical index the next transmitted chunk will get.
    next_tx: u64,
    /// Unacked chunks, keyed by logical index.
    inflight: BTreeMap<u64, Inflight>,
    /// timer id → logical index (FIN_MARKER for the FIN timer).
    timers: BTreeMap<u64, u64>,
    next_timer_id: u64,
    closed: bool,
    fin_sent: bool,
    fin_attempts: u32,
    finished: bool,
    failed: Option<LinkError>,
    bytes_offered: u64,
    frames_sent: u64,
    retransmissions: u64,
}

impl ArqSender {
    /// A fresh sender. `jitter_seed` feeds the deterministic retry
    /// jitter stream (derive it from the campaign seed so two stations
    /// never share a jitter sequence).
    ///
    /// # Panics
    /// Panics if `cfg` violates [`ArqConfig::check`].
    #[must_use]
    pub fn new(cfg: ArqConfig, jitter_seed: u64) -> Self {
        cfg.check();
        ArqSender {
            cfg,
            jitter_seed,
            jitter_draws: 0,
            staged: Vec::new(),
            queue: VecDeque::new(),
            next_tx: 0,
            inflight: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_timer_id: 0,
            closed: false,
            fin_sent: false,
            fin_attempts: 0,
            finished: false,
            failed: None,
            bytes_offered: 0,
            frames_sent: 0,
            retransmissions: 0,
        }
    }

    /// `true` once the FIN has been acknowledged.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The error that stopped the transfer, if any.
    #[must_use]
    pub fn failure(&self) -> Option<LinkError> {
        self.failed
    }

    /// Total stream bytes accepted via [`ArqSender::offer`].
    #[must_use]
    pub fn bytes_offered(&self) -> u64 {
        self.bytes_offered
    }

    /// Frames put on the air, including retransmissions and FINs.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Retransmissions performed (frames_sent minus first attempts).
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn inert(&self) -> bool {
        self.finished || self.failed.is_some()
    }

    /// Smallest logical index that could still be acked. Used to widen
    /// 16-bit wire sequences back to 64 bits.
    fn base(&self) -> u64 {
        self.inflight.keys().next().copied().unwrap_or(self.next_tx)
    }

    fn alloc_timer(&mut self, logical: u64) -> u64 {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.timers.insert(id, logical);
        id
    }

    fn jitter_s(&mut self) -> f64 {
        let draw = unit_draw(self.jitter_seed, self.jitter_draws);
        self.jitter_draws += 1;
        draw * self.cfg.retry_jitter_s
    }

    /// Timeout for transmission attempt `attempts` (1-based).
    fn timeout_s(&mut self, attempts: u32) -> f64 {
        let backed_off = self.cfg.ack_timeout_s * self.cfg.backoff.powi(attempts as i32 - 1);
        if attempts == 1 {
            backed_off
        } else {
            backed_off + self.jitter_s()
        }
    }

    /// Offer stream bytes. Chunks are cut and transmitted as window
    /// space allows; a trailing partial chunk stays staged until more
    /// bytes arrive or [`ArqSender::close`] flushes it.
    pub fn offer(&mut self, bytes: &[u8], out: &mut Vec<Action>) {
        if self.inert() {
            return;
        }
        assert!(!self.closed, "offer after close");
        self.bytes_offered += bytes.len() as u64;
        self.staged.extend_from_slice(bytes);
        while self.staged.len() >= self.cfg.chunk_len {
            let rest = self.staged.split_off(self.cfg.chunk_len);
            let chunk = std::mem::replace(&mut self.staged, rest);
            self.queue.push_back(chunk);
        }
        self.pump(out);
    }

    /// No more bytes are coming: flush the staged partial chunk and,
    /// once everything is acked, send the FIN.
    pub fn close(&mut self, out: &mut Vec<Action>) {
        if self.inert() || self.closed {
            return;
        }
        self.closed = true;
        if !self.staged.is_empty() {
            let chunk = std::mem::take(&mut self.staged);
            self.queue.push_back(chunk);
        }
        self.pump(out);
        self.maybe_fin(out);
    }

    fn pump(&mut self, out: &mut Vec<Action>) {
        // Classic selective-repeat send window: only logical indices in
        // [base, base + window) may ever be on the air. Bounding the
        // *spread* (not just the inflight count) is what entitles the
        // receiver to re-ACK any duplicate within `window` behind its
        // expected index and drop everything older — with count-only
        // limiting, one stuck frame lets the stream run arbitrarily far
        // ahead and its eventual retransmission is no longer
        // recognizable as a duplicate.
        while self.next_tx < self.base().saturating_add(self.cfg.window as u64) {
            let Some(payload) = self.queue.pop_front() else {
                break;
            };
            let logical = self.next_tx;
            self.next_tx += 1;
            let timer_id = self.alloc_timer(logical);
            let timeout_s = self.timeout_s(1);
            self.inflight.insert(
                logical,
                Inflight {
                    payload: payload.clone(),
                    attempts: 1,
                    timer_id,
                },
            );
            self.frames_sent += 1;
            out.push(Action::TxTimed {
                frame: Frame::data(logical as u16, payload),
                timer_id,
                timeout_s,
            });
        }
    }

    fn maybe_fin(&mut self, out: &mut Vec<Action>) {
        if !self.closed
            || self.fin_sent
            || !self.inflight.is_empty()
            || !self.queue.is_empty()
            || !self.staged.is_empty()
        {
            return;
        }
        self.fin_sent = true;
        self.fin_attempts = 1;
        let timer_id = self.alloc_timer(FIN_MARKER);
        let timeout_s = self.timeout_s(1);
        self.frames_sent += 1;
        out.push(Action::TxTimed {
            frame: Frame::fin(self.next_tx as u16),
            timer_id,
            timeout_s,
        });
    }

    /// Process an arriving frame. Non-ACK kinds are ignored — on a
    /// broadcast medium the sender overhears data frames from relays
    /// and pings from neighbours, and they are not for it.
    pub fn on_frame(&mut self, frame: &Frame, out: &mut Vec<Action>) {
        if self.inert() {
            return;
        }
        match frame.kind {
            FrameKind::Ack => {
                let base = self.base();
                let delta = frame.seq.wrapping_sub(base as u16) as u64;
                let logical = base + delta;
                if let Some(chunk) = self.inflight.remove(&logical) {
                    self.timers.remove(&chunk.timer_id);
                    self.pump(out);
                    self.maybe_fin(out);
                }
                // unknown logical index: duplicate/stale ACK, ignore
            }
            FrameKind::FinAck if self.fin_sent && frame.seq == self.next_tx as u16 => {
                self.finished = true;
                self.timers.clear();
                out.push(Action::Finished);
            }
            _ => {}
        }
    }

    /// Process an expired timer. Stale handles (already acked, already
    /// superseded by a retransmission) are ignored — logical indices
    /// are never reused, so there is no ABA hazard.
    pub fn on_timer(&mut self, timer_id: u64, out: &mut Vec<Action>) {
        if self.inert() {
            return;
        }
        let Some(logical) = self.timers.remove(&timer_id) else {
            return;
        };
        if logical == FIN_MARKER {
            if self.fin_attempts >= self.cfg.max_attempts {
                let error = LinkError::Timeout {
                    seq: FIN_MARKER,
                    attempts: self.fin_attempts,
                };
                self.failed = Some(error);
                self.timers.clear();
                out.push(Action::Failed { error });
                return;
            }
            self.fin_attempts += 1;
            let attempts = self.fin_attempts;
            let timer_id = self.alloc_timer(FIN_MARKER);
            let timeout_s = self.timeout_s(attempts);
            self.frames_sent += 1;
            self.retransmissions += 1;
            out.push(Action::TxTimed {
                frame: Frame::fin(self.next_tx as u16),
                timer_id,
                timeout_s,
            });
            return;
        }
        let attempts = {
            let Some(chunk) = self.inflight.get_mut(&logical) else {
                return;
            };
            if chunk.attempts >= self.cfg.max_attempts {
                let error = LinkError::Timeout {
                    seq: logical,
                    attempts: chunk.attempts,
                };
                self.failed = Some(error);
                self.timers.clear();
                out.push(Action::Failed { error });
                return;
            }
            chunk.attempts += 1;
            chunk.attempts
        };
        let timer_id = self.alloc_timer(logical);
        let timeout_s = self.timeout_s(attempts);
        // lint: allow(unjustified-panic, presence checked above; alloc_timer/timeout_s never remove entries)
        let chunk = self.inflight.get_mut(&logical).expect("still inflight");
        chunk.timer_id = timer_id;
        self.frames_sent += 1;
        self.retransmissions += 1;
        out.push(Action::TxTimed {
            frame: Frame::data(logical as u16, chunk.payload.clone()),
            timer_id,
            timeout_s,
        });
    }
}

/// Receiving half of the ARQ pipe: buffers in-window chunks, ACKs,
/// deduplicates, and delivers strictly in order.
#[derive(Debug)]
pub struct ArqReceiver {
    cfg: ArqConfig,
    /// Logical index of the next in-order chunk to deliver.
    expected: u64,
    /// Out-of-order chunks waiting for the gap to fill.
    buffer: BTreeMap<u64, Vec<u8>>,
    finished: bool,
    delivered_bytes: u64,
    duplicates: u64,
}

impl ArqReceiver {
    /// A fresh receiver. Use the same `cfg` as the sender — the window
    /// bounds how far ahead a wire sequence may be interpreted.
    ///
    /// # Panics
    /// Panics if `cfg` violates [`ArqConfig::check`].
    #[must_use]
    pub fn new(cfg: ArqConfig) -> Self {
        cfg.check();
        ArqReceiver {
            cfg,
            expected: 0,
            buffer: BTreeMap::new(),
            finished: false,
            delivered_bytes: 0,
            duplicates: 0,
        }
    }

    /// `true` once the FIN has been answered.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total bytes handed to the application, in order, exactly once.
    #[must_use]
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Duplicate data frames observed (and re-ACKed or discarded).
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Process an arriving frame.
    pub fn on_frame(&mut self, frame: &Frame, out: &mut Vec<Action>) {
        match frame.kind {
            FrameKind::Data => {
                if self.finished {
                    // late duplicate after the stream closed: re-ACK so
                    // a retransmitting sender can make progress
                    self.duplicates += 1;
                    out.push(Action::Tx {
                        frame: Frame::ack(frame.seq),
                    });
                    return;
                }
                let window = self.cfg.window as u64;
                let fwd = frame.seq.wrapping_sub(self.expected as u16) as u64;
                if fwd < window {
                    let logical = self.expected + fwd;
                    match self.buffer.entry(logical) {
                        std::collections::btree_map::Entry::Occupied(_) => self.duplicates += 1,
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            slot.insert(frame.payload.clone());
                        }
                    }
                    out.push(Action::Tx {
                        frame: Frame::ack(frame.seq),
                    });
                    while let Some(payload) = self.buffer.remove(&self.expected) {
                        self.expected += 1;
                        self.delivered_bytes += payload.len() as u64;
                        out.push(Action::Deliver { bytes: payload });
                    }
                    return;
                }
                let bwd = (self.expected as u16).wrapping_sub(frame.seq) as u64;
                if (1..=window).contains(&bwd) {
                    // already delivered; the ACK must have been lost
                    self.duplicates += 1;
                    out.push(Action::Tx {
                        frame: Frame::ack(frame.seq),
                    });
                }
                // anything else: out-of-window garbage, drop silently
            }
            FrameKind::Fin if frame.seq == self.expected as u16 && self.buffer.is_empty() => {
                out.push(Action::Tx {
                    frame: Frame::fin_ack(frame.seq),
                });
                if !self.finished {
                    self.finished = true;
                    out.push(Action::Finished);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a sender/receiver pair over a perfect, zero-latency
    /// channel until neither produces new work. Timers never fire.
    fn run_perfect(payload: &[u8], cfg: ArqConfig) -> (Vec<u8>, ArqSender, ArqReceiver) {
        let mut s = ArqSender::new(cfg.clone(), 7);
        let mut r = ArqReceiver::new(cfg);
        let mut delivered = Vec::new();
        let mut s_out = Vec::new();
        s.offer(payload, &mut s_out);
        s.close(&mut s_out);
        // alternate until quiescent
        let mut to_receiver: Vec<Frame> = drain_frames(&mut s_out);
        for _ in 0..10_000 {
            if to_receiver.is_empty() {
                break;
            }
            let mut r_out = Vec::new();
            for f in to_receiver.drain(..) {
                r.on_frame(&f, &mut r_out);
            }
            let mut s_in = Vec::new();
            for a in r_out {
                match a {
                    Action::Tx { frame } => s_in.push(frame),
                    Action::Deliver { bytes } => delivered.extend(bytes),
                    Action::Finished => {}
                    other => panic!("unexpected receiver action {other:?}"),
                }
            }
            let mut s_out = Vec::new();
            for f in s_in {
                s.on_frame(&f, &mut s_out);
            }
            to_receiver = drain_frames(&mut s_out);
        }
        (delivered, s, r)
    }

    fn drain_frames(actions: &mut Vec<Action>) -> Vec<Frame> {
        actions
            .drain(..)
            .filter_map(|a| match a {
                Action::Tx { frame } | Action::TxTimed { frame, .. } => Some(frame),
                Action::Finished | Action::Failed { .. } => None,
                other => panic!("unexpected sender action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn perfect_channel_delivers_stream_stop_and_wait() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let (delivered, s, r) = run_perfect(&payload, ArqConfig::stop_and_wait());
        assert_eq!(delivered, payload);
        assert!(s.is_finished());
        assert!(r.is_finished());
        assert_eq!(s.retransmissions(), 0);
        assert_eq!(r.duplicates(), 0);
        // 1000 bytes / 60-byte chunks = 17 data frames + 1 FIN
        assert_eq!(s.frames_sent(), 18);
    }

    #[test]
    fn perfect_channel_delivers_stream_sliding() {
        let payload: Vec<u8> = (0..5000u32).map(|i| (i * 7 % 256) as u8).collect();
        let (delivered, s, r) = run_perfect(&payload, ArqConfig::sliding(8));
        assert_eq!(delivered, payload);
        assert!(s.is_finished() && r.is_finished());
    }

    #[test]
    fn empty_stream_is_just_a_fin_handshake() {
        let (delivered, s, r) = run_perfect(&[], ArqConfig::sliding(4));
        assert!(delivered.is_empty());
        assert!(s.is_finished() && r.is_finished());
        assert_eq!(s.frames_sent(), 1, "only the FIN");
    }

    #[test]
    fn streaming_offer_matches_single_offer() {
        let payload: Vec<u8> = (0..997u32).map(|i| (i % 256) as u8).collect();
        let cfg = ArqConfig::sliding(4);
        let mut s = ArqSender::new(cfg.clone(), 7);
        let mut r = ArqReceiver::new(cfg);
        let mut delivered = Vec::new();
        let mut s_out = Vec::new();
        // drip-feed in awkward sizes, interleaved with channel pumping
        for chunk in payload.chunks(13) {
            s.offer(chunk, &mut s_out);
            pump(&mut s, &mut r, &mut s_out, &mut delivered);
        }
        s.close(&mut s_out);
        pump(&mut s, &mut r, &mut s_out, &mut delivered);
        assert_eq!(delivered, payload);
        assert!(s.is_finished() && r.is_finished());
    }

    fn pump(
        s: &mut ArqSender,
        r: &mut ArqReceiver,
        s_out: &mut Vec<Action>,
        delivered: &mut Vec<u8>,
    ) {
        for _ in 0..1000 {
            let frames = drain_frames(s_out);
            if frames.is_empty() {
                break;
            }
            let mut r_out = Vec::new();
            for f in frames {
                r.on_frame(&f, &mut r_out);
            }
            for a in r_out {
                match a {
                    Action::Tx { frame } => s.on_frame(&frame, s_out),
                    Action::Deliver { bytes } => delivered.extend(bytes),
                    Action::Finished => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn timeout_retransmits_then_fails_cleanly() {
        let cfg = ArqConfig {
            max_attempts: 3,
            ..ArqConfig::stop_and_wait()
        };
        let mut s = ArqSender::new(cfg, 7);
        let mut out = Vec::new();
        s.offer(b"hello", &mut out);
        s.close(&mut out);
        let mut timer = match out.pop() {
            Some(Action::TxTimed { timer_id, .. }) => timer_id,
            other => panic!("expected TxTimed, got {other:?}"),
        };
        // 2 retransmissions allowed (attempts 2, 3), then failure
        for attempt in 2..=3 {
            out.clear();
            s.on_timer(timer, &mut out);
            timer = match out.pop() {
                Some(Action::TxTimed {
                    timer_id,
                    timeout_s,
                    ..
                }) => {
                    // backoff grows the timeout
                    assert!(timeout_s > 0.08, "attempt {attempt} timeout {timeout_s}");
                    timer_id
                }
                other => panic!("attempt {attempt}: expected TxTimed, got {other:?}"),
            };
        }
        out.clear();
        s.on_timer(timer, &mut out);
        assert_eq!(
            out,
            vec![Action::Failed {
                error: LinkError::Timeout {
                    seq: 0,
                    attempts: 3
                }
            }]
        );
        assert_eq!(
            s.failure(),
            Some(LinkError::Timeout {
                seq: 0,
                attempts: 3
            })
        );
        // inert afterwards
        out.clear();
        s.on_timer(timer, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_timer_after_ack_is_ignored() {
        let cfg = ArqConfig::stop_and_wait();
        let mut s = ArqSender::new(cfg, 7);
        let mut out = Vec::new();
        s.offer(b"x", &mut out);
        s.close(&mut out);
        let timer = match &out[0] {
            Action::TxTimed { timer_id, .. } => *timer_id,
            other => panic!("{other:?}"),
        };
        out.clear();
        s.on_frame(&Frame::ack(0), &mut out);
        // chunk acked → FIN goes out
        assert!(matches!(&out[0], Action::TxTimed { frame, .. } if frame.kind == FrameKind::Fin));
        out.clear();
        s.on_timer(timer, &mut out);
        assert!(out.is_empty(), "acked chunk's timer must be a no-op");
        assert_eq!(s.retransmissions(), 0);
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let cfg = ArqConfig::sliding(4);
        let mut r = ArqReceiver::new(cfg);
        let mut out = Vec::new();
        r.on_frame(&Frame::data(0, b"ab".to_vec()), &mut out);
        assert_eq!(
            out,
            vec![
                Action::Tx {
                    frame: Frame::ack(0)
                },
                Action::Deliver {
                    bytes: b"ab".to_vec()
                },
            ]
        );
        out.clear();
        r.on_frame(&Frame::data(0, b"ab".to_vec()), &mut out);
        assert_eq!(
            out,
            vec![Action::Tx {
                frame: Frame::ack(0)
            }]
        );
        assert_eq!(r.duplicates(), 1);
        assert_eq!(r.delivered_bytes(), 2);
    }

    #[test]
    fn out_of_order_chunks_deliver_in_order() {
        let cfg = ArqConfig::sliding(4);
        let mut r = ArqReceiver::new(cfg);
        let mut out = Vec::new();
        r.on_frame(&Frame::data(2, b"C".to_vec()), &mut out);
        r.on_frame(&Frame::data(1, b"B".to_vec()), &mut out);
        r.on_frame(&Frame::data(0, b"A".to_vec()), &mut out);
        let delivered: Vec<u8> = out
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { bytes } => Some(bytes.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(delivered, b"ABC");
    }

    #[test]
    fn out_of_window_data_is_dropped_silently() {
        let cfg = ArqConfig::sliding(4);
        let mut r = ArqReceiver::new(cfg);
        let mut out = Vec::new();
        // way ahead of the window: neither buffered nor acked
        r.on_frame(&Frame::data(100, b"zz".to_vec()), &mut out);
        assert!(out.is_empty());
        assert_eq!(r.delivered_bytes(), 0);
    }

    #[test]
    fn fin_with_pending_gap_is_ignored() {
        let cfg = ArqConfig::sliding(4);
        let mut r = ArqReceiver::new(cfg);
        let mut out = Vec::new();
        r.on_frame(&Frame::data(1, b"B".to_vec()), &mut out); // gap at 0
        out.clear();
        r.on_frame(&Frame::fin(2), &mut out);
        assert!(out.is_empty(), "FIN must not close a stream with a hole");
        assert!(!r.is_finished());
    }

    #[test]
    fn fin_handshake_is_idempotent() {
        let cfg = ArqConfig::stop_and_wait();
        let mut r = ArqReceiver::new(cfg);
        let mut out = Vec::new();
        r.on_frame(&Frame::fin(0), &mut out);
        assert_eq!(
            out,
            vec![
                Action::Tx {
                    frame: Frame::fin_ack(0)
                },
                Action::Finished
            ]
        );
        out.clear();
        r.on_frame(&Frame::fin(0), &mut out);
        assert_eq!(
            out,
            vec![Action::Tx {
                frame: Frame::fin_ack(0)
            }],
            "retransmitted FIN re-ACKs without a second Finished"
        );
    }

    #[test]
    fn long_stream_wraps_u16_sequence_space() {
        // > 65536 chunks with 1-byte chunks: logical indices exceed u16
        let cfg = ArqConfig {
            chunk_len: 1,
            ..ArqConfig::sliding(64)
        };
        let payload: Vec<u8> = (0..70_000u32).map(|i| (i % 256) as u8).collect();
        let (delivered, s, r) = run_perfect(&payload, cfg);
        assert_eq!(delivered.len(), payload.len());
        assert_eq!(delivered, payload);
        assert!(s.is_finished() && r.is_finished());
    }

    #[test]
    #[should_panic(expected = "window 0 outside 1..=8192")]
    fn zero_window_rejected() {
        let _ = ArqConfig::sliding(0);
    }

    #[test]
    fn timeout_error_displays() {
        let e = LinkError::Timeout {
            seq: 4,
            attempts: 12,
        };
        assert!(e.to_string().contains("frame 4"));
        let f = LinkError::Timeout {
            seq: FIN_MARKER,
            attempts: 3,
        };
        assert!(f.to_string().contains("FIN"));
    }
}

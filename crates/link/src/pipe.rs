//! The reliable pipe: one call from payload bytes to a finished
//! multi-hop ARQ transfer with full accounting.
//!
//! [`transfer`] assembles the standard chain topology — sender, zero or
//! more store-and-forward relays, receiver — runs the deterministic
//! network simulation, and condenses the outcome into a
//! [`TransferReport`]: did every hop finish, what was the end-to-end
//! goodput, what did each node spend. The delivered bytes come back
//! alongside the report so callers can verify them against the
//! original (the e2e suite does, bit for bit).

use crate::arq::ArqConfig;
use crate::frame::Frame;
use crate::sim::{HopProfile, NetSim, Role, SimReport};
use tinysdr_ota::session::TURNAROUND_S;
use tinysdr_rf::phy::PhyModem;

/// Both directions of one hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Data direction (sender → receiver).
    pub forward: HopProfile,
    /// ACK direction (receiver → sender).
    pub reverse: HopProfile,
}

impl Hop {
    /// The same profile in both directions.
    #[must_use]
    pub fn symmetric(profile: HopProfile) -> Self {
        Hop {
            forward: profile.clone(),
            reverse: profile,
        }
    }
}

/// Outcome of a [`transfer`] run. Deterministic given the inputs —
/// `PartialEq` so the sharded==sequential gate can compare whole
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Did every hop's protocol finish (and deliver the full payload)?
    pub completed: bool,
    /// First node error encountered, rendered, if any.
    pub error: Option<String>,
    /// End-to-end simulated duration.
    pub duration_s: f64,
    /// Payload bits delivered end-to-end per simulated second (0 for an
    /// incomplete transfer).
    pub goodput_bps: f64,
    /// The underlying simulation report (per-node energy, per-edge
    /// channel statistics).
    pub sim: SimReport,
}

/// An [`ArqConfig`] with the retransmission timeout scaled to `phy`'s
/// actual ACK airtime: the timer must outlive turnaround + ACK flight
/// with margin, or every frame would retransmit spuriously on slow
/// PHYs (LoRa SF12 ACKs fly for longer than the default 80 ms).
#[must_use]
pub fn tuned_config(phy: &dyn PhyModem, window: u16) -> ArqConfig {
    let ack_air_s = phy.airtime_len_s(Frame::ack(0).encode().len() + 2);
    let mut cfg = ArqConfig::sliding(window);
    cfg.ack_timeout_s = cfg.ack_timeout_s.max(4.0 * (TURNAROUND_S + ack_air_s));
    cfg.retry_jitter_s = cfg.ack_timeout_s * 0.25;
    cfg
}

/// Transfer `payload` over `hops.len()` hops (1 hop = direct, 2+ hops =
/// store-and-forward relays in between) and return the report plus the
/// bytes the final receiver delivered.
///
/// # Panics
/// Panics when `hops` is empty — a transfer needs at least one hop.
#[must_use]
pub fn transfer(
    payload: &[u8],
    phy: &dyn PhyModem,
    hops: &[Hop],
    cfg: ArqConfig,
    seed: u64,
) -> (TransferReport, Vec<u8>) {
    assert!(!hops.is_empty(), "a transfer needs at least one hop");
    let mut sim = NetSim::new(phy, seed);
    let sender = sim.add_node(
        "sender",
        Role::Sender {
            payload: payload.to_vec(),
            cfg: cfg.clone(),
        },
    );
    let mut prev = sender;
    for (i, hop) in hops.iter().enumerate() {
        let is_last = i + 1 == hops.len();
        let node = if is_last {
            sim.add_node("receiver", Role::Receiver { cfg: cfg.clone() })
        } else {
            sim.add_node(&format!("relay{i}"), Role::Relay { cfg: cfg.clone() })
        };
        sim.link(prev, node, hop.forward.clone(), hop.reverse.clone());
        prev = node;
    }
    let receiver = prev;
    let sim_report = sim.run();
    let delivered = sim.delivered(receiver).to_vec();
    let completed = sim_report.nodes.iter().all(|n| n.finished) && delivered == payload;
    let error = sim_report.nodes.iter().find_map(|n| n.error.clone());
    let goodput_bps = if completed && sim_report.duration_s > 0.0 {
        payload.len() as f64 * 8.0 / sim_report.duration_s
    } else {
        0.0
    };
    (
        TransferReport {
            completed,
            error,
            duration_s: sim_report.duration_s,
            goodput_bps,
            sim: sim_report,
        },
        delivered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phylink::test_payload;
    use crate::sim::Pattern;
    use crate::testphy::TestPhy;

    #[test]
    fn single_hop_transfer_completes() {
        let phy = TestPhy::new();
        let payload = test_payload(1200, 3);
        let (report, delivered) = transfer(
            &payload,
            &phy,
            &[Hop::symmetric(HopProfile::clean(-80.0))],
            tuned_config(&phy, 8),
            1,
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(delivered, payload);
        assert!(report.goodput_bps > 0.0);
        assert!(report.error.is_none());
    }

    #[test]
    fn two_hop_relay_delivers_identical_bytes() {
        let phy = TestPhy::new();
        let payload = test_payload(900, 8);
        let cfg = tuned_config(&phy, 4);
        let hop = |rssi| Hop::symmetric(HopProfile::lossy(rssi, 0.15));
        let (single, direct) = transfer(&payload, &phy, &[hop(-90.0)], cfg.clone(), 2);
        let (multi, relayed) = transfer(&payload, &phy, &[hop(-90.0), hop(-92.0)], cfg, 2);
        assert!(single.completed && multi.completed);
        assert_eq!(direct, payload);
        assert_eq!(relayed, payload, "relay chain must not alter the bytes");
        assert_eq!(multi.sim.nodes.len(), 3);
        // per-hop energy is visible: the relay both received and sent
        let relay_energy = multi.sim.nodes[1].energy.by_tag();
        assert!(relay_energy["radio_rx"] > 0.0 && relay_energy["radio_tx"] > 0.0);
    }

    #[test]
    fn hopeless_hop_reports_failure_not_hang() {
        let phy = TestPhy::new();
        let payload = test_payload(200, 1);
        let mut cfg = tuned_config(&phy, 1);
        cfg.max_attempts = 4;
        let hop = Hop {
            forward: HopProfile {
                loss: Pattern::Bernoulli { prob: 1.0 },
                ..HopProfile::clean(-120.0)
            },
            reverse: HopProfile::clean(-120.0),
        };
        let (report, delivered) = transfer(&payload, &phy, &[hop], cfg, 5);
        assert!(!report.completed);
        assert!(report.error.is_some());
        assert!(report.goodput_bps == 0.0);
        assert!(delivered.is_empty());
    }

    #[test]
    fn tuned_config_scales_timeout_to_slow_phys() {
        let phy = TestPhy::new();
        let cfg = tuned_config(&phy, 8);
        // ack wire ≈ 9–11 bytes at 50 kb/s ≈ 1.5–1.8 ms ≪ default
        assert_eq!(cfg.ack_timeout_s, 0.08, "fast PHY keeps the default");
        assert_eq!(cfg.window, 8);
    }
}

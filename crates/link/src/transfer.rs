//! OTA firmware dissemination over the real ARQ link.
//!
//! The PR 5 session engine prices an OTA update through an *abstract*
//! packet model; this module transfers the very same wire stream
//! ([`BlockedUpdate::wire_stream`]) through the event-driven network
//! simulation instead — real frames, real ARQ, real collisions, real
//! per-hop energy — and then unpacks it back to image bytes. Because
//! both transports move byte-identical streams, the delivered-bytes
//! accounting of the abstract model and the link transfer can be
//! cross-checked exactly, which is precisely what the e2e suite does.

use crate::arq::ArqConfig;
use crate::pipe::{transfer, Hop, TransferReport};
use tinysdr_ota::blocks::{BlockedUpdate, PipelineError};
use tinysdr_rf::phy::PhyModem;

/// Outcome of an OTA dissemination over the link.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaTransferReport {
    /// The link-level transfer outcome.
    pub link: TransferReport,
    /// Compressed wire-stream bytes offered to the pipe.
    pub stream_len: u64,
    /// Unpacked image bytes recovered at the far end (0 when the
    /// transfer did not complete).
    pub image_len: u64,
    /// Did the stream arrive intact *and* unpack to an image whose
    /// CRC-32 matches the update's?
    pub image_ok: bool,
}

/// Disseminate `update` over `hops` and verify the received image.
///
/// Returns the report and the recovered image bytes (empty on an
/// incomplete transfer or a corrupt stream — which the ARQ contract
/// makes unreachable, and the e2e battery keeps honest).
///
/// # Panics
/// Panics when `hops` is empty (see [`transfer`]).
#[must_use]
pub fn ota_transfer(
    update: &BlockedUpdate,
    phy: &dyn PhyModem,
    hops: &[Hop],
    cfg: ArqConfig,
    seed: u64,
) -> (OtaTransferReport, Vec<u8>) {
    let stream = update.wire_stream();
    let (link, delivered) = transfer(&stream, phy, hops, cfg, seed);
    let (image, image_ok) = if link.completed && delivered == stream {
        match BlockedUpdate::unpack_wire_stream(&delivered) {
            Ok(image) => {
                let ok = tinysdr_fpga::bitstream::crc32(&image) == update.image_crc32;
                (if ok { image } else { Vec::new() }, ok)
            }
            Err(PipelineError::Corrupt { .. }) => (Vec::new(), false),
            Err(_) => (Vec::new(), false),
        }
    } else {
        (Vec::new(), false)
    };
    (
        OtaTransferReport {
            stream_len: stream.len() as u64,
            image_len: image.len() as u64,
            image_ok,
            link,
        },
        image,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::tuned_config;
    use crate::sim::HopProfile;
    use crate::testphy::TestPhy;
    use tinysdr_ota::image::FirmwareImage;

    #[test]
    fn mcu_image_survives_a_lossy_link() {
        let img = FirmwareImage::mcu("app", 20_000, 6);
        let update = BlockedUpdate::build(&img);
        let phy = TestPhy::new();
        let (report, image) = ota_transfer(
            &update,
            &phy,
            &[Hop::symmetric(HopProfile::lossy(-95.0, 0.1))],
            tuned_config(&phy, 8),
            13,
        );
        assert!(report.image_ok, "{report:?}");
        assert_eq!(image, img.data);
        assert_eq!(report.stream_len, update.compressed_len() as u64);
        assert_eq!(report.image_len, img.len() as u64);
    }

    #[test]
    fn failed_link_reports_no_image() {
        let img = FirmwareImage::mcu("app", 5_000, 6);
        let update = BlockedUpdate::build(&img);
        let phy = TestPhy::new();
        let mut cfg = tuned_config(&phy, 4);
        cfg.max_attempts = 3;
        let (report, image) = ota_transfer(
            &update,
            &phy,
            &[Hop::symmetric(HopProfile::lossy(-120.0, 1.0))],
            cfg,
            13,
        );
        assert!(!report.image_ok);
        assert!(image.is_empty());
        assert_eq!(report.image_len, 0);
    }
}

//! RF ping: round-trip probing with per-end RSSI measurement.
//!
//! The pinger transmits [`crate::frame::FrameKind::Ping`] frames one at
//! a time; the ponger answers each with a
//! [`crate::frame::FrameKind::Pong`] whose payload carries the RSSI the
//! ponger measured on the arriving ping. The pinger therefore learns
//! both directions of the link: the *forward* RSSI (reported by the
//! remote end inside the pong) and the *reverse* RSSI (measured locally
//! on the pong itself), plus the round-trip time — the `ping -c` of the
//! testbed, replacing the paper's manual link-budget spot checks.
//!
//! Like the ARQ endpoints, these are pure event machines: the driver
//! supplies time (`now_ns`), arriving frames, and expired timers, and
//! executes the emitted [`Action`]s. After a timeout the next ping is
//! delayed by a deterministic jitter draw, which is what lets two
//! hidden terminals that collided on their first pings desynchronize
//! instead of colliding forever.

use crate::arq::Action;
use crate::frame::{Frame, FrameKind};
use crate::unit_draw;
use tinysdr_dsp::event::ns_to_s;

/// Ping run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PingConfig {
    /// Number of pings to send.
    pub count: u32,
    /// Seconds (past end of the ping's own airtime) to wait for the
    /// pong before declaring the ping lost.
    pub timeout_s: f64,
    /// Pause between a resolved ping and the next transmission.
    pub interval_s: f64,
    /// Upper bound of the deterministic extra delay inserted after a
    /// *timed-out* ping (collision breaking).
    pub jitter_s: f64,
}

impl PingConfig {
    /// `count` pings with the default timing (250 ms timeout, 50 ms
    /// interval, 20 ms post-timeout jitter bound).
    #[must_use]
    pub fn new(count: u32) -> Self {
        PingConfig {
            count,
            timeout_s: 0.25,
            interval_s: 0.05,
            jitter_s: 0.02,
        }
    }
}

/// Aggregate outcome of a ping run. All statistics are deterministic
/// functions of the simulation seed — the report derives `PartialEq`
/// precisely so determinism contracts can compare it bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    /// Pings transmitted.
    pub sent: u32,
    /// Pongs received (matched to an awaited sequence number).
    pub received: u32,
    /// Loss fraction in `[0, 1]` (0 when nothing was sent).
    pub loss: f64,
    /// Fastest round trip, seconds (0 when nothing came back).
    pub rtt_min_s: f64,
    /// Mean round trip, seconds (0 when nothing came back).
    pub rtt_avg_s: f64,
    /// Slowest round trip, seconds (0 when nothing came back).
    pub rtt_max_s: f64,
    /// Mean forward-path RSSI, dBm, as measured by the remote end and
    /// reported inside each pong (NaN-free: 0 when nothing came back).
    pub rssi_fwd_dbm: f64,
    /// Mean reverse-path RSSI, dBm, measured locally on arriving pongs
    /// (0 when nothing came back).
    pub rssi_rev_dbm: f64,
}

#[derive(Debug)]
struct Awaiting {
    seq: u16,
    timer_id: u64,
    sent_at_ns: u64,
}

/// The probing end. Sends pings serially: the next goes out only after
/// the previous one resolved (pong or timeout).
#[derive(Debug)]
pub struct Pinger {
    cfg: PingConfig,
    jitter_seed: u64,
    jitter_draws: u64,
    /// First sequence number (offset pingers sharing a ponger so their
    /// sequence spaces cannot cross-match).
    seq0: u16,
    sent: u32,
    received: u32,
    awaiting: Option<Awaiting>,
    /// Timer id of a pending between-pings delay, if any.
    pending_delay: Option<u64>,
    next_timer_id: u64,
    finished: bool,
    rtt_sum_s: f64,
    rtt_min_s: f64,
    rtt_max_s: f64,
    rssi_fwd_sum_dbm: f64,
    rssi_rev_sum_dbm: f64,
}

impl Pinger {
    /// A fresh pinger starting its sequence numbers at `seq0`.
    ///
    /// # Panics
    /// Panics on a zero-count configuration — a pinger with nothing to
    /// send would emit `Finished` before starting, which every driver
    /// so far has treated as a bug in the scenario, not a result.
    #[must_use]
    pub fn new(cfg: PingConfig, seq0: u16, jitter_seed: u64) -> Self {
        assert!(cfg.count >= 1, "ping count must be at least 1");
        Pinger {
            cfg,
            jitter_seed,
            jitter_draws: 0,
            seq0,
            sent: 0,
            received: 0,
            awaiting: None,
            pending_delay: None,
            next_timer_id: 0,
            finished: false,
            rtt_sum_s: 0.0,
            rtt_min_s: f64::INFINITY,
            rtt_max_s: 0.0,
            rssi_fwd_sum_dbm: 0.0,
            rssi_rev_sum_dbm: 0.0,
        }
    }

    /// `true` once every ping has resolved.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Kick off the first ping.
    pub fn start(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        self.send_next(now_ns, out);
    }

    fn alloc_timer(&mut self) -> u64 {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        id
    }

    fn send_next(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        if self.finished {
            return;
        }
        if self.sent >= self.cfg.count {
            self.finished = true;
            out.push(Action::Finished);
            return;
        }
        let seq = self.seq0.wrapping_add(self.sent as u16);
        self.sent += 1;
        let timer_id = self.alloc_timer();
        self.awaiting = Some(Awaiting {
            seq,
            timer_id,
            sent_at_ns: now_ns,
        });
        out.push(Action::TxTimed {
            frame: Frame::ping(seq),
            timer_id,
            timeout_s: self.cfg.timeout_s,
        });
    }

    fn schedule_next(&mut self, extra_s: f64, out: &mut Vec<Action>) {
        if self.sent >= self.cfg.count {
            self.finished = true;
            out.push(Action::Finished);
            return;
        }
        let timer_id = self.alloc_timer();
        self.pending_delay = Some(timer_id);
        out.push(Action::Delay {
            timer_id,
            delay_s: self.cfg.interval_s + extra_s,
        });
    }

    /// Process an arriving frame (only pongs matching the awaited
    /// sequence number matter; everything else is overheard traffic).
    pub fn on_frame(&mut self, frame: &Frame, rssi_dbm: f64, now_ns: u64, out: &mut Vec<Action>) {
        if self.finished || frame.kind != FrameKind::Pong {
            return;
        }
        let Some(waiting) = &self.awaiting else {
            return; // late pong after timeout: ignore
        };
        if frame.seq != waiting.seq {
            return; // someone else's pong, or a stale one
        }
        let rtt_s = ns_to_s(now_ns.saturating_sub(waiting.sent_at_ns));
        self.awaiting = None;
        self.received += 1;
        self.rtt_sum_s += rtt_s;
        self.rtt_min_s = self.rtt_min_s.min(rtt_s);
        self.rtt_max_s = self.rtt_max_s.max(rtt_s);
        self.rssi_fwd_sum_dbm += frame.pong_rssi_dbm().unwrap_or(0.0);
        self.rssi_rev_sum_dbm += rssi_dbm;
        self.schedule_next(0.0, out);
    }

    /// Process an expired timer: either the awaited pong never came
    /// (count the loss, move on with jitter) or a between-pings delay
    /// elapsed (transmit the next ping).
    pub fn on_timer(&mut self, timer_id: u64, now_ns: u64, out: &mut Vec<Action>) {
        if self.finished {
            return;
        }
        if self
            .awaiting
            .as_ref()
            .is_some_and(|w| w.timer_id == timer_id)
        {
            self.awaiting = None;
            let jitter = unit_draw(self.jitter_seed, self.jitter_draws) * self.cfg.jitter_s;
            self.jitter_draws += 1;
            self.schedule_next(jitter, out);
            return;
        }
        if self.pending_delay == Some(timer_id) {
            self.pending_delay = None;
            self.send_next(now_ns, out);
        }
        // anything else: stale handle, ignore
    }

    /// The run's aggregate statistics (valid any time; final once
    /// [`Pinger::is_finished`]).
    #[must_use]
    pub fn report(&self) -> PingReport {
        let n = self.received as f64;
        let (rtt_min_s, rtt_avg_s, rtt_max_s, rssi_fwd_dbm, rssi_rev_dbm) = if self.received > 0 {
            (
                self.rtt_min_s,
                self.rtt_sum_s / n,
                self.rtt_max_s,
                self.rssi_fwd_sum_dbm / n,
                self.rssi_rev_sum_dbm / n,
            )
        } else {
            (0.0, 0.0, 0.0, 0.0, 0.0)
        };
        let loss = if self.sent > 0 {
            1.0 - self.received as f64 / self.sent as f64
        } else {
            0.0
        };
        PingReport {
            sent: self.sent,
            received: self.received,
            loss,
            rtt_min_s,
            rtt_avg_s,
            rtt_max_s,
            rssi_fwd_dbm,
            rssi_rev_dbm,
        }
    }
}

/// The answering end: stateless echo of pings as pongs carrying the
/// locally measured RSSI. One ponger serves any number of pingers.
#[derive(Debug, Default)]
pub struct Ponger {
    pongs: u64,
}

impl Ponger {
    /// A fresh ponger.
    #[must_use]
    pub fn new() -> Self {
        Ponger::default()
    }

    /// Pongs transmitted so far.
    #[must_use]
    pub fn pongs(&self) -> u64 {
        self.pongs
    }

    /// Process an arriving frame; pings are answered, everything else
    /// is ignored.
    pub fn on_frame(&mut self, frame: &Frame, rssi_dbm: f64, out: &mut Vec<Action>) {
        if frame.kind == FrameKind::Ping {
            self.pongs += 1;
            out.push(Action::Tx {
                frame: Frame::pong(frame.seq, rssi_dbm),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_frame(a: &Action) -> &Frame {
        match a {
            Action::Tx { frame } | Action::TxTimed { frame, .. } => frame,
            other => panic!("expected a transmission, got {other:?}"),
        }
    }

    #[test]
    fn ping_pong_round_trip_records_both_rssi_ends() {
        let mut pinger = Pinger::new(PingConfig::new(1), 0, 1);
        let mut ponger = Ponger::new();
        let mut out = Vec::new();
        pinger.start(0, &mut out);
        assert_eq!(out.len(), 1);
        let ping = tx_frame(&out[0]).clone();
        assert_eq!(ping.kind, FrameKind::Ping);

        let mut pong_out = Vec::new();
        ponger.on_frame(&ping, -88.0, &mut pong_out);
        let pong = tx_frame(&pong_out[0]).clone();
        assert_eq!(pong.pong_rssi_dbm(), Some(-88.0));

        let mut done = Vec::new();
        pinger.on_frame(&pong, -91.0, 2_000_000, &mut done);
        assert_eq!(done, vec![Action::Finished]);
        let r = pinger.report();
        assert_eq!(r.sent, 1);
        assert_eq!(r.received, 1);
        assert_eq!(r.loss, 0.0);
        assert!((r.rtt_avg_s - 0.002).abs() < 1e-12);
        assert_eq!(r.rssi_fwd_dbm, -88.0);
        assert_eq!(r.rssi_rev_dbm, -91.0);
        assert_eq!(ponger.pongs(), 1);
    }

    #[test]
    fn timeout_counts_loss_and_moves_on_with_jitter() {
        let mut pinger = Pinger::new(PingConfig::new(2), 0, 1);
        let mut out = Vec::new();
        pinger.start(0, &mut out);
        let timer = match &out[0] {
            Action::TxTimed { timer_id, .. } => *timer_id,
            other => panic!("{other:?}"),
        };
        out.clear();
        pinger.on_timer(timer, 250_000_000, &mut out);
        // timed out → a delayed (interval + jitter) follow-up
        let (delay_timer, delay_s) = match &out[0] {
            Action::Delay { timer_id, delay_s } => (*timer_id, *delay_s),
            other => panic!("{other:?}"),
        };
        assert!(delay_s >= 0.05, "at least the interval");
        out.clear();
        pinger.on_timer(delay_timer, 300_000_000, &mut out);
        assert_eq!(tx_frame(&out[0]).seq, 1, "second ping has the next seq");
        out.clear();
        // second (last) ping also times out → run finishes immediately,
        // no pointless trailing delay
        let timer2 = pinger.awaiting.as_ref().expect("awaiting").timer_id;
        pinger.on_timer(timer2, 600_000_000, &mut out);
        assert_eq!(out, vec![Action::Finished]);
        let r = pinger.report();
        assert_eq!((r.sent, r.received), (2, 0));
        assert_eq!(r.loss, 1.0);
        assert_eq!(r.rtt_avg_s, 0.0, "no samples, no NaN");
    }

    #[test]
    fn late_or_foreign_pong_is_ignored() {
        let mut pinger = Pinger::new(PingConfig::new(1), 100, 1);
        let mut out = Vec::new();
        pinger.start(0, &mut out);
        out.clear();
        // wrong sequence number (another pinger's pong)
        pinger.on_frame(&Frame::pong(5, -80.0), -80.0, 1_000, &mut out);
        assert!(out.is_empty());
        assert_eq!(pinger.report().received, 0);
        // right one still works
        pinger.on_frame(&Frame::pong(100, -80.0), -80.0, 2_000, &mut out);
        assert_eq!(pinger.report().received, 1);
    }

    #[test]
    fn ponger_ignores_non_pings() {
        let mut ponger = Ponger::new();
        let mut out = Vec::new();
        ponger.on_frame(&Frame::ack(1), -70.0, &mut out);
        ponger.on_frame(&Frame::data(0, vec![1]), -70.0, &mut out);
        assert!(out.is_empty());
        assert_eq!(ponger.pongs(), 0);
    }
}

//! Frames ↔ waveforms: the adapter that gives every registered
//! [`PhyModem`] a packet layer.
//!
//! A link frame's wire image ([`Frame::encode`]) is just bytes; any
//! modem turns it into baseband I/Q with `modulate` and recovers a
//! best-effort byte stream with `demodulate`. The [`Deframer`] then
//! finds frame boundaries and the CRC-16 trailer rejects anything the
//! channel mangled — corruption becomes loss, exactly the abstraction
//! the ARQ layer is built on. Because this goes through `&dyn
//! PhyModem`, all 11 registry modems (LoRa at every SF, BLE GFSK,
//! 802.15.4 O-QPSK, …) get the packet layer with zero per-protocol
//! code.
//!
//! [`frame_loss_prob`] closes the loop with the PR 4 impairment chain:
//! it Monte-Carlos real frames through modulate → channel → demodulate
//! → deframe at a given RSSI, yielding the per-hop loss probability the
//! network simulator's [`crate::sim::Pattern::Bernoulli`] consumes.
//! That is how a goodput-vs-RSSI curve inherits the physics of the
//! conformance harness instead of inventing its own loss model.

use crate::frame::{Deframer, Frame};
use tinysdr_dsp::complex::Complex;
use tinysdr_ota::seed::{node_stream_seed, splitmix64};
use tinysdr_rf::impairments::ImpairmentChain;
use tinysdr_rf::phy::PhyModem;

/// Stream tag: per-trial channel seeds of [`frame_loss_prob`].
pub const STREAM_LINK_PER: u64 = 0x117A_0005;

/// Modulate one frame into baseband I/Q.
///
/// The wire image is padded with two KISS idle delimiters (`FEND`)
/// before modulation: bit-granular modems whose symbol size does not
/// divide the wire bit count (the SF9 LoRa stream modem packs 9-bit
/// symbols) truncate up to `symbol_bits − 1` trailing bits, which
/// would otherwise eat the closing delimiter. Extra `FEND`s between
/// frames are the KISS idle idiom; the deframer ignores them, so the
/// padding is invisible at the frame layer on every modem.
#[must_use]
pub fn frame_to_waveform(phy: &dyn PhyModem, frame: &Frame) -> Vec<Complex> {
    let mut wire = frame.encode();
    wire.extend_from_slice(&[crate::frame::FEND; 2]);
    phy.modulate(&wire)
}

/// Demodulate a capture and recover every validated frame in it.
/// Returns the frames plus the deframer (for its noise/reject
/// counters).
#[must_use]
pub fn waveform_to_frames(phy: &dyn PhyModem, iq: &[Complex]) -> (Vec<Frame>, Deframer) {
    let mut deframer = Deframer::new();
    let mut out = Vec::new();
    deframer.push_bytes(&phy.demodulate(iq).bytes, &mut out);
    (out, deframer)
}

/// Measure the probability that `frame` fails to survive modulate →
/// impairment chain at `rssi_dbm` → demodulate → deframe + CRC, over
/// `trials` independent channel realizations.
///
/// Deterministic: trial `i` uses the channel seed
/// `node_stream_seed(seed, i, STREAM_LINK_PER)`, so the measured PER is
/// a pure function of `(phy, chain, rssi_dbm, frame, trials, seed)`.
/// A frame "survives" only if it decodes *identically* — a validated
/// frame with different contents counts as lost (and would indict the
/// CRC, which the property tests separately pin).
///
/// # Panics
/// Panics when `trials` is zero — a loss probability over no trials is
/// not a number anyone should average into a curve.
#[must_use]
pub fn frame_loss_prob(
    phy: &dyn PhyModem,
    chain: &ImpairmentChain,
    rssi_dbm: f64,
    frame: &Frame,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "PER needs at least one trial");
    let tx = frame_to_waveform(phy, frame);
    let fs = phy.sample_rate_hz();
    let mut lost = 0u32;
    for i in 0..trials {
        let trial_seed = node_stream_seed(seed, i as u64, STREAM_LINK_PER);
        let rx = chain.apply(&tx, rssi_dbm, fs, trial_seed);
        let (frames, _) = waveform_to_frames(phy, &rx);
        let ok = frames.len() == 1 && frames[0] == *frame;
        if !ok {
            lost += 1;
        }
    }
    lost as f64 / trials as f64
}

/// A deterministic pseudo-random payload for test/benchmark frames:
/// byte `i` of the result is a splitmix64 draw keyed by `(seed, i)` —
/// the escape-dense, structure-free worst case for the framing layer.
#[must_use]
pub fn test_payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (splitmix64(seed ^ splitmix64(i as u64)) & 0xFF) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testphy::TestPhy;

    #[test]
    fn clean_waveform_round_trip() {
        let phy = TestPhy::new();
        let f = Frame::data(3, test_payload(48, 9));
        let iq = frame_to_waveform(&phy, &f);
        let (frames, deframer) = waveform_to_frames(&phy, &iq);
        assert_eq!(frames, vec![f]);
        assert_eq!(deframer.rejected(), 0);
    }

    #[test]
    fn loss_prob_is_monotone_in_rssi_and_deterministic() {
        let phy = TestPhy::new();
        let chain = ImpairmentChain::new(phy.noise_figure_db());
        let f = Frame::data(0, test_payload(32, 4));
        // far above sensitivity: clean; far below: hopeless
        let strong = frame_loss_prob(&phy, &chain, -60.0, &f, 20, 11);
        let weak = frame_loss_prob(&phy, &chain, -150.0, &f, 20, 11);
        assert_eq!(strong, 0.0, "−60 dBm must be loss-free");
        assert!(weak > 0.9, "−150 dBm must be mostly loss, got {weak}");
        assert_eq!(
            frame_loss_prob(&phy, &chain, -120.0, &f, 20, 11),
            frame_loss_prob(&phy, &chain, -120.0, &f, 20, 11),
            "PER is a pure function of its inputs"
        );
    }

    #[test]
    fn test_payload_is_deterministic_and_dense() {
        let a = test_payload(256, 7);
        assert_eq!(a, test_payload(256, 7));
        assert_ne!(a, test_payload(256, 8));
        // dense: most byte values appear in 256 draws — in particular
        // it exercises FEND/FESC escaping with overwhelming likelihood
        let distinct = a.iter().collect::<std::collections::BTreeSet<_>>().len();
        assert!(
            distinct > 140,
            "suspiciously low byte diversity: {distinct}"
        );
    }
}

//! Property-based invariants for the RF substrate.

use proptest::prelude::*;
use tinysdr_dsp::complex::Complex;
use tinysdr_rf::channel::{measure_rssi_dbm, set_rssi};
use tinysdr_rf::lvds::{Deserializer, IqWord, Serializer};
use tinysdr_rf::units::{dbm_to_mw, mw_to_dbm};

proptest! {
    /// dBm ↔ mW conversions are inverse over the full dynamic range.
    #[test]
    fn dbm_mw_inverse(dbm in -150.0f64..50.0) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
    }

    /// Every 13-bit I/Q pair survives the LVDS word format.
    #[test]
    fn lvds_word_round_trip(i in -4096i16..=4095, q in -4096i16..=4095) {
        let w = IqWord::new(i, q).unwrap();
        let d = IqWord::decode(w.encode()).unwrap();
        prop_assert_eq!((d.i, d.q), (i, q));
    }

    /// A serialized sample stream survives arbitrary bit-misalignment
    /// prefixes (the deserializer hunts for sync).
    #[test]
    fn lvds_stream_survives_misalignment(
        prefix_len in 0usize..40,
        n_samples in 4usize..40,
        seed in any::<u64>(),
    ) {
        let samples: Vec<Complex> = (0..n_samples)
            .map(|k| {
                let a = ((seed.rotate_left(k as u32) & 0xFFFF) as f64 / 65535.0) * 1.6 - 0.8;
                Complex::new(a, -a * 0.5)
            })
            .collect();
        let bits = Serializer::new().serialize(&samples);
        let mut stream = vec![false; prefix_len];
        stream.extend_from_slice(&bits);
        let mut des = Deserializer::new();
        des.push_bits(&stream);
        let out = des.finish();
        // must recover nearly all samples regardless of alignment
        prop_assert!(out.len() + 1 >= n_samples, "{} of {}", out.len(), n_samples);
        // and the recovered tail must match the original values closely
        let off = out.len() - n_samples.min(out.len());
        for (a, b) in out[off..].iter().zip(&samples[n_samples - (out.len() - off)..]) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    /// set_rssi always lands the measured RSSI on target.
    #[test]
    fn rssi_scaling_exact(target in -140.0f64..0.0, scale in 0.01f64..10.0) {
        let mut sig: Vec<Complex> =
            (0..256).map(|i| Complex::from_angle(i as f64 * 0.1).scale(scale)).collect();
        set_rssi(&mut sig, target);
        prop_assert!((measure_rssi_dbm(&sig) - target).abs() < 1e-6);
    }

    /// The AWGN calibration the waterfalls lean on: for any sampling
    /// rate and noise figure the sweeps use, the injected noise power
    /// matches `noise_floor_dbm(fs, nf)` to within the statistical
    /// tolerance of the sample count.
    #[test]
    fn awgn_noise_power_matches_the_floor(
        fs in 100e3f64..5e6,
        nf in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        use tinysdr_rf::channel::AwgnChannel;
        use tinysdr_rf::units::noise_floor_dbm;
        let mut ch = AwgnChannel::new(nf, seed);
        let noise = ch.noise_only(30_000, fs);
        let p_mw: f64 =
            noise.iter().map(|z| z.norm_sqr()).sum::<f64>() / noise.len() as f64;
        let got = mw_to_dbm(p_mw);
        let want = noise_floor_dbm(fs, nf);
        prop_assert!((got - want).abs() < 0.3, "noise {got:.2} vs floor {want:.2} dBm");
    }
}

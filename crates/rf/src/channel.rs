//! Channel models: calibrated AWGN, carrier/timing offsets, and
//! packet-level fault injection.
//!
//! The paper's sensitivity sweeps (Figs. 10–12, 15) step the received
//! signal strength while the receiver's noise stays fixed by physics:
//! `N = −174 dBm/Hz + 10·log10(fs) + NF`. [`AwgnChannel`] reproduces
//! exactly that: it scales the transmit waveform to the wanted RSSI and
//! adds complex white Gaussian noise of the correct power for the
//! simulation bandwidth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinysdr_dsp::complex::{mean_power, normalize_power, Complex};

use crate::units::{dbm_to_mw, noise_floor_dbm};

/// One pair of independent standard Gaussian samples via Box–Muller —
/// the statistical kernel behind [`AwgnChannel`] and the randomized
/// stages of [`crate::impairments::ImpairmentChain`] (one shared
/// implementation so the two can never drift apart).
#[inline]
pub(crate) fn gauss_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Complex AWGN generator with physical noise power.
#[derive(Debug)]
pub struct AwgnChannel {
    /// Receiver noise figure in dB (AT86RF215: 3–5 dB per the paper; the
    /// SX1276 comparator uses 7 dB).
    pub noise_figure_db: f64,
    rng: StdRng,
}

impl AwgnChannel {
    /// Create a channel with a given receiver noise figure and RNG seed.
    pub fn new(noise_figure_db: f64, seed: u64) -> Self {
        AwgnChannel {
            noise_figure_db,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One sample of zero-mean complex Gaussian noise with total power
    /// `p_mw` (split across I and Q).
    #[inline]
    fn noise_sample(&mut self, p_mw: f64) -> Complex {
        let sigma = (p_mw / 2.0).sqrt();
        let (i, q) = gauss_pair(&mut self.rng);
        Complex::new(sigma * i, sigma * q)
    }

    /// Scale `sig` to `rssi_dbm` and add receiver noise for a simulation
    /// (sampling) bandwidth of `fs` Hz. Returns the actual noise power in
    /// mW that was injected.
    ///
    /// The *occupied* bandwidth of the signal does not matter here — a
    /// narrowband signal inside a wide `fs` sees proportionally more total
    /// noise, and the receiver's filtering/processing gain then recovers
    /// the SNR, exactly as in hardware.
    pub fn apply(&mut self, sig: &mut [Complex], rssi_dbm: f64, fs: f64) -> f64 {
        normalize_power(sig, dbm_to_mw(rssi_dbm));
        let n_mw = dbm_to_mw(noise_floor_dbm(fs, self.noise_figure_db));
        for s in sig.iter_mut() {
            *s += self.noise_sample(n_mw);
        }
        n_mw
    }

    /// Generate `n` samples of pure receiver noise (no signal present),
    /// for noise-only occupancy tests.
    pub fn noise_only(&mut self, n: usize, fs: f64) -> Vec<Complex> {
        let mut out = Vec::with_capacity(n);
        self.noise_only_into(n, fs, &mut out);
        out
    }

    /// [`AwgnChannel::noise_only`] into a caller-owned buffer (cleared
    /// first). The draws are exactly the sequence [`AwgnChannel::add_noise`]
    /// would add to a signal of length `n`, so a precomputed noise vector
    /// added sample-by-sample is bit-identical to calling `add_noise`.
    pub fn noise_only_into(&mut self, n: usize, fs: f64, out: &mut Vec<Complex>) {
        let n_mw = dbm_to_mw(noise_floor_dbm(fs, self.noise_figure_db));
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let s = self.noise_sample(n_mw);
            out.push(s);
        }
    }

    /// Add noise to a pre-scaled signal without renormalizing it — used
    /// when several transmitters are summed first (the concurrent
    /// reception study, §6).
    pub fn add_noise(&mut self, sig: &mut [Complex], fs: f64) -> f64 {
        let n_mw = dbm_to_mw(noise_floor_dbm(fs, self.noise_figure_db));
        for s in sig.iter_mut() {
            *s += self.noise_sample(n_mw);
        }
        n_mw
    }
}

/// Scale a signal buffer so its mean power equals `rssi_dbm` (no noise).
pub fn set_rssi(sig: &mut [Complex], rssi_dbm: f64) {
    normalize_power(sig, dbm_to_mw(rssi_dbm));
}

/// Measured RSSI of a buffer in dBm.
pub fn measure_rssi_dbm(sig: &[Complex]) -> f64 {
    crate::units::mw_to_dbm(mean_power(sig))
}

/// Apply a carrier frequency offset of `cfo_hz` (receiver LO error).
pub fn apply_cfo(sig: &mut [Complex], cfo_hz: f64, fs: f64) {
    let w = std::f64::consts::TAU * cfo_hz / fs;
    for (n, s) in sig.iter_mut().enumerate() {
        *s *= Complex::from_angle(w * n as f64);
    }
}

/// Prepend `n` samples of silence (integer timing offset).
pub fn apply_delay(sig: &[Complex], n: usize) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; n];
    out.extend_from_slice(sig);
    out
}

/// Sum two transmissions sample-by-sample, zero-padding the shorter one —
/// the collision channel for the concurrent-reception study.
pub fn superpose(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(Complex::ZERO);
            let y = b.get(i).copied().unwrap_or(Complex::ZERO);
            x + y
        })
        .collect()
}

/// smoltcp-style fault injection for packet-level links (the OTA testbed
/// campaign uses this on top of the RSSI-derived PER).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability a packet is dropped outright.
    pub drop_chance: f64,
    /// Probability one random byte of a surviving packet is corrupted.
    pub corrupt_chance: f64,
    rng: StdRng,
}

impl FaultInjector {
    /// Create an injector; probabilities are clamped to `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Pass a packet through the faulty link. Returns `None` if dropped,
    /// otherwise the (possibly corrupted) payload.
    pub fn transmit(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        if self.rng.gen::<f64>() < self.drop_chance {
            return None;
        }
        let mut out = packet.to_vec();
        if !out.is_empty() && self.rng.gen::<f64>() < self.corrupt_chance {
            let idx = self.rng.gen_range(0..out.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            out[idx] ^= bit;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{mw_to_dbm, thermal_noise_dbm};
    use tinysdr_dsp::nco::ideal_tone;

    #[test]
    fn rssi_scaling_is_exact() {
        let mut sig = ideal_tone(1000.0, 1e6, 4096);
        set_rssi(&mut sig, -100.0);
        assert!((measure_rssi_dbm(&sig) + 100.0).abs() < 0.01);
    }

    #[test]
    fn noise_power_matches_physics() {
        let mut ch = AwgnChannel::new(6.0, 42);
        let fs = 1e6;
        let noise = ch.noise_only(200_000, fs);
        let p_dbm = mw_to_dbm(mean_power(&noise));
        let expect = thermal_noise_dbm(fs) + 6.0;
        assert!((p_dbm - expect).abs() < 0.1, "noise {p_dbm} vs {expect}");
    }

    #[test]
    fn noise_power_tracks_fs_and_nf_across_the_grid() {
        // the calibration every waterfall leans on: injected noise power
        // must equal noise_floor_dbm(fs, nf) for every (fs, NF) the
        // sweeps use — LoRa 125/500 kHz, BLE 4 MHz, both front ends
        for (i, &fs) in [125e3, 500e3, 4e6].iter().enumerate() {
            for (j, &nf) in [3.0, 4.5, 6.7, 7.0].iter().enumerate() {
                let mut ch = AwgnChannel::new(nf, 1000 + (i * 7 + j) as u64);
                let noise = ch.noise_only(150_000, fs);
                let got = mw_to_dbm(mean_power(&noise));
                let want = noise_floor_dbm(fs, nf);
                assert!(
                    (got - want).abs() < 0.15,
                    "fs {fs} NF {nf}: {got:.2} vs {want:.2} dBm"
                );
            }
        }
    }

    #[test]
    fn set_rssi_measure_rssi_round_trip_over_the_sweep_range() {
        // the x-axis of every waterfall: scaling to a target RSSI and
        // reading it back must agree over the full sweep span, for both
        // a tone and a noise-like waveform
        let mut ch = AwgnChannel::new(0.0, 55);
        let noise_like = ch.noise_only(8192, 1e6);
        let tone = ideal_tone(3000.0, 1e6, 8192);
        for rssi in [-140.0, -126.0, -109.0, -94.0, -60.0, 0.0] {
            for base in [&tone, &noise_like] {
                let mut sig = base.clone();
                set_rssi(&mut sig, rssi);
                let got = measure_rssi_dbm(&sig);
                assert!((got - rssi).abs() < 1e-9, "set {rssi} measured {got} dBm");
            }
        }
    }

    #[test]
    fn apply_returns_the_injected_noise_power() {
        // the n_mw return value is documented as the actual injected
        // noise power; pin it to the calibrated floor
        let fs = 250e3;
        let nf = 4.5;
        let mut ch = AwgnChannel::new(nf, 77);
        let mut sig = ideal_tone(10e3, fs, 1024);
        let n_mw = ch.apply(&mut sig, -120.0, fs);
        assert!(
            (mw_to_dbm(n_mw) - noise_floor_dbm(fs, nf)).abs() < 1e-9,
            "reported noise power off the calibrated floor"
        );
    }

    #[test]
    fn snr_after_apply_is_rssi_minus_floor() {
        let fs = 500e3;
        let nf = 4.5;
        let rssi = -110.0;
        let mut ch = AwgnChannel::new(nf, 7);
        let mut sig = ideal_tone(10e3, fs, 100_000);
        let n_mw = ch.apply(&mut sig, rssi, fs);
        let total_dbm = measure_rssi_dbm(&sig);
        // total power ≈ signal + noise
        let expect_mw = dbm_to_mw(rssi) + n_mw;
        assert!((dbm_to_mw(total_dbm) - expect_mw).abs() / expect_mw < 0.05);
    }

    #[test]
    fn noise_is_complex_circular() {
        let mut ch = AwgnChannel::new(0.0, 9);
        let noise = ch.noise_only(100_000, 1e6);
        let mean: Complex = noise.iter().copied().sum::<Complex>() / noise.len() as f64;
        assert!(mean.abs() < 0.001 * mean_power(&noise).sqrt() * 100.0);
        // I and Q power split equally
        let pi: f64 = noise.iter().map(|z| z.re * z.re).sum::<f64>();
        let pq: f64 = noise.iter().map(|z| z.im * z.im).sum::<f64>();
        assert!((pi / pq - 1.0).abs() < 0.05);
    }

    #[test]
    fn cfo_shifts_tone() {
        use tinysdr_dsp::fft::{fft, peak_bin};
        let fs = 1e6;
        let n = 1024;
        let mut sig = ideal_tone(100.0 * fs / n as f64, fs, n);
        apply_cfo(&mut sig, 50.0 * fs / n as f64, fs);
        let (k, _) = peak_bin(&fft(&sig)).unwrap();
        assert_eq!(k, 150);
    }

    #[test]
    fn superpose_pads_shorter() {
        let a = vec![Complex::ONE; 10];
        let b = vec![Complex::ONE; 4];
        let s = superpose(&a, &b);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], Complex::new(2.0, 0.0));
        assert_eq!(s[9], Complex::ONE);
    }

    #[test]
    fn delay_prepends_silence() {
        let sig = vec![Complex::ONE; 3];
        let d = apply_delay(&sig, 2);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], Complex::ZERO);
        assert_eq!(d[2], Complex::ONE);
    }

    #[test]
    fn fault_injector_statistics() {
        let mut fi = FaultInjector::new(0.3, 0.0, 123);
        let mut dropped = 0;
        for _ in 0..10_000 {
            if fi.transmit(&[1, 2, 3]).is_none() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn fault_injector_corruption_is_single_bit() {
        let mut fi = FaultInjector::new(0.0, 1.0, 5);
        let orig = vec![0u8; 16];
        let got = fi.transmit(&orig).unwrap();
        let diff: u32 = orig
            .iter()
            .zip(&got)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = AwgnChannel::new(5.0, 99);
        let mut b = AwgnChannel::new(5.0, 99);
        assert_eq!(a.noise_only(16, 1e6), b.noise_only(16, 1e6));
    }
}

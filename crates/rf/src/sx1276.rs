//! Semtech SX1276 backbone radio model.
//!
//! TinySDR carries a dedicated SX1276 LoRa transceiver as the OTA
//! "backbone" (paper §3.1.2) and the paper also uses SX1276 chips as the
//! reference transmitter/receiver in the Fig. 10/11 sensitivity
//! experiments. The model provides:
//!
//! * datasheet sensitivity per `(SF, BW)` from first principles
//!   (`−174 + 10·log10(BW) + NF + SNR_req(SF)` with the chip's NF ≈ 7 dB),
//! * the Semtech airtime formula (AN1200.13) used by the OTA protocol to
//!   cost packets,
//! * a statistical chirp-symbol error model (noncoherent `2^SF`-ary
//!   detection, evaluated by a seeded closed-loop draw) that matches the
//!   full sample-level demodulator in `tinysdr-lora` and lets the 20-node
//!   testbed campaign run without per-sample simulation,
//! * TX/RX/sleep supply power for the OTA energy budget (§5.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::units::noise_floor_dbm;

/// SX1276 receiver noise figure, dB. With this value the textbook formula
/// reproduces the datasheet's −126 dBm at SF8/BW125 — the number the
/// paper quotes as its sensitivity target.
pub const NOISE_FIGURE_DB: f64 = 7.0;

/// Demodulation SNR threshold per spreading factor, dB (Semtech SX1276
/// datasheet table 13).
///
/// # Panics
/// Panics for spreading factors outside 6..=12 — the datasheet has no
/// row to answer with.
pub fn required_snr_db(sf: u8) -> f64 {
    match sf {
        6 => -5.0,
        7 => -7.5,
        8 => -10.0,
        9 => -12.5,
        10 => -15.0,
        11 => -17.5,
        12 => -20.0,
        _ => panic!("LoRa SF must be 6..=12, got {sf}"),
    }
}

/// Datasheet-style sensitivity in dBm for a `(SF, BW)` configuration.
pub fn sensitivity_dbm(sf: u8, bw_hz: f64) -> f64 {
    noise_floor_dbm(bw_hz, NOISE_FIGURE_DB) + required_snr_db(sf)
}

/// LoRa modem parameters for airtime and rate computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoRaParams {
    /// Spreading factor 6..=12.
    pub sf: u8,
    /// Bandwidth, Hz.
    pub bw_hz: f64,
    /// Coding-rate denominator 5..=8 (rate = 4/cr_denom). The paper's OTA
    /// link uses "CodingRate = 6", i.e. 4/6.
    pub cr_denom: u8,
    /// Preamble length in symbols (paper OTA uses 8).
    pub preamble_symbols: usize,
    /// Explicit PHY header present.
    pub explicit_header: bool,
    /// Payload CRC-16 appended.
    pub crc_on: bool,
    /// Low-data-rate optimization (mandated for symbol times ≥ 16 ms).
    pub low_dr_opt: bool,
}

impl LoRaParams {
    /// Typical uplink configuration.
    pub fn new(sf: u8, bw_hz: f64, cr_denom: u8) -> Self {
        assert!((6..=12).contains(&sf));
        assert!((5..=8).contains(&cr_denom));
        let symbol_time = (1u32 << sf) as f64 / bw_hz;
        LoRaParams {
            sf,
            bw_hz,
            cr_denom,
            preamble_symbols: 8,
            explicit_header: true,
            crc_on: true,
            low_dr_opt: symbol_time >= 16e-3,
        }
    }

    /// The paper's OTA configuration: SF8, BW 500 kHz, CR 4/6, preamble 8.
    pub fn ota_link() -> Self {
        LoRaParams::new(8, 500e3, 6)
    }

    /// Symbol duration, seconds.
    pub fn symbol_time(&self) -> f64 {
        (1u32 << self.sf) as f64 / self.bw_hz
    }

    /// Number of payload symbols for `payload_len` bytes (Semtech
    /// AN1200.13 formula).
    pub fn payload_symbols(&self, payload_len: usize) -> usize {
        let pl = payload_len as f64;
        let sf = self.sf as f64;
        let ih = if self.explicit_header { 0.0 } else { 1.0 };
        let de = if self.low_dr_opt { 1.0 } else { 0.0 };
        let crc = if self.crc_on { 1.0 } else { 0.0 };
        let cr = (self.cr_denom - 4) as f64;
        let num = 8.0 * pl - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
        let den = 4.0 * (sf - 2.0 * de);
        8 + ((num / den).ceil().max(0.0) as usize) * (cr as usize + 4)
    }

    /// Time on air for a `payload_len`-byte packet, seconds, including
    /// preamble and the 4.25-symbol sync/SFD.
    pub fn airtime_s(&self, payload_len: usize) -> f64 {
        let n = self.preamble_symbols as f64 + 4.25 + self.payload_symbols(payload_len) as f64;
        n * self.symbol_time()
    }

    /// Effective PHY bit rate including coding, bit/s.
    pub fn bitrate_bps(&self) -> f64 {
        self.sf as f64 * (self.bw_hz / (1u32 << self.sf) as f64) * 4.0 / self.cr_denom as f64
    }

    /// Sensitivity for this configuration, dBm.
    pub fn sensitivity_dbm(&self) -> f64 {
        sensitivity_dbm(self.sf, self.bw_hz)
    }
}

/// Statistical chirp-symbol error-rate model for noncoherent `2^SF`-ary
/// detection.
///
/// Model: after dechirp + FFT, the correct bin holds `|√γ + n|²` with
/// `γ = Es/N0 = 2^SF · SNR` and `n ~ CN(0,1)`; the other `2^SF − 1` bins
/// hold i.i.d. unit exponentials whose maximum is drawn by inverse CDF.
/// A symbol errs when the max noise bin beats the signal bin. This is
/// the textbook noncoherent orthogonal-signalling model; the sample-level
/// demodulator in `tinysdr-lora` reproduces it within measurement noise
/// (see that crate's cross-validation test).
pub fn symbol_error_rate(snr_db: f64, sf: u8, trials: u32, seed: u64) -> f64 {
    assert!((6..=12).contains(&sf));
    let m = (1u64 << sf) as f64;
    let gamma = m * crate::units::db_to_lin(snr_db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = 0u32;
    for _ in 0..trials {
        // signal bin: |sqrt(gamma) + CN(0,1)|²
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let re = gamma.sqrt() + r * theta.cos();
        let im = r * theta.sin();
        let z = re * re + im * im;
        // max of (M−1) unit exponentials via inverse CDF
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let v = -(1.0 - u.powf(1.0 / (m - 1.0))).max(1e-300).ln();
        if v > z {
            errors += 1;
        }
    }
    errors as f64 / trials as f64
}

/// Packet error rate at a given RSSI for this model: a packet of
/// `n_symbols` data symbols fails if any symbol errs (no FEC credit —
/// conservative, matching the paper's uncoded chirp-symbol experiments).
pub fn packet_error_rate(
    rssi_dbm: f64,
    params: &LoRaParams,
    payload_len: usize,
    trials: u32,
    seed: u64,
) -> f64 {
    let snr_db = rssi_dbm - noise_floor_dbm(params.bw_hz, NOISE_FIGURE_DB);
    let ser = symbol_error_rate(snr_db, params.sf, trials, seed);
    let n = params.payload_symbols(payload_len) as f64;
    1.0 - (1.0 - ser).powf(n)
}

/// Radio operating state for the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sx1276State {
    /// Register-retention sleep (0.2 µA).
    Sleep,
    /// Standby, crystal on.
    Standby,
    /// Receiving.
    Rx,
    /// Transmitting at the programmed power.
    Tx,
}

/// SX1276 device model (state + power accounting).
#[derive(Debug, Clone)]
pub struct Sx1276 {
    /// Current state.
    pub state: Sx1276State,
    /// Programmed TX power, dBm (up to +14 on the paper's OTA AP; the
    /// chip itself reaches +20 on PA_BOOST).
    pub tx_power_dbm: f64,
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
}

impl Sx1276 {
    /// Power-on defaults: sleep at 915 MHz, 14 dBm.
    pub fn new() -> Self {
        Sx1276 {
            state: Sx1276State::Sleep,
            tx_power_dbm: 14.0,
            freq_hz: 915e6,
        }
    }

    /// Supply power in the current state, mW (3.3 V rail; datasheet
    /// currents: sleep 0.2 µA, standby 1.6 mA, RX 12 mA, TX 29 mA at
    /// +13 dBm scaled by PA efficiency).
    pub fn supply_power_mw(&self) -> f64 {
        match self.state {
            Sx1276State::Sleep => 0.2e-3 * 3.3,
            Sx1276State::Standby => 1.6 * 3.3,
            Sx1276State::Rx => 12.0 * 3.3, // ≈ 40 mW
            Sx1276State::Tx => 33.0 + crate::units::dbm_to_mw(self.tx_power_dbm) / 0.25,
        }
    }
}

impl Default for Sx1276 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_reproduces_datasheet() {
        // the paper's headline: −126 dBm at SF8/BW125
        assert!((sensitivity_dbm(8, 125e3) + 126.0).abs() < 0.5);
        // SF7/BW125 = −123, SF12/BW125 = −136 (datasheet)
        assert!((sensitivity_dbm(7, 125e3) + 123.5).abs() < 1.0);
        assert!((sensitivity_dbm(12, 125e3) + 136.0).abs() < 0.5);
        // BW250 costs 3 dB
        let d = sensitivity_dbm(8, 250e3) - sensitivity_dbm(8, 125e3);
        assert!((d - 3.01).abs() < 0.05);
    }

    #[test]
    fn airtime_reference_values() {
        // SF7 BW125 CR4/5, 8-symbol preamble, 1-byte payload — classic
        // reference ≈ 25.9 ms? Check internal consistency instead:
        let p = LoRaParams::new(7, 125e3, 5);
        let t1 = p.airtime_s(1);
        assert!(t1 > 0.02 && t1 < 0.04, "airtime {t1}");
        // airtime grows with payload
        assert!(p.airtime_s(60) > p.airtime_s(10));
        // SF12 is far slower than SF7
        let p12 = LoRaParams::new(12, 125e3, 5);
        assert!(p12.airtime_s(10) > 10.0 * p.airtime_s(10));
    }

    #[test]
    fn ota_link_rate_matches_paper_math() {
        // SF8 BW500 CR4/6 → 8 · (500e3/256) · 4/6 ≈ 10.4 kbit/s
        let p = LoRaParams::ota_link();
        assert!((p.bitrate_bps() - 10_416.7).abs() < 1.0);
        // 60-byte OTA packet airtime ≈ tens of ms
        let t = p.airtime_s(60);
        assert!(t > 0.03 && t < 0.09, "packet airtime {t}");
    }

    #[test]
    fn payload_symbols_monotone_and_coded() {
        let p5 = LoRaParams::new(8, 125e3, 5);
        let p8 = LoRaParams::new(8, 125e3, 8);
        assert!(p8.payload_symbols(20) > p5.payload_symbols(20));
        assert!(p5.payload_symbols(40) > p5.payload_symbols(20));
    }

    #[test]
    fn ser_transitions_at_required_snr() {
        // At the datasheet threshold the SER is small; 4 dB above, near
        // zero; well below, the channel is unusable. The noncoherent
        // M-ary transition is ~10 dB wide, as in the paper's Fig. 11.
        for sf in [7u8, 8, 10, 12] {
            let thr = required_snr_db(sf);
            let at = symbol_error_rate(thr, sf, 20_000, 1);
            let above = symbol_error_rate(thr + 4.0, sf, 20_000, 2);
            let mid = symbol_error_rate(thr - 6.0, sf, 20_000, 3);
            let below = symbol_error_rate(thr - 12.0, sf, 20_000, 4);
            assert!(at < 0.1, "SF{sf} at threshold: {at}");
            assert!(above < 0.01, "SF{sf} above: {above}");
            assert!(mid > 0.1, "SF{sf} mid-transition: {mid}");
            assert!(below > 0.85, "SF{sf} below: {below}");
        }
    }

    #[test]
    fn ser_monotone_in_snr() {
        let mut prev = 1.0;
        for snr in [-16.0, -13.0, -10.0, -7.0, -4.0] {
            let s = symbol_error_rate(snr, 8, 30_000, 9);
            assert!(s <= prev + 0.02, "SER not monotone at {snr}: {s} > {prev}");
            prev = s;
        }
    }

    #[test]
    fn per_collapses_at_sensitivity() {
        let p = LoRaParams::new(8, 125e3, 5);
        let sens = p.sensitivity_dbm();
        let good = packet_error_rate(sens + 4.0, &p, 3, 20_000, 5);
        let bad = packet_error_rate(sens - 6.0, &p, 3, 20_000, 6);
        assert!(good < 0.1, "PER above sensitivity {good}");
        assert!(bad > 0.9, "PER below sensitivity {bad}");
    }

    #[test]
    fn power_model_values() {
        let mut r = Sx1276::new();
        assert!(r.supply_power_mw() < 0.001); // sleep
        r.state = Sx1276State::Rx;
        assert!((r.supply_power_mw() - 39.6).abs() < 0.1);
        r.state = Sx1276State::Tx;
        r.tx_power_dbm = 14.0;
        // 33 + 25.1/0.25 ≈ 133 mW
        assert!((r.supply_power_mw() - 133.5).abs() < 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = symbol_error_rate(-10.0, 8, 5000, 42);
        let b = symbol_error_rate(-10.0, 8, 5000, 42);
        assert_eq!(a, b);
    }
}

//! Off-the-shelf I/Q radio module catalog (paper Table 2).
//!
//! The paper's §3.1.1 design-space sweep: "We analyze all of the
//! commercially available radio chips that provide baseband I/Q samples
//! and list them in Table 2, where only the AT86RF215 supports all of our
//! requirements." The rows are datasheet facts, reproduced here as data
//! so the `repro table2` harness can print and re-derive the selection.

/// One catalog row: an I/Q radio chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqRadioModule {
    /// Part name.
    pub name: &'static str,
    /// Supported frequency ranges in MHz (up to three).
    pub freq_ranges_mhz: [(f64, f64); 3],
    /// Number of valid entries in `freq_ranges_mhz`.
    pub n_ranges: usize,
    /// RX-mode power consumption, mW.
    pub rx_power_mw: f64,
    /// Unit cost, USD.
    pub cost_usd: f64,
}

impl IqRadioModule {
    /// `true` if the chip can operate at `freq_mhz`.
    pub fn covers(&self, freq_mhz: f64) -> bool {
        self.freq_ranges_mhz[..self.n_ranges]
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&freq_mhz))
    }
}

/// Paper Table 2, verbatim.
pub const IQ_RADIO_CATALOG: &[IqRadioModule] = &[
    IqRadioModule {
        name: "AD9361",
        freq_ranges_mhz: [(70.0, 6000.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 262.0,
        cost_usd: 282.0,
    },
    IqRadioModule {
        name: "AD9363",
        freq_ranges_mhz: [(325.0, 3800.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 262.0,
        cost_usd: 123.0,
    },
    IqRadioModule {
        name: "AD9364",
        freq_ranges_mhz: [(70.0, 6000.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 262.0,
        cost_usd: 210.0,
    },
    IqRadioModule {
        name: "LMS7002M",
        freq_ranges_mhz: [(10.0, 3500.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 378.0,
        cost_usd: 110.0,
    },
    IqRadioModule {
        name: "MAX2831",
        freq_ranges_mhz: [(2400.0, 2500.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 276.0,
        cost_usd: 9.0,
    },
    IqRadioModule {
        name: "SX1257",
        freq_ranges_mhz: [(862.0, 1020.0), (0.0, 0.0), (0.0, 0.0)],
        n_ranges: 1,
        rx_power_mw: 54.0,
        cost_usd: 7.5,
    },
    IqRadioModule {
        name: "AT86RF215",
        freq_ranges_mhz: [(389.5, 510.0), (779.0, 1020.0), (2400.0, 2483.0)],
        n_ranges: 3,
        rx_power_mw: 50.0,
        cost_usd: 5.5,
    },
];

/// Platform requirements from §2 distilled into a predicate: both ISM
/// bands, under the cost cap, minimal power among qualifiers.
pub fn select_radio(max_cost_usd: f64) -> Option<&'static IqRadioModule> {
    IQ_RADIO_CATALOG
        .iter()
        .filter(|m| m.covers(915.0) && m.covers(2440.0) && m.cost_usd <= max_cost_usd)
        .min_by(|a, b| a.rx_power_mw.total_cmp(&b.rx_power_mw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_at86rf215_meets_all_requirements() {
        let sel = select_radio(10.0).expect("a radio must qualify");
        assert_eq!(sel.name, "AT86RF215");
    }

    #[test]
    fn under_cost_cap_selection_is_unique() {
        // wideband SDR chips (AD936x, LMS7002M) also cover both bands but
        // blow the cost budget; under $10 only the AT86RF215 qualifies.
        let both: Vec<_> = IQ_RADIO_CATALOG
            .iter()
            .filter(|m| m.covers(915.0) && m.covers(2440.0) && m.cost_usd <= 10.0)
            .collect();
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].name, "AT86RF215");
    }

    #[test]
    fn coverage_predicate() {
        let at86 = IQ_RADIO_CATALOG.last().unwrap();
        assert!(at86.covers(433.0));
        assert!(at86.covers(915.0));
        assert!(at86.covers(2440.0));
        assert!(!at86.covers(5800.0));
        assert!(!at86.covers(600.0));
        let sx = &IQ_RADIO_CATALOG[5];
        assert!(sx.covers(915.0));
        assert!(!sx.covers(2440.0));
    }

    #[test]
    fn at86rf215_is_lowest_power_and_cost() {
        let at86 = IQ_RADIO_CATALOG.last().unwrap();
        for m in IQ_RADIO_CATALOG.iter() {
            assert!(at86.rx_power_mw <= m.rx_power_mw);
            assert!(at86.cost_usd <= m.cost_usd);
        }
    }
}

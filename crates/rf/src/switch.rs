//! RF routing: the ADG904 SP4T switch and the two baluns.
//!
//! The 900 MHz single-ended signal "must be shared between the backbone
//! radio's two separate RF paths for transmit and receive and
//! AT86RF215's 900 MHz single-ended signal. We choose between them using
//! a ADG904 SP4T RF switch" (paper §3.2.3). The 2.4 GHz path goes through
//! the 2450FB15A050E balun; the 900 MHz path through the 0896BM15E0025E.

/// The four throw positions of the ADG904 on the 900 MHz path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPort {
    /// AT86RF215 900 MHz I/Q path.
    IqRadio,
    /// SX1276 backbone transmit path.
    BackboneTx,
    /// SX1276 backbone receive path.
    BackboneRx,
    /// Unused/terminated port.
    Terminated,
}

/// ADG904 SP4T absorptive RF switch model.
#[derive(Debug, Clone)]
pub struct RfSwitch {
    selected: SwitchPort,
    /// Number of switch operations (wear/telemetry).
    pub switch_count: u64,
}

/// Insertion loss through the ADG904, dB (datasheet ≈0.8 dB at 1 GHz).
pub const SWITCH_INSERTION_LOSS_DB: f64 = 0.8;
/// Isolation to unselected ports, dB.
pub const SWITCH_ISOLATION_DB: f64 = 37.0;

impl RfSwitch {
    /// Power-on default: I/Q radio connected.
    pub fn new() -> Self {
        RfSwitch {
            selected: SwitchPort::IqRadio,
            switch_count: 0,
        }
    }

    /// Currently selected port.
    pub fn selected(&self) -> SwitchPort {
        self.selected
    }

    /// Select a port (near-instant; nanoseconds in hardware).
    pub fn select(&mut self, port: SwitchPort) {
        if port != self.selected {
            self.switch_count += 1;
            self.selected = port;
        }
    }

    /// Gain (negative dB) seen from the antenna to `port`.
    pub fn gain_to_db(&self, port: SwitchPort) -> f64 {
        if port == self.selected {
            -SWITCH_INSERTION_LOSS_DB
        } else {
            -SWITCH_ISOLATION_DB
        }
    }
}

impl Default for RfSwitch {
    fn default() -> Self {
        Self::new()
    }
}

/// Balun model: differential ⇄ single-ended conversion with insertion
/// loss.
#[derive(Debug, Clone, Copy)]
pub struct Balun {
    /// Part identity for documentation.
    pub part: &'static str,
    /// Insertion loss, dB.
    pub insertion_loss_db: f64,
}

/// The 2.4 GHz balun+filter (Johanson 2450FB15A050E).
pub const BALUN_2G4: Balun = Balun {
    part: "2450FB15A050E",
    insertion_loss_db: 1.1,
};
/// The 900 MHz impedance-matched balun + LPF (Johanson 0896BM15E0025E).
pub const BALUN_900: Balun = Balun {
    part: "0896BM15E0025E",
    insertion_loss_db: 0.9,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_connects_iq_radio() {
        let sw = RfSwitch::new();
        assert_eq!(sw.selected(), SwitchPort::IqRadio);
    }

    #[test]
    fn selection_and_counting() {
        let mut sw = RfSwitch::new();
        sw.select(SwitchPort::BackboneRx);
        sw.select(SwitchPort::BackboneRx); // no-op
        sw.select(SwitchPort::BackboneTx);
        assert_eq!(sw.switch_count, 2);
        assert_eq!(sw.selected(), SwitchPort::BackboneTx);
    }

    #[test]
    fn selected_port_low_loss_others_isolated() {
        let mut sw = RfSwitch::new();
        sw.select(SwitchPort::BackboneRx);
        assert_eq!(
            sw.gain_to_db(SwitchPort::BackboneRx),
            -SWITCH_INSERTION_LOSS_DB
        );
        assert_eq!(sw.gain_to_db(SwitchPort::IqRadio), -SWITCH_ISOLATION_DB);
    }

    #[test]
    fn balun_constants() {
        const { assert!(BALUN_2G4.insertion_loss_db > 0.0) };
        const { assert!(BALUN_900.insertion_loss_db > 0.0) };
        assert_eq!(BALUN_900.part, "0896BM15E0025E");
    }
}

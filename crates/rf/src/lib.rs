//! # tinysdr-rf
//!
//! RF substrate for the `tinysdr` workspace: everything between the
//! FPGA's sample interface and the antenna, simulated.
//!
//! The TinySDR board's RF chain (paper §3.1–3.2) is:
//!
//! ```text
//!  FPGA ⇄ LVDS I/Q serdes ⇄ AT86RF215 I/Q radio ⇄ balun ⇄ front-end
//!        (Fig. 4 word format)                         (PA/LNA/bypass)
//!                                                        ⇄ RF switch ⇄ antenna
//!  MCU  ⇄ SPI            ⇄ SX1276 backbone radio  ⇄ (shared 900 MHz path)
//! ```
//!
//! Modules:
//!
//! * [`units`] — dBm/dB/milliwatt conversions and the thermal noise floor.
//! * [`channel`] — calibrated AWGN at a target RSSI, carrier frequency
//!   offset, timing offset, and smoltcp-style fault injection for
//!   packet-level links.
//! * [`impairments`] — composable impairment chain (CFO, fractional
//!   timing offset, clock drift, I/Q imbalance, phase noise, block
//!   Rayleigh fading, ADC quantization) ending in calibrated AWGN —
//!   the channel model behind the PHY conformance waterfalls.
//! * [`phy`] — the [`phy::PhyModem`] trait and [`phy::PhyRegistry`]:
//!   the protocol-programmability seam. Workload crates (`lora`, `ble`,
//!   `zigbee`) implement it; the conformance waterfalls, the campus
//!   testbed and the device consume `&dyn PhyModem`.
//! * [`pathloss`] — free-space and log-distance (shadowed) propagation for
//!   the campus testbed of Fig. 7.
//! * [`lvds`] — bit-exact implementation of the 32-bit I/Q word of Fig. 4
//!   and its DDR serialization at 64 MHz (128 Mbit/s, 4 Mword/s).
//! * [`at86rf215`] — behavioural model of the I/Q radio chip: band plan,
//!   state machine with measured transition times (Table 4), 13-bit
//!   converters, TX/RX power draw (calibrated to Fig. 9), AGC.
//! * [`frontend`] — SE2435L (900 MHz) and SKY66112 (2.4 GHz) front-end
//!   modules with PA/LNA/bypass paths and sleep currents.
//! * [`sx1276`] — the Semtech backbone radio model: datasheet sensitivity
//!   per (SF, BW), TX/RX power, and a reference receiver used as the
//!   comparator in Fig. 10.
//! * [`switch`] — ADG904 SP4T RF switch and the two baluns, as loss/
//!   routing elements.
//! * [`catalog`] — Table 2 (off-the-shelf I/Q radio modules), as data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod at86rf215;
pub mod catalog;
pub mod channel;
pub mod frontend;
pub mod impairments;
pub mod lvds;
pub mod pathloss;
pub mod phy;
pub mod switch;
pub mod sx1276;
pub mod units;

//! Power and ratio units: dBm, dB, milliwatts, and the thermal noise
//! floor.
//!
//! Internal convention: **baseband sample power is measured in
//! milliwatts** — a signal whose mean `|z|²` is `m` represents `m` mW at
//! the antenna reference plane. This makes RSSI sweeps (the paper's
//! Figs. 10–12, 15) a matter of scaling sample buffers.

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Reference temperature for noise calculations (K).
pub const T0_KELVIN: f64 = 290.0;

/// Thermal noise power spectral density at 290 K, in dBm/Hz (≈ −173.98).
pub const THERMAL_NOISE_DBM_HZ: f64 = -173.975;

/// Convert dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert milliwatts to dBm. Zero or negative power maps to −∞-ish
/// (−300 dBm) to keep arithmetic total.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        -300.0
    } else {
        10.0 * mw.log10()
    }
}

/// Convert a dB ratio to linear.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear ratio to dB.
#[inline]
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        -300.0
    } else {
        10.0 * lin.log10()
    }
}

/// Thermal noise power in dBm over `bw_hz` of bandwidth:
/// `−174 + 10·log10(BW)`.
#[inline]
pub fn thermal_noise_dbm(bw_hz: f64) -> f64 {
    THERMAL_NOISE_DBM_HZ + 10.0 * bw_hz.log10()
}

/// Receiver noise floor in dBm: thermal noise over `bw_hz` plus the noise
/// figure.
#[inline]
pub fn noise_floor_dbm(bw_hz: f64, noise_figure_db: f64) -> f64 {
    thermal_noise_dbm(bw_hz) + noise_figure_db
}

/// Milliwatts → watts.
#[inline]
pub fn mw_to_w(mw: f64) -> f64 {
    mw / 1000.0
}

/// Energy in millijoules from power in milliwatts over `seconds`.
#[inline]
pub fn mj_from_mw(mw: f64, seconds: f64) -> f64 {
    mw * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for dbm in [-126.0, -94.0, 0.0, 14.0, 30.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn reference_points() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((dbm_to_mw(14.0) - 25.1189).abs() < 1e-3); // radio max TX
        assert!((db_to_lin(3.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn zero_power_is_floor() {
        assert_eq!(mw_to_dbm(0.0), -300.0);
        assert_eq!(lin_to_db(-1.0), -300.0);
    }

    #[test]
    fn thermal_noise_landmarks() {
        // 125 kHz LoRa channel: ≈ −123 dBm
        assert!((thermal_noise_dbm(125e3) + 123.0).abs() < 0.2);
        // 500 kHz: ≈ −117 dBm
        assert!((thermal_noise_dbm(500e3) + 117.0).abs() < 0.2);
        // 1 MHz BLE-ish: ≈ −114 dBm
        assert!((thermal_noise_dbm(1e6) + 114.0).abs() < 0.2);
    }

    #[test]
    fn lora_sensitivity_from_first_principles() {
        // Semtech SX1276 sensitivity for SF8/BW125 is −126 dBm; with
        // NF = 7 dB and required SNR −10 dB the formula reproduces it.
        let sens = noise_floor_dbm(125e3, 7.0) - 10.0;
        assert!((sens + 126.0).abs() < 0.5, "sens {sens}");
    }

    #[test]
    fn thermal_psd_constant_matches_kt() {
        let kt_mw_hz = BOLTZMANN * T0_KELVIN * 1000.0;
        let dbm_hz = mw_to_dbm(kt_mw_hz);
        assert!((dbm_hz - THERMAL_NOISE_DBM_HZ).abs() < 0.05);
    }

    #[test]
    fn energy_helper() {
        assert_eq!(mj_from_mw(100.0, 2.0), 200.0);
    }
}

//! Bit-exact LVDS I/Q word interface (paper Fig. 4 and §3.2.1).
//!
//! The AT86RF215 streams 32-bit serial words at 4 Mword/s:
//!
//! ```text
//!  bit 31 30 | 29 .. 17 | 16  | 15 14 | 13 .. 1 | 0
//!     I_SYNC |  I_DATA  | CTRL| Q_SYNC | Q_DATA  | CTRL
//!      (10)  | 13 bits  |     |  (01)  | 13 bits |
//! ```
//!
//! "Each data word starts with the I_SYNC pattern which indicates the
//! start of the I sample which we use for synchronization." The required
//! 128 Mbit/s is carried on a 64 MHz DDR clock. The FPGA implements an
//! *I/Q deserializer* that samples both clock edges, hunts for I_SYNC /
//! Q_SYNC, and presents 13-bit parallel I/Q — this module is that block,
//! plus its TX-side dual (the *I/Q serializer* built from the pseudo
//! dual-edge flip-flop design the paper cites).

use tinysdr_dsp::complex::Complex;
use tinysdr_dsp::fixed::Quantizer;

/// LVDS bit clock (DDR): 64 MHz × 2 edges = 128 Mbit/s.
pub const LVDS_CLOCK_HZ: f64 = 64e6;
/// Serial bit rate over the differential pair.
pub const LVDS_BIT_RATE: f64 = 128e6;
/// Bits per I/Q word.
pub const BITS_PER_WORD: usize = 32;
/// Word (sample) rate: 4 Mword/s at 4 MHz sampling.
pub const WORD_RATE: f64 = LVDS_BIT_RATE / BITS_PER_WORD as f64;

/// Two-bit synchronization pattern opening the I half-word.
pub const I_SYNC: u32 = 0b10;
/// Two-bit synchronization pattern opening the Q half-word.
pub const Q_SYNC: u32 = 0b01;

/// A decoded I/Q word: 13-bit signed I and Q plus the two control bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqWord {
    /// In-phase sample, sign-extended from 13 bits.
    pub i: i16,
    /// Quadrature sample, sign-extended from 13 bits.
    pub q: i16,
    /// Control bit following I_DATA (radio status signalling).
    pub ctrl_i: bool,
    /// Control bit following Q_DATA.
    pub ctrl_q: bool,
}

/// Errors from the word codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LvdsError {
    /// The I_SYNC field did not match.
    BadISync,
    /// The Q_SYNC field did not match.
    BadQSync,
    /// A 13-bit field overflowed during encode.
    Overflow,
}

impl std::fmt::Display for LvdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LvdsError::BadISync => write!(f, "I_SYNC pattern mismatch"),
            LvdsError::BadQSync => write!(f, "Q_SYNC pattern mismatch"),
            LvdsError::Overflow => write!(f, "13-bit I/Q field overflow"),
        }
    }
}

impl std::error::Error for LvdsError {}

const DATA_MASK: i32 = 0x1FFF; // 13 bits
const DATA_MAX: i16 = 4095;
const DATA_MIN: i16 = -4096;

impl IqWord {
    /// Build a word from 13-bit signed I/Q values with control bits clear.
    ///
    /// # Errors
    /// Returns [`LvdsError::Overflow`] if either value exceeds 13 signed
    /// bits.
    pub fn new(i: i16, q: i16) -> Result<Self, LvdsError> {
        if !(DATA_MIN..=DATA_MAX).contains(&i) || !(DATA_MIN..=DATA_MAX).contains(&q) {
            return Err(LvdsError::Overflow);
        }
        Ok(IqWord {
            i,
            q,
            ctrl_i: false,
            ctrl_q: false,
        })
    }

    /// Pack into the 32-bit wire format of Fig. 4.
    pub fn encode(&self) -> u32 {
        let i13 = (self.i as i32 & DATA_MASK) as u32;
        let q13 = (self.q as i32 & DATA_MASK) as u32;
        (I_SYNC << 30)
            | (i13 << 17)
            | ((self.ctrl_i as u32) << 16)
            | (Q_SYNC << 14)
            | (q13 << 1)
            | (self.ctrl_q as u32)
    }

    /// Unpack from the 32-bit wire format, verifying both sync patterns.
    ///
    /// # Errors
    /// Returns a sync error if either pattern is wrong.
    pub fn decode(word: u32) -> Result<Self, LvdsError> {
        if (word >> 30) & 0b11 != I_SYNC {
            return Err(LvdsError::BadISync);
        }
        if (word >> 14) & 0b11 != Q_SYNC {
            return Err(LvdsError::BadQSync);
        }
        let sign_extend = |v: u32| -> i16 {
            // 13-bit two's complement → i16
            let v = v & DATA_MASK as u32;
            if v & 0x1000 != 0 {
                (v as i32 - 0x2000) as i16
            } else {
                v as i16
            }
        };
        Ok(IqWord {
            i: sign_extend(word >> 17),
            q: sign_extend(word >> 1),
            ctrl_i: (word >> 16) & 1 != 0,
            ctrl_q: word & 1 != 0,
        })
    }
}

/// TX-side serializer: I/Q samples → LVDS bit stream (MSB first).
///
/// This is the FPGA's "I/Q Serializer" fed by the modulators; the 64 MHz
/// PLL clock and dual-edge flip-flop are abstracted into the flat bit
/// vector (one entry per DDR half-cycle).
#[derive(Debug)]
pub struct Serializer {
    quantizer: Quantizer,
}

impl Default for Serializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Serializer {
    /// Serializer with the radio's 13-bit quantizer.
    pub fn new() -> Self {
        Serializer {
            quantizer: Quantizer::AT86RF215,
        }
    }

    /// Serialize complex samples (full scale ±1.0) into bits.
    pub fn serialize(&self, samples: &[Complex]) -> Vec<bool> {
        let mut bits = Vec::with_capacity(samples.len() * BITS_PER_WORD);
        for &z in samples {
            let (i, q) = self.quantizer.quantize_iq(z);
            let word = IqWord::new(i as i16, q as i16)
                // lint: allow(unjustified-panic, quantizer clamps to 13 bits so IqWord::new cannot fail)
                .expect("quantizer output always fits 13 bits")
                .encode();
            for b in (0..32).rev() {
                bits.push((word >> b) & 1 != 0);
            }
        }
        bits
    }

    /// Wire time to send `n_samples` at the fixed word rate, in seconds.
    pub fn airtime_s(n_samples: usize) -> f64 {
        n_samples as f64 / WORD_RATE
    }
}

/// RX-side streaming deserializer with sync hunting.
///
/// Feed bits in any chunking via [`Deserializer::push_bits`]; decoded
/// samples accumulate in order. The block hunts for bit alignment using
/// the I_SYNC/Q_SYNC patterns of two consecutive words before declaring
/// lock, and re-hunts if sync is lost mid-stream.
#[derive(Debug)]
pub struct Deserializer {
    window: u64,
    bits_in_window: usize,
    locked: bool,
    /// Words decoded since creation.
    pub words_out: u64,
    /// Number of times lock was lost after having been acquired.
    pub sync_losses: u64,
    quantizer: Quantizer,
    out: Vec<Complex>,
}

impl Default for Deserializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Deserializer {
    /// Fresh, unlocked deserializer.
    pub fn new() -> Self {
        Deserializer {
            window: 0,
            bits_in_window: 0,
            locked: false,
            words_out: 0,
            sync_losses: 0,
            quantizer: Quantizer::AT86RF215,
            out: Vec::new(),
        }
    }

    /// `true` once word alignment has been acquired.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Push a slice of bits; decoded samples are appended internally.
    pub fn push_bits(&mut self, bits: &[bool]) {
        for &b in bits {
            self.window = (self.window << 1) | b as u64;
            self.bits_in_window = (self.bits_in_window + 1).min(64);
            if !self.locked {
                // need two consecutive plausible words (64 bits) to lock
                if self.bits_in_window == 64 && Self::plausible(self.window) {
                    // consume the older word now, keep the newer 32 bits
                    let w0 = (self.window >> 32) as u32;
                    self.emit(w0);
                    self.locked = true;
                    self.bits_in_window = 32;
                }
            } else if self.bits_in_window == 64 {
                let w0 = (self.window >> 32) as u32;
                match IqWord::decode(w0) {
                    Ok(_) => {
                        self.emit(w0);
                        self.bits_in_window = 32;
                    }
                    Err(_) => {
                        self.locked = false;
                        self.sync_losses += 1;
                        // keep hunting with the current window contents
                    }
                }
            }
        }
    }

    fn plausible(window: u64) -> bool {
        let w0 = (window >> 32) as u32;
        let w1 = window as u32;
        IqWord::decode(w0).is_ok() && IqWord::decode(w1).is_ok()
    }

    fn emit(&mut self, word: u32) {
        if let Ok(iq) = IqWord::decode(word) {
            self.out.push(Complex::new(
                self.quantizer.dequantize(iq.i as i32),
                self.quantizer.dequantize(iq.q as i32),
            ));
            self.words_out += 1;
        }
    }

    /// Flush: decode the final buffered word if one is pending, then
    /// return all decoded samples.
    pub fn finish(mut self) -> Vec<Complex> {
        if self.locked && self.bits_in_window >= 32 {
            let w = (self.window >> (self.bits_in_window - 32)) as u32;
            self.emit(w);
        }
        self.out
    }

    /// Borrow the samples decoded so far.
    pub fn samples(&self) -> &[Complex] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinysdr_dsp::nco::ideal_tone;

    #[test]
    fn word_encode_decode_round_trip() {
        for (i, q) in [(0i16, 0i16), (4095, -4096), (-1, 1), (1234, -987)] {
            let w = IqWord::new(i, q).unwrap();
            let enc = w.encode();
            let dec = IqWord::decode(enc).unwrap();
            assert_eq!(dec.i, i);
            assert_eq!(dec.q, q);
        }
    }

    #[test]
    fn sync_fields_present() {
        let w = IqWord::new(0, 0).unwrap().encode();
        assert_eq!(w >> 30, I_SYNC);
        assert_eq!((w >> 14) & 0b11, Q_SYNC);
    }

    #[test]
    fn decode_rejects_bad_sync() {
        let good = IqWord::new(100, -100).unwrap().encode();
        assert_eq!(IqWord::decode(good ^ (1 << 31)), Err(LvdsError::BadISync));
        assert_eq!(IqWord::decode(good ^ (1 << 14)), Err(LvdsError::BadQSync));
    }

    #[test]
    fn overflow_rejected() {
        assert_eq!(IqWord::new(4096, 0), Err(LvdsError::Overflow));
        assert_eq!(IqWord::new(0, -4097), Err(LvdsError::Overflow));
    }

    #[test]
    fn control_bits_travel() {
        let mut w = IqWord::new(5, -5).unwrap();
        w.ctrl_i = true;
        let dec = IqWord::decode(w.encode()).unwrap();
        assert!(dec.ctrl_i && !dec.ctrl_q);
    }

    #[test]
    fn serdes_round_trip_aligned() {
        let tone = ideal_tone(100e3, 4e6, 256);
        let ser = Serializer::new();
        let bits = ser.serialize(&tone);
        assert_eq!(bits.len(), 256 * 32);
        let mut des = Deserializer::new();
        des.push_bits(&bits);
        let out = des.finish();
        assert_eq!(out.len(), 256);
        for (a, b) in out.iter().zip(&tone) {
            assert!((*a - *b).abs() < 1e-3, "sample error {}", (*a - *b).abs());
        }
    }

    #[test]
    fn deserializer_hunts_misaligned_stream() {
        let tone = ideal_tone(50e3, 4e6, 64);
        let bits = Serializer::new().serialize(&tone);
        // prepend 13 garbage bits that cannot form a word
        let mut stream = vec![false; 13];
        stream.extend_from_slice(&bits);
        let mut des = Deserializer::new();
        des.push_bits(&stream);
        assert!(des.is_locked());
        let out = des.finish();
        // all 64 samples recovered (lock happens within the first word)
        assert!(out.len() >= 63, "only {} samples", out.len());
    }

    #[test]
    fn deserializer_survives_chunked_input() {
        let tone = ideal_tone(200e3, 4e6, 128);
        let bits = Serializer::new().serialize(&tone);
        let mut des = Deserializer::new();
        for chunk in bits.chunks(7) {
            des.push_bits(chunk);
        }
        let out = des.finish();
        assert_eq!(out.len(), 128);
    }

    #[test]
    fn sync_loss_detected_and_recovered() {
        let tone = ideal_tone(10e3, 4e6, 100);
        let mut bits = Serializer::new().serialize(&tone);
        // corrupt one sync bit mid-stream (word 50, bit 31)
        let idx = 50 * 32;
        bits[idx] = !bits[idx];
        let mut des = Deserializer::new();
        des.push_bits(&bits);
        let out = des.finish();
        assert!(
            des_samples_close(&out, &tone),
            "recovered {} samples",
            out.len()
        );
    }

    fn des_samples_close(out: &[Complex], reference: &[Complex]) -> bool {
        // at least 95% of samples must be recovered
        out.len() >= reference.len() * 95 / 100
    }

    #[test]
    fn rates_match_paper() {
        assert_eq!(BITS_PER_WORD, 32);
        assert!((WORD_RATE - 4e6).abs() < 1.0);
        assert!((LVDS_BIT_RATE - 128e6).abs() < 1.0);
        // 4 MHz sampling occupies exactly the wire rate
        assert!((Serializer::airtime_s(4_000_000) - 1.0).abs() < 1e-9);
    }
}

//! The PHY modem abstraction: one trait for every protocol TinySDR
//! hosts.
//!
//! The paper's core claim is *protocol programmability* — "tinySDR can
//! be programmed to support any IoT protocol" (§2) — yet a codebase
//! that hard-codes LoRa and BLE everywhere cannot demonstrate it. This
//! module is the seam that makes the claim structural: a [`PhyModem`]
//! trait capturing what every modem must provide (a modulator, a
//! demodulator with exact error accounting, and the metadata the
//! conformance harness and the device need — sample rate, occupied
//! bandwidth, receiver noise figure, a published sensitivity anchor),
//! plus a type-erased [`PhyRegistry`] so sweeps, testbeds and devices
//! can be written once, against `&dyn PhyModem`, and gain every new
//! protocol for free.
//!
//! Layering: this lives in `tinysdr-rf`, *below* the workload crates
//! (`lora`, `ble`, `zigbee`), which implement the trait; `bench`,
//! `core` and `ota` consume it. See DESIGN.md.

use tinysdr_dsp::complex::Complex;

/// Exact error accounting in a PHY's native unit (chirp symbols, bits,
/// packets, DSSS symbols, …). Counts, not rates, so points can be
/// merged and Wilson intervals computed without precision loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCount {
    /// Units received in error (including units the receiver lost).
    pub errors: u64,
    /// Units transmitted.
    pub trials: u64,
}

impl ErrorCount {
    /// The zero count.
    pub const ZERO: ErrorCount = ErrorCount {
        errors: 0,
        trials: 0,
    };

    /// New count.
    pub fn new(errors: u64, trials: u64) -> Self {
        ErrorCount { errors, trials }
    }

    /// Error rate in `[0, 1]` (0 for an empty count).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }

    /// `true` when every transmitted unit came back intact.
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }
}

impl std::ops::AddAssign for ErrorCount {
    fn add_assign(&mut self, rhs: ErrorCount) {
        self.errors += rhs.errors;
        self.trials += rhs.trials;
    }
}

impl std::ops::Add for ErrorCount {
    type Output = ErrorCount;
    fn add(mut self, rhs: ErrorCount) -> ErrorCount {
        self += rhs;
        self
    }
}

/// What a [`PhyModem`] recovered from a capture: the decoded bytes, the
/// raw pre-decoding units, and frame validity where the PHY frames.
///
/// The result deliberately carries *both* views so error accounting can
/// happen in the PHY's native unit (via [`PhyModem::count_errors`])
/// while callers that only want payload bytes read `bytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemodResult {
    /// Recovered frame bytes (best effort; possibly truncated when the
    /// capture was).
    pub bytes: Vec<u8>,
    /// Raw demodulated units before byte packing — chirp symbols for
    /// LoRa, bits (0/1) for GFSK, 4-bit DSSS symbols for O-QPSK.
    pub units: Vec<u16>,
    /// `Some(valid)` for framed PHYs (CRC/header verdict), `None` for
    /// unframed symbol/bit streams.
    pub frame_ok: Option<bool>,
}

impl DemodResult {
    /// An unframed stream result; `bytes` are the repacked units.
    pub fn stream(bytes: Vec<u8>, units: Vec<u16>) -> Self {
        DemodResult {
            bytes,
            units,
            frame_ok: None,
        }
    }

    /// A framed result with an explicit validity verdict.
    pub fn framed(bytes: Vec<u8>, units: Vec<u16>, ok: bool) -> Self {
        DemodResult {
            bytes,
            units,
            frame_ok: Some(ok),
        }
    }

    /// An empty result (nothing recovered — e.g. no frame found).
    pub fn empty() -> Self {
        DemodResult {
            bytes: Vec::new(),
            units: Vec::new(),
            frame_ok: Some(false),
        }
    }
}

/// A full PHY modem: everything the conformance harness, the campus
/// testbed and the device need to host one protocol.
///
/// Implementors are *stateless in the data* — `modulate` and
/// `demodulate` take `&self` — so one boxed modem can be shared
/// read-only across sweep shards (the trait requires `Send + Sync`).
///
/// # Contract
///
/// * `demodulate(modulate(frame))` over a clean channel must recover the
///   frame losslessly: `count_errors(frame, …)` returns zero errors
///   (asserted per registered PHY by the registry round-trip property
///   in `tests/phy_registry.rs`).
/// * `count_errors` accounts in the PHY's **native unit** and counts
///   units the receiver lost (truncated captures) as errors.
/// * Metadata is constant for the lifetime of the modem.
pub trait PhyModem: std::fmt::Debug + Send + Sync {
    /// Human-readable label; the report key and registry key.
    fn label(&self) -> String;

    /// Baseband I/Q sample rate produced/consumed, Hz.
    fn sample_rate_hz(&self) -> f64;

    /// Occupied RF bandwidth, Hz.
    fn occupied_bw_hz(&self) -> f64;

    /// Receiver noise figure of the modeled front end, dB.
    fn noise_figure_db(&self) -> f64;

    /// Published sensitivity anchor, dBm — the paper/datasheet number
    /// the measured waterfall is compared against.
    fn sensitivity_anchor_dbm(&self) -> f64;

    /// Carrier frequency the protocol runs at, Hz (drives the device's
    /// radio setup).
    fn center_frequency_hz(&self) -> f64;

    /// Modulate a byte frame into baseband I/Q samples.
    fn modulate(&self, frame: &[u8]) -> Vec<Complex>;

    /// Demodulate a capture into recovered bytes plus raw units.
    fn demodulate(&self, iq: &[Complex]) -> DemodResult;

    /// Error accounting against the transmitted frame, in the PHY's
    /// native unit. The default compares the recovered bytes bit by
    /// bit; implementors with a coarser or finer unit (chirp symbols,
    /// whole packets) override it.
    fn count_errors(&self, tx_frame: &[u8], rx: &DemodResult) -> ErrorCount {
        bit_errors_between(tx_frame, &rx.bytes)
    }

    /// Time on air of a byte frame, seconds. The default derives it
    /// from the modulated waveform length — exact for any implementor —
    /// but a PHY with an authoritative closed form (LoRa's AN1200.13
    /// airtime formula) may override.
    fn airtime_s(&self, frame: &[u8]) -> f64 {
        self.modulate(frame).len() as f64 / self.sample_rate_hz()
    }

    /// Time on air of a `frame_len`-byte frame, seconds — for callers
    /// (like the OTA session engine) that price packets by length
    /// without a concrete payload. Air time is content-independent for
    /// every constant-envelope PHY here; the default modulates a zero
    /// frame, and closed-form implementors override allocation-free.
    fn airtime_len_s(&self, frame_len: usize) -> f64 {
        self.airtime_s(&vec![0u8; frame_len])
    }

    /// Modulate a batch of frames into `out` (resized to match;
    /// existing inner vectors keep their capacity). The default simply
    /// loops `modulate`; modems with per-call setup cost (chirp tables,
    /// pulse-shaping filters, FFT plans) override to share scratch
    /// buffers across the batch. Overrides must stay **bit-identical**
    /// to the default: batching is a performance seam, never a
    /// semantics seam.
    fn modulate_batch(&self, frames: &[&[u8]], out: &mut Vec<Vec<Complex>>) {
        out.resize_with(frames.len(), Vec::new);
        for (frame, wave) in frames.iter().zip(out.iter_mut()) {
            *wave = self.modulate(frame);
        }
    }

    /// Demodulate a batch of captures. The default loops `demodulate`;
    /// overrides reuse demodulator scratch across the batch and must be
    /// bit-identical to the default.
    fn demodulate_batch(&self, waveforms: &[&[Complex]]) -> Vec<DemodResult> {
        waveforms.iter().map(|iq| self.demodulate(iq)).collect()
    }

    /// Clone into a new box (object-safe `Clone`; lets registries and
    /// sweep configs be cloned).
    fn clone_box(&self) -> Box<dyn PhyModem>;
}

impl Clone for Box<dyn PhyModem> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Bitwise error count between a transmitted and a recovered byte
/// string: flipped bits in the overlap plus 8 errors per transmitted
/// byte the receiver never produced (a truncated capture lost them).
/// Surplus received bytes are ignored — they correspond to nothing
/// that was sent.
pub fn bit_errors_between(tx: &[u8], rx: &[u8]) -> ErrorCount {
    let n = tx.len().min(rx.len());
    let flipped: u64 = tx[..n]
        .iter()
        .zip(&rx[..n])
        .map(|(a, b)| (a ^ b).count_ones() as u64)
        .sum();
    let lost = 8 * (tx.len() - n) as u64;
    ErrorCount::new(flipped + lost, 8 * tx.len() as u64)
}

/// Unit-wise error count between transmitted and received unit streams
/// (symbols, bits): mismatches in the overlap plus one error per lost
/// unit; `trials = tx.len()`.
pub fn unit_errors_between(tx: &[u16], rx: &[u16]) -> ErrorCount {
    let n = tx.len().min(rx.len());
    let wrong = tx[..n].iter().zip(&rx[..n]).filter(|(a, b)| a != b).count() as u64;
    let lost = (tx.len() - n) as u64;
    ErrorCount::new(wrong + lost, tx.len() as u64)
}

/// A type-erased registry of PHY modems.
///
/// Iteration order **is** registration order — the determinism contract
/// of the sweep and campaign engines keys randomness by index, so the
/// registry must never reorder behind a caller's back. Lookup is by
/// [`PhyModem::label`]; registering a duplicate label panics (two
/// modems answering to one key would make keyed reports ambiguous).
#[derive(Debug, Clone, Default)]
pub struct PhyRegistry {
    entries: Vec<Box<dyn PhyModem>>,
}

impl PhyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PhyRegistry {
            entries: Vec::new(),
        }
    }

    /// Register a modem at the end of the iteration order.
    ///
    /// # Panics
    /// Panics if a modem with the same label is already registered.
    pub fn register(&mut self, phy: Box<dyn PhyModem>) -> &mut Self {
        let label = phy.label();
        assert!(
            self.get(&label).is_none(),
            "PHY label {label:?} already registered"
        );
        self.entries.push(phy);
        self
    }

    /// Keyed lookup by label.
    pub fn get(&self, label: &str) -> Option<&dyn PhyModem> {
        self.entries
            .iter()
            .find(|p| p.label() == label)
            .map(|p| p.as_ref())
    }

    /// All labels, in registration order.
    pub fn labels(&self) -> Vec<String> {
        self.entries.iter().map(|p| p.label()).collect()
    }

    /// Iterate the modems in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn PhyModem> {
        self.entries.iter().map(|p| p.as_ref())
    }

    /// Number of registered modems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback "modem" for registry/trait plumbing tests: BPSK at one
    /// sample per bit.
    #[derive(Debug, Clone)]
    struct TestPhy {
        name: &'static str,
    }

    impl PhyModem for TestPhy {
        fn label(&self) -> String {
            self.name.to_string()
        }
        fn sample_rate_hz(&self) -> f64 {
            8.0
        }
        fn occupied_bw_hz(&self) -> f64 {
            8.0
        }
        fn noise_figure_db(&self) -> f64 {
            0.0
        }
        fn sensitivity_anchor_dbm(&self) -> f64 {
            -100.0
        }
        fn center_frequency_hz(&self) -> f64 {
            915e6
        }
        fn modulate(&self, frame: &[u8]) -> Vec<Complex> {
            frame
                .iter()
                .flat_map(|b| (0..8).map(move |i| (b >> i) & 1))
                .map(|bit| Complex::new(if bit == 1 { 1.0 } else { -1.0 }, 0.0))
                .collect()
        }
        fn demodulate(&self, iq: &[Complex]) -> DemodResult {
            let units: Vec<u16> = iq.iter().map(|z| u16::from(z.re > 0.0)).collect();
            let bytes = units
                .chunks(8)
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i))
                })
                .collect();
            DemodResult::stream(bytes, units)
        }
        fn clone_box(&self) -> Box<dyn PhyModem> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn default_count_errors_is_bitwise() {
        let phy = TestPhy { name: "bpsk" };
        let tx = [0xA5u8, 0x3C];
        let rx = phy.demodulate(&phy.modulate(&tx));
        let c = phy.count_errors(&tx, &rx);
        assert_eq!(c, ErrorCount::new(0, 16));
        assert!(c.is_clean());
        // a truncated capture loses whole bytes as bit errors
        let short = phy.demodulate(&phy.modulate(&tx)[..8]);
        assert_eq!(phy.count_errors(&tx, &short), ErrorCount::new(8, 16));
    }

    #[test]
    fn default_airtime_is_waveform_length_over_fs() {
        let phy = TestPhy { name: "bpsk" };
        // 2 bytes = 16 samples at 8 S/s
        assert!((phy.airtime_s(&[0u8; 2]) - 2.0).abs() < 1e-12);
        // the length-only route agrees with the frame route by default
        assert!((phy.airtime_len_s(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bit_errors_between_counts_flips_and_losses() {
        assert_eq!(bit_errors_between(&[0xFF], &[0x0F]), ErrorCount::new(4, 8));
        assert_eq!(
            bit_errors_between(&[0xFF, 0x00], &[0xFF]),
            ErrorCount::new(8, 16)
        );
        assert_eq!(bit_errors_between(&[], &[1, 2]), ErrorCount::ZERO);
        // surplus rx bytes are ignored
        assert_eq!(
            bit_errors_between(&[0x55], &[0x55, 0xFF]),
            ErrorCount::new(0, 8)
        );
    }

    #[test]
    fn unit_errors_between_counts_mismatches_and_losses() {
        assert_eq!(
            unit_errors_between(&[1, 2, 3], &[1, 9, 3]),
            ErrorCount::new(1, 3)
        );
        assert_eq!(unit_errors_between(&[1, 2, 3], &[1]), ErrorCount::new(2, 3));
        assert_eq!(unit_errors_between(&[], &[]), ErrorCount::ZERO);
    }

    #[test]
    fn error_count_arithmetic() {
        let mut a = ErrorCount::new(1, 10);
        a += ErrorCount::new(2, 10);
        assert_eq!(a, ErrorCount::new(3, 20));
        assert!((a.rate() - 0.15).abs() < 1e-12);
        assert_eq!(ErrorCount::ZERO.rate(), 0.0);
        assert_eq!(
            ErrorCount::new(1, 2) + ErrorCount::new(1, 2),
            ErrorCount::new(2, 4)
        );
    }

    #[test]
    fn registry_keeps_registration_order_and_keyed_lookup() {
        let mut reg = PhyRegistry::new();
        assert!(reg.is_empty());
        reg.register(Box::new(TestPhy { name: "a" }));
        reg.register(Box::new(TestPhy { name: "b" }));
        reg.register(Box::new(TestPhy { name: "c" }));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.labels(), vec!["a", "b", "c"]);
        assert!(reg.get("b").is_some());
        assert!(reg.get("z").is_none());
        // clones preserve order
        let cloned = reg.clone();
        assert_eq!(cloned.labels(), reg.labels());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_duplicate_labels() {
        let mut reg = PhyRegistry::new();
        reg.register(Box::new(TestPhy { name: "a" }));
        reg.register(Box::new(TestPhy { name: "a" }));
    }

    #[test]
    fn batch_defaults_match_scalar_paths() {
        let phy = TestPhy { name: "bpsk" };
        let frames: Vec<&[u8]> = vec![&[0xA5, 0x3C], &[0x00], &[0xFF, 0x01, 0x80]];
        let mut waves = vec![Vec::new(); 7]; // deliberately wrong length
        phy.modulate_batch(&frames, &mut waves);
        assert_eq!(waves.len(), frames.len());
        for (frame, wave) in frames.iter().zip(&waves) {
            assert_eq!(*wave, phy.modulate(frame));
        }
        let slices: Vec<&[Complex]> = waves.iter().map(|w| w.as_slice()).collect();
        let batch = phy.demodulate_batch(&slices);
        for (iq, rx) in slices.iter().zip(&batch) {
            assert_eq!(*rx, phy.demodulate(iq));
        }
    }

    #[test]
    fn trait_objects_round_trip_through_the_registry() {
        let mut reg = PhyRegistry::new();
        reg.register(Box::new(TestPhy { name: "bpsk" }));
        let phy = reg.get("bpsk").unwrap();
        let frame = [0xDEu8, 0xAD, 0xBE, 0xEF];
        let rx = phy.demodulate(&phy.modulate(&frame));
        assert_eq!(rx.bytes, frame);
        assert!(phy.count_errors(&frame, &rx).is_clean());
    }
}

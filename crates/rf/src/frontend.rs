//! External RF front-end modules: SE2435L (900 MHz) and SKY66112
//! (2.4 GHz).
//!
//! The AT86RF215 tops out at 14 dBm, below the FCC's 30 dBm ceiling, so
//! the board adds optional PAs with bypassable LNAs (paper §3.1.1):
//! "Our 900 MHz PA supports up to 30 dBm output power, and the 2.4 GHz PA
//! can output up to 27 dBm. […] The maximum bypass current is 280 uA and
//! the sleep current of both power amplifiers is only 1 uA."

use crate::units::{db_to_lin, dbm_to_mw};

/// Which front-end chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEndKind {
    /// Skyworks SE2435L, 900 MHz, up to +30 dBm.
    Se2435l,
    /// Skyworks SKY66112, 2.4 GHz, up to +27 dBm.
    Sky66112,
}

impl FrontEndKind {
    /// Maximum PA output power, dBm.
    pub fn max_output_dbm(self) -> f64 {
        match self {
            FrontEndKind::Se2435l => 30.0,
            FrontEndKind::Sky66112 => 27.0,
        }
    }

    /// Small-signal PA gain, dB (datasheet typicals).
    pub fn pa_gain_db(self) -> f64 {
        match self {
            FrontEndKind::Se2435l => 22.0,
            FrontEndKind::Sky66112 => 20.0,
        }
    }

    /// LNA gain in receive mode, dB.
    pub fn lna_gain_db(self) -> f64 {
        match self {
            FrontEndKind::Se2435l => 16.0,
            FrontEndKind::Sky66112 => 12.0,
        }
    }

    /// LNA noise figure, dB.
    pub fn lna_nf_db(self) -> f64 {
        match self {
            FrontEndKind::Se2435l => 2.0,
            FrontEndKind::Sky66112 => 2.2,
        }
    }
}

/// Routing mode of the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEndMode {
    /// Everything off; 1 µA sleep current.
    Sleep,
    /// Straight-through: PA and LNA both bypassed (≤280 µA).
    Bypass,
    /// Transmit through the PA.
    TxPa,
    /// Receive through the LNA.
    RxLna,
}

/// A front-end module instance.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    /// Which chip this is.
    pub kind: FrontEndKind,
    mode: FrontEndMode,
    /// Supply voltage for current→power conversion (V6/V7 domains).
    supply_v: f64,
}

impl FrontEnd {
    /// Instantiate the 900 MHz front end (3.5 V domain V6).
    pub fn se2435l() -> Self {
        FrontEnd {
            kind: FrontEndKind::Se2435l,
            mode: FrontEndMode::Sleep,
            supply_v: 3.5,
        }
    }

    /// Instantiate the 2.4 GHz front end (3.0 V domain V7).
    pub fn sky66112() -> Self {
        FrontEnd {
            kind: FrontEndKind::Sky66112,
            mode: FrontEndMode::Sleep,
            supply_v: 3.0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> FrontEndMode {
        self.mode
    }

    /// Switch operating mode.
    pub fn set_mode(&mut self, mode: FrontEndMode) {
        self.mode = mode;
    }

    /// Output power for a given radio (driver) output power, dBm,
    /// respecting the mode and saturation.
    pub fn output_power_dbm(&self, input_dbm: f64) -> f64 {
        match self.mode {
            FrontEndMode::Sleep => -300.0,           // nothing gets through
            FrontEndMode::Bypass => input_dbm - 0.5, // insertion loss
            FrontEndMode::TxPa => {
                (input_dbm + self.kind.pa_gain_db()).min(self.kind.max_output_dbm())
            }
            FrontEndMode::RxLna => input_dbm + self.kind.lna_gain_db(),
        }
    }

    /// Supply power in the current mode, mW. The PA draw scales with RF
    /// output (class-AB-ish efficiency), matching the datasheet's
    /// hundreds-of-mA at full power.
    pub fn supply_power_mw(&self, rf_out_dbm: f64) -> f64 {
        match self.mode {
            FrontEndMode::Sleep => 1e-3 * self.supply_v,  // 1 µA
            FrontEndMode::Bypass => 0.28 * self.supply_v, // ≤280 µA
            FrontEndMode::RxLna => {
                match self.kind {
                    FrontEndKind::Se2435l => 15.0, // LNA bias
                    FrontEndKind::Sky66112 => 10.0,
                }
            }
            FrontEndMode::TxPa => {
                let eff = 0.35; // drain efficiency near rated output
                let bias = 40.0;
                bias + dbm_to_mw(rf_out_dbm.min(self.kind.max_output_dbm())) / eff
            }
        }
    }

    /// Effective noise figure contribution in RX, dB: the LNA improves
    /// the cascade; bypass adds only its insertion loss.
    pub fn rx_noise_figure_db(&self, radio_nf_db: f64) -> f64 {
        match self.mode {
            FrontEndMode::RxLna => {
                // Friis with LNA first: NF ≈ NF_lna + (NF_radio−1)/G_lna
                let g = db_to_lin(self.kind.lna_gain_db());
                let f_lna = db_to_lin(self.kind.lna_nf_db());
                let f_radio = db_to_lin(radio_nf_db);
                10.0 * (f_lna + (f_radio - 1.0) / g).log10()
            }
            FrontEndMode::Bypass => radio_nf_db + 0.5,
            _ => radio_nf_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_reaches_rated_power() {
        let mut fe = FrontEnd::se2435l();
        fe.set_mode(FrontEndMode::TxPa);
        // 14 dBm drive + 22 dB gain saturates at 30 dBm
        assert_eq!(fe.output_power_dbm(14.0), 30.0);
        assert!((fe.output_power_dbm(0.0) - 22.0).abs() < 1e-9);
        let mut fe = FrontEnd::sky66112();
        fe.set_mode(FrontEndMode::TxPa);
        assert_eq!(fe.output_power_dbm(14.0), 27.0);
    }

    #[test]
    fn bypass_has_insertion_loss_only() {
        let mut fe = FrontEnd::se2435l();
        fe.set_mode(FrontEndMode::Bypass);
        assert!((fe.output_power_dbm(10.0) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn sleep_current_is_one_microamp() {
        let fe = FrontEnd::se2435l();
        // 1 µA × 3.5 V = 3.5 µW
        assert!((fe.supply_power_mw(0.0) - 0.0035).abs() < 1e-6);
        let fe = FrontEnd::sky66112();
        assert!((fe.supply_power_mw(0.0) - 0.003).abs() < 1e-6);
    }

    #[test]
    fn bypass_current_280ua() {
        let mut fe = FrontEnd::se2435l();
        fe.set_mode(FrontEndMode::Bypass);
        assert!((fe.supply_power_mw(0.0) - 0.98).abs() < 0.01);
    }

    #[test]
    fn pa_power_scales_with_output() {
        let mut fe = FrontEnd::se2435l();
        fe.set_mode(FrontEndMode::TxPa);
        let p30 = fe.supply_power_mw(30.0);
        let p20 = fe.supply_power_mw(20.0);
        assert!(p30 > p20);
        // 1 W out at 35% efficiency ≈ 2.9 W supply
        assert!((p30 - (40.0 + 1000.0 / 0.35)).abs() < 1.0);
    }

    #[test]
    fn lna_improves_noise_figure() {
        let mut fe = FrontEnd::se2435l();
        fe.set_mode(FrontEndMode::RxLna);
        let nf = fe.rx_noise_figure_db(4.5);
        assert!(nf < 4.5, "cascade NF {nf}");
        assert!(nf > 2.0);
        fe.set_mode(FrontEndMode::Bypass);
        assert!((fe.rx_noise_figure_db(4.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_blocks_signal() {
        let fe = FrontEnd::sky66112();
        assert_eq!(fe.output_power_dbm(14.0), -300.0);
    }
}

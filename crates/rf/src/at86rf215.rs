//! Behavioural model of the AT86RF215 I/Q radio transceiver.
//!
//! The paper chose this chip because it is the only off-the-shelf I/Q
//! radio covering both 900 MHz and 2.4 GHz ISM bands at 4 MHz bandwidth
//! under $10 (Table 2). The model captures what the evaluation exercises:
//!
//! * the band plan (389.5–510 / 779–1020 / 2400–2483.5 MHz),
//! * the TRX state machine with the transition delays of Table 4,
//! * 13-bit converters at 4 MHz (via [`tinysdr_dsp::fixed::Quantizer`]),
//! * a 3–5 dB receive noise figure,
//! * TX output power from −31 to +14 dBm,
//! * supply power as a function of state and TX power, calibrated so the
//!   *platform totals* land on the paper's Fig. 9 anchors (231 mW at
//!   0 dBm, 283 mW at 14 dBm, including FPGA + MCU + regulators) and the
//!   §5.2 attributions (radio 179 mW in LoRa TX @14 dBm, 59 mW in RX).

use tinysdr_dsp::complex::Complex;
use tinysdr_dsp::fixed::Quantizer;

use crate::units::db_to_lin;

/// Sampling rate of the I/Q interface (4 MHz, 13-bit).
pub const SAMPLE_RATE_HZ: f64 = 4e6;

/// Receive noise figure of the RF front end, dB (paper: "3-5 dB noise
/// figure"; we take the middle).
pub const NOISE_FIGURE_DB: f64 = 4.5;

/// Maximum TX output power without the external PA, dBm.
pub const MAX_TX_POWER_DBM: f64 = 14.0;
/// Minimum programmable TX output power, dBm.
pub const MIN_TX_POWER_DBM: f64 = -31.0;

/// Frequency bands supported by the chip (paper Table 1 row for TinySDR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// 389.5–510 MHz.
    SubGhz450,
    /// 779–1020 MHz (the 900 MHz ISM band lives here).
    SubGhz900,
    /// 2400–2483.5 MHz.
    Ism2400,
}

impl Band {
    /// Inclusive frequency range of the band in Hz.
    pub fn range(self) -> (f64, f64) {
        match self {
            Band::SubGhz450 => (389.5e6, 510e6),
            Band::SubGhz900 => (779e6, 1020e6),
            Band::Ism2400 => (2400e6, 2483.5e6),
        }
    }

    /// Which band contains `freq_hz`, if any.
    pub fn containing(freq_hz: f64) -> Option<Band> {
        for b in [Band::SubGhz450, Band::SubGhz900, Band::Ism2400] {
            let (lo, hi) = b.range();
            if (lo..=hi).contains(&freq_hz) {
                return Some(b);
            }
        }
        None
    }
}

/// Radio state machine states (datasheet TRX states, simplified to the
/// ones the platform timing table exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioState {
    /// Deep sleep: registers retained, converters off.
    Sleep,
    /// Transceiver off, crystal running (idle).
    TrxOff,
    /// Receive: ADC streaming over LVDS.
    Rx,
    /// Transmit: DAC streaming over LVDS.
    Tx,
}

/// Transition timing constants, nanoseconds (paper Table 4).
pub mod timing {
    /// TX → RX switch: 45 µs.
    pub const TX_TO_RX_NS: u64 = 45_000;
    /// RX → TX switch: 11 µs.
    pub const RX_TO_TX_NS: u64 = 11_000;
    /// Retune to a different channel frequency: 220 µs.
    pub const FREQ_SWITCH_NS: u64 = 220_000;
    /// Radio register setup after wake: 1.2 ms.
    pub const RADIO_SETUP_NS: u64 = 1_200_000;
    /// Sleep → TRXOFF (crystal start): folded into radio setup.
    pub const SLEEP_TO_TRXOFF_NS: u64 = 500_000;
}

/// Errors from radio configuration and state transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum RadioError {
    /// Requested frequency is outside every supported band.
    FrequencyOutOfBand(f64),
    /// Requested TX power is outside −31..=+14 dBm.
    TxPowerOutOfRange(f64),
    /// Operation requires a state the radio is not in.
    WrongState {
        /// State required by the operation.
        need: RadioState,
        /// Actual current state.
        have: RadioState,
    },
}

impl std::fmt::Display for RadioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RadioError::FrequencyOutOfBand(hz) => {
                write!(f, "frequency {:.3} MHz outside supported bands", hz / 1e6)
            }
            RadioError::TxPowerOutOfRange(p) => write!(f, "TX power {p} dBm out of range"),
            RadioError::WrongState { need, have } => {
                write!(f, "operation needs state {need:?}, radio is in {have:?}")
            }
        }
    }
}

impl std::error::Error for RadioError {}

/// Supply power model, mW. Calibrated against the paper (§5.1–5.2):
/// the measured platform totals minus the FPGA/MCU/regulator shares.
pub mod power {
    use crate::units::dbm_to_mw;

    /// Deep-sleep supply power (µW-class; 0.03 µA at 3.3 V region).
    pub const SLEEP_MW: f64 = 0.0001;
    /// TRXOFF (idle, crystal on).
    pub const TRXOFF_MW: f64 = 10.0;
    /// Receive chain active at 900 MHz (Table 2: 50 mW; the paper's §5.2
    /// LoRa RX attributes 59 mW to the radio — RX + LVDS I/O).
    pub const RX_MW: f64 = 59.0;
    /// TX bias floor: supply draw extrapolated to zero RF output.
    pub const TX_BASE_MW: f64 = 122.0;
    /// Marginal PA drain efficiency near max output.
    pub const PA_EFFICIENCY: f64 = 0.47;

    /// TX supply power at `p_dbm` RF output (900 MHz path).
    ///
    /// Flat near the bias floor at low output and rising with RF power —
    /// the shape the paper observes in Fig. 9 ("DC power is constant at
    /// low RF power but increases as expected beyond some RF power
    /// level"). At 14 dBm this evaluates to ≈175 mW, consistent with the
    /// §5.2 attribution of 179 mW for the radio during LoRa TX.
    pub fn tx_mw(p_dbm: f64) -> f64 {
        TX_BASE_MW + dbm_to_mw(p_dbm) / PA_EFFICIENCY
    }

    /// TX supply power for the 2.4 GHz path: the synthesizer and PA draw
    /// slightly more at 2.4 GHz (Fig. 9 shows the 2.4 GHz curve a few mW
    /// above the 900 MHz one).
    pub fn tx_mw_2g4(p_dbm: f64) -> f64 {
        TX_BASE_MW + 4.0 + dbm_to_mw(p_dbm) / (PA_EFFICIENCY * 0.92)
    }
}

/// The radio model.
#[derive(Debug, Clone)]
pub struct At86Rf215 {
    state: RadioState,
    freq_hz: f64,
    tx_power_dbm: f64,
    quantizer: Quantizer,
    /// RX gain applied before the ADC (AGC output), dB.
    rx_gain_db: f64,
    /// Nanoseconds spent in transitions since construction (bookkeeping
    /// for the device-level timing tests).
    pub transition_ns: u64,
}

impl At86Rf215 {
    /// Power-on: radio wakes in TRXOFF at 915 MHz, 0 dBm.
    pub fn new() -> Self {
        At86Rf215 {
            state: RadioState::TrxOff,
            freq_hz: 915e6,
            tx_power_dbm: 0.0,
            quantizer: Quantizer::AT86RF215,
            rx_gain_db: 0.0,
            transition_ns: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> RadioState {
        self.state
    }

    /// Current carrier frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Current TX power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Tune to `freq_hz`.
    ///
    /// # Errors
    /// Fails if the frequency is outside all three bands. Takes
    /// [`timing::FREQ_SWITCH_NS`] if the radio is active.
    pub fn set_frequency(&mut self, freq_hz: f64) -> Result<Band, RadioError> {
        let band = Band::containing(freq_hz).ok_or(RadioError::FrequencyOutOfBand(freq_hz))?;
        if (self.freq_hz - freq_hz).abs() > 1.0 && self.state != RadioState::Sleep {
            self.transition_ns += timing::FREQ_SWITCH_NS;
        }
        self.freq_hz = freq_hz;
        Ok(band)
    }

    /// Program the TX output power.
    ///
    /// # Errors
    /// Fails outside −31..=+14 dBm.
    pub fn set_tx_power(&mut self, p_dbm: f64) -> Result<(), RadioError> {
        if !(MIN_TX_POWER_DBM..=MAX_TX_POWER_DBM).contains(&p_dbm) {
            return Err(RadioError::TxPowerOutOfRange(p_dbm));
        }
        self.tx_power_dbm = p_dbm;
        Ok(())
    }

    /// Set the receive gain (AGC result), dB.
    pub fn set_rx_gain(&mut self, g_db: f64) {
        self.rx_gain_db = g_db;
    }

    /// Move to a new state, returning the transition time in nanoseconds.
    pub fn transition(&mut self, to: RadioState) -> u64 {
        use RadioState::*;
        let ns = match (self.state, to) {
            (a, b) if a == b => 0,
            (Sleep, TrxOff) => timing::SLEEP_TO_TRXOFF_NS,
            (Sleep, Rx) | (Sleep, Tx) => timing::SLEEP_TO_TRXOFF_NS + timing::RADIO_SETUP_NS,
            (TrxOff, Rx) | (TrxOff, Tx) => timing::RADIO_SETUP_NS,
            (Tx, Rx) => timing::TX_TO_RX_NS,
            (Rx, Tx) => timing::RX_TO_TX_NS,
            (_, Sleep) => 0,
            (Rx, TrxOff) | (Tx, TrxOff) => 0,
            // same-state pairs are handled by the guard above
            _ => 0,
        };
        self.state = to;
        self.transition_ns += ns;
        ns
    }

    /// Supply power in the current state, mW.
    pub fn supply_power_mw(&self) -> f64 {
        match self.state {
            RadioState::Sleep => power::SLEEP_MW,
            RadioState::TrxOff => power::TRXOFF_MW,
            RadioState::Rx => power::RX_MW,
            RadioState::Tx => {
                if matches!(Band::containing(self.freq_hz), Some(Band::Ism2400)) {
                    power::tx_mw_2g4(self.tx_power_dbm)
                } else {
                    power::tx_mw(self.tx_power_dbm)
                }
            }
        }
    }

    /// Transmit: quantize the baseband buffer through the 13-bit DAC and
    /// scale it to the programmed output power (mean |z|² in mW).
    ///
    /// # Errors
    /// Requires the TX state.
    pub fn transmit(&self, baseband: &[Complex]) -> Result<Vec<Complex>, RadioError> {
        if self.state != RadioState::Tx {
            return Err(RadioError::WrongState {
                need: RadioState::Tx,
                have: self.state,
            });
        }
        let mut out: Vec<Complex> = baseband
            .iter()
            .map(|&z| self.quantizer.round_trip_iq(z))
            .collect();
        // scale quantized full-scale waveform to the programmed RF power
        crate::channel::set_rssi(&mut out, self.tx_power_dbm);
        Ok(out)
    }

    /// Receive: apply RX gain, then quantize through the 13-bit ADC.
    /// Returns `(samples, clipped_rail_count)`; the AGC loop in the
    /// caller watches the clip count.
    ///
    /// The input is expected in antenna-referenced mW units; the gain
    /// should bring it near ADC full scale (±1.0).
    ///
    /// # Errors
    /// Requires the RX state.
    pub fn receive(&self, rf: &[Complex]) -> Result<(Vec<Complex>, usize), RadioError> {
        if self.state != RadioState::Rx {
            return Err(RadioError::WrongState {
                need: RadioState::Rx,
                have: self.state,
            });
        }
        let g = db_to_lin(self.rx_gain_db).sqrt();
        let mut out: Vec<Complex> = rf.iter().map(|&z| z.scale(g)).collect();
        let clipped = self.quantizer.round_trip_buf(&mut out);
        Ok((out, clipped))
    }

    /// One-step automatic gain control: choose the RX gain that places
    /// the buffer's RMS at `target` of full scale (default ~0.25), then
    /// apply it. Returns the chosen gain in dB.
    pub fn agc(&mut self, rf: &[Complex], target: f64) -> f64 {
        let p = tinysdr_dsp::complex::mean_power(rf);
        if p <= 0.0 {
            return self.rx_gain_db;
        }
        let want = target * target; // target RMS → power
        self.rx_gain_db = 10.0 * (want / p).log10();
        self.rx_gain_db
    }
}

impl Default for At86Rf215 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinysdr_dsp::nco::ideal_tone;

    #[test]
    fn band_plan_matches_paper() {
        assert_eq!(Band::containing(433e6), Some(Band::SubGhz450));
        assert_eq!(Band::containing(915e6), Some(Band::SubGhz900));
        assert_eq!(Band::containing(2.44e9), Some(Band::Ism2400));
        assert_eq!(Band::containing(600e6), None);
        assert_eq!(Band::containing(5.8e9), None);
    }

    #[test]
    fn tuning_validates_band() {
        let mut r = At86Rf215::new();
        assert!(r.set_frequency(902e6).is_ok());
        assert!(r.set_frequency(2.402e9).is_ok());
        assert!(matches!(
            r.set_frequency(1.5e9),
            Err(RadioError::FrequencyOutOfBand(_))
        ));
    }

    #[test]
    fn tx_power_limits() {
        let mut r = At86Rf215::new();
        assert!(r.set_tx_power(14.0).is_ok());
        assert!(r.set_tx_power(-31.0).is_ok());
        assert!(r.set_tx_power(15.0).is_err());
        assert!(r.set_tx_power(-40.0).is_err());
    }

    #[test]
    fn state_transition_timings_match_table4() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Tx);
        assert_eq!(r.transition(RadioState::Rx), timing::TX_TO_RX_NS);
        assert_eq!(r.transition(RadioState::Tx), timing::RX_TO_TX_NS);
        assert_eq!(r.transition(RadioState::Tx), 0);
        r.transition(RadioState::Sleep);
        // wake to RX pays crystal + setup
        let wake = r.transition(RadioState::Rx);
        assert_eq!(wake, timing::SLEEP_TO_TRXOFF_NS + timing::RADIO_SETUP_NS);
    }

    #[test]
    fn freq_switch_costs_220us() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Tx);
        let before = r.transition_ns;
        r.set_frequency(2.402e9).unwrap();
        assert_eq!(r.transition_ns - before, timing::FREQ_SWITCH_NS);
        // retune to the same frequency is free
        let before = r.transition_ns;
        r.set_frequency(2.402e9).unwrap();
        assert_eq!(r.transition_ns, before);
    }

    #[test]
    fn power_model_anchors() {
        // §5.2: radio ≈179 mW during LoRa TX at 14 dBm → model within 5 mW
        assert!((power::tx_mw(14.0) - 175.4).abs() < 5.0);
        // flat at low power: −31 dBm and −14 dBm within 2 mW of each other
        assert!((power::tx_mw(-31.0) - power::tx_mw(-14.0)).abs() < 2.0);
        // monotone increasing
        assert!(power::tx_mw(14.0) > power::tx_mw(10.0));
        assert!(power::tx_mw_2g4(14.0) > power::tx_mw(14.0));
        // RX is 59 mW per §5.2
        let mut r = At86Rf215::new();
        r.transition(RadioState::Rx);
        assert_eq!(r.supply_power_mw(), 59.0);
    }

    #[test]
    fn sleep_power_is_microwatt_class() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Sleep);
        assert!(r.supply_power_mw() < 0.001);
    }

    #[test]
    fn transmit_requires_tx_state() {
        let r = At86Rf215::new();
        let tone = ideal_tone(100e3, SAMPLE_RATE_HZ, 64);
        assert!(matches!(
            r.transmit(&tone),
            Err(RadioError::WrongState { .. })
        ));
    }

    #[test]
    fn transmit_sets_rf_power() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Tx);
        r.set_tx_power(10.0).unwrap();
        let tone = ideal_tone(100e3, SAMPLE_RATE_HZ, 4096);
        let rf = r.transmit(&tone).unwrap();
        let rssi = crate::channel::measure_rssi_dbm(&rf);
        assert!((rssi - 10.0).abs() < 0.05, "TX power {rssi}");
    }

    #[test]
    fn receive_agc_prevents_clipping() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Rx);
        // a −60 dBm signal is tiny in mW units; AGC must boost it
        let mut sig = ideal_tone(250e3, SAMPLE_RATE_HZ, 1024);
        crate::channel::set_rssi(&mut sig, -60.0);
        r.agc(&sig, 0.25);
        let (out, clipped) = r.receive(&sig).unwrap();
        assert_eq!(clipped, 0);
        let rms = tinysdr_dsp::complex::mean_power(&out).sqrt();
        assert!((rms - 0.25).abs() < 0.05, "post-AGC rms {rms}");
    }

    #[test]
    fn receive_quantizes_to_13_bits() {
        let mut r = At86Rf215::new();
        r.transition(RadioState::Rx);
        r.set_rx_gain(0.0);
        let sig = vec![Complex::new(0.5000001, 0.0); 4];
        let (out, _) = r.receive(&sig).unwrap();
        // output must be a multiple of 1/4095
        let lsb = 1.0 / 4095.0;
        let ratio = out[0].re / lsb;
        assert!((ratio - ratio.round()).abs() < 1e-9);
    }
}

//! Composable channel impairments for PHY conformance sweeps.
//!
//! The paper's sensitivity figures (10–12, 15) sweep received power
//! through a calibrated AWGN channel. Real links add more than noise:
//! LO offset and phase noise, sampling-clock error, I/Q path mismatch,
//! multipath fading, and the ADC's finite word width. [`ImpairmentChain`]
//! stacks those effects in their physical order and ends in the existing
//! calibrated AWGN stage ([`crate::channel::AwgnChannel`]), so a
//! conformance sweep can ask "what does the SF8 waterfall look like with
//! 2 ppm clock drift and a 1 dB I/Q gain error?" and get a reproducible
//! answer.
//!
//! The chain is **stateless and deterministic**: [`ImpairmentChain::apply`]
//! takes an explicit seed and derives one independent splitmix64 stream
//! per randomized stage, so the same `(chain, signal, seed)` triple
//! produces bit-identical output on any thread of any shard — the same
//! contract the OTA campaign engine enforces.
//!
//! Stage order (TX → antenna → RX):
//!
//! 1. fractional sample-timing offset ([`tinysdr_dsp::delay`])
//! 2. sample-clock drift (ppm resampling)
//! 3. transmitter I/Q gain/phase imbalance
//! 4. carrier frequency offset
//! 5. oscillator phase noise (Wiener process of a given linewidth)
//! 6. scale to the wanted RSSI
//! 7. block Rayleigh fading (unit mean power)
//! 8. calibrated AWGN at the receiver noise figure
//! 9. ADC quantization at the LVDS word width (AGC'd to full scale)

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinysdr_dsp::complex::Complex;
use tinysdr_dsp::delay::{fractional_delay, resample_drift};
use tinysdr_dsp::fixed::Quantizer;

use crate::channel::{gauss_pair, set_rssi, AwgnChannel};
use crate::units::db_to_lin;

/// splitmix64 finalizer (same avalanche the OTA seed derivation uses);
/// kept local so the RF substrate stays below the OTA layer.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for one named stage of one chain application.
#[inline]
fn stage_seed(seed: u64, tag: u64) -> u64 {
    splitmix64(seed ^ splitmix64(tag))
}

/// Stream tag for the phase-noise Wiener process.
const TAG_PHASE_NOISE: u64 = 0x7A5E_0001;
/// Stream tag for the block-fading coefficient draws.
const TAG_FADING: u64 = 0xFADE_0002;
/// Stream tag for the AWGN stage.
const TAG_NOISE: u64 = 0xA36A_0003;

/// A deterministic stack of channel impairments ending in calibrated
/// AWGN. Build with [`ImpairmentChain::new`] plus the `with_*` builder
/// methods; apply with [`ImpairmentChain::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentChain {
    /// Receiver noise figure in dB for the final AWGN stage.
    pub noise_figure_db: f64,
    /// Sample-timing offset in samples (integer + fractional), ≥ 0.
    pub timing_offset_samples: f64,
    /// Sample-clock drift in parts per million (positive: RX clock fast).
    pub clock_drift_ppm: f64,
    /// I/Q gain imbalance in dB (Q rail relative to I rail).
    pub iq_gain_db: f64,
    /// I/Q phase (quadrature) error in degrees.
    pub iq_phase_deg: f64,
    /// Carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Oscillator Lorentzian linewidth in Hz (0 disables phase noise).
    pub phase_noise_linewidth_hz: f64,
    /// Block Rayleigh fading: coherence length in samples (`None`
    /// disables fading; the channel coefficient is redrawn every block
    /// with unit mean power).
    pub fading_block_samples: Option<usize>,
    /// ADC word width in bits (`None` keeps the float path); the buffer
    /// is AGC'd to full scale before quantization, as hardware does.
    pub adc_bits: Option<u32>,
}

impl ImpairmentChain {
    /// A chain with no impairments beyond calibrated AWGN at the given
    /// receiver noise figure — behaviourally the plain
    /// [`AwgnChannel`] sweep the paper's figures use.
    pub fn new(noise_figure_db: f64) -> Self {
        ImpairmentChain {
            noise_figure_db,
            timing_offset_samples: 0.0,
            clock_drift_ppm: 0.0,
            iq_gain_db: 0.0,
            iq_phase_deg: 0.0,
            cfo_hz: 0.0,
            phase_noise_linewidth_hz: 0.0,
            fading_block_samples: None,
            adc_bits: None,
        }
    }

    /// Replace the receiver noise figure (a conformance grid reuses one
    /// impairment recipe across receivers with different front ends).
    pub fn with_noise_figure(mut self, noise_figure_db: f64) -> Self {
        self.noise_figure_db = noise_figure_db;
        self
    }

    /// Add a sample-timing offset (integer + fractional samples, ≥ 0).
    pub fn with_timing_offset(mut self, samples: f64) -> Self {
        assert!(samples >= 0.0, "timing offset must be non-negative");
        self.timing_offset_samples = samples;
        self
    }

    /// Add sample-clock drift in ppm.
    pub fn with_clock_drift_ppm(mut self, ppm: f64) -> Self {
        self.clock_drift_ppm = ppm;
        self
    }

    /// Add transmitter I/Q imbalance: `gain_db` on the Q rail relative
    /// to I, plus a quadrature error of `phase_deg` degrees.
    pub fn with_iq_imbalance(mut self, gain_db: f64, phase_deg: f64) -> Self {
        self.iq_gain_db = gain_db;
        self.iq_phase_deg = phase_deg;
        self
    }

    /// Add a carrier frequency offset in Hz.
    pub fn with_cfo_hz(mut self, cfo_hz: f64) -> Self {
        self.cfo_hz = cfo_hz;
        self
    }

    /// Add oscillator phase noise as a Wiener process whose per-sample
    /// variance is `2π·linewidth/fs` (Lorentzian linewidth model).
    pub fn with_phase_noise(mut self, linewidth_hz: f64) -> Self {
        assert!(linewidth_hz >= 0.0, "linewidth must be non-negative");
        self.phase_noise_linewidth_hz = linewidth_hz;
        self
    }

    /// Add block Rayleigh fading with the given coherence length in
    /// samples. The complex channel coefficient is redrawn per block
    /// from CN(0, 1), so the *expected* receive power still equals the
    /// requested RSSI.
    pub fn with_block_fading(mut self, coherence_samples: usize) -> Self {
        assert!(coherence_samples > 0, "coherence must be positive");
        self.fading_block_samples = Some(coherence_samples);
        self
    }

    /// Quantize the received waveform to `bits`-bit I/Q words (the LVDS
    /// data path of Fig. 4 carries 13-bit words).
    pub fn with_adc_quantization(mut self, bits: u32) -> Self {
        self.adc_bits = Some(bits);
        self
    }

    /// `true` if the chain is AWGN-only (no extra impairments).
    pub fn is_awgn_only(&self) -> bool {
        self.timing_offset_samples == 0.0
            && self.clock_drift_ppm == 0.0
            && self.iq_gain_db == 0.0
            && self.iq_phase_deg == 0.0
            && self.cfo_hz == 0.0
            && self.phase_noise_linewidth_hz == 0.0
            && self.fading_block_samples.is_none()
            && self.adc_bits.is_none()
    }

    /// Run a transmit waveform through the chain: impairments in
    /// physical order, scaled to `rssi_dbm`, noise for a simulation
    /// bandwidth of `fs` Hz, and (optionally) ADC quantization.
    ///
    /// Deterministic: the output depends only on `(self, tx, rssi_dbm,
    /// fs, seed)` — never on threads, shards or call order.
    pub fn apply(&self, tx: &[Complex], rssi_dbm: f64, fs: f64, seed: u64) -> Vec<Complex> {
        // 1. sample-timing offset
        let mut sig = if self.timing_offset_samples > 0.0 {
            fractional_delay(tx, self.timing_offset_samples)
        } else {
            tx.to_vec()
        };
        // 2. sample-clock drift
        if self.clock_drift_ppm != 0.0 {
            sig = resample_drift(&sig, self.clock_drift_ppm);
        }
        // 3. I/Q imbalance: y = μ·x + ν·conj(x) with g the linear gain
        // ratio and φ the quadrature error
        if self.iq_gain_db != 0.0 || self.iq_phase_deg != 0.0 {
            let g = db_to_lin(self.iq_gain_db / 2.0); // amplitude ratio
            let phi = self.iq_phase_deg.to_radians();
            let e = Complex::from_angle(phi);
            let mu = (Complex::ONE + e.scale(g)).scale(0.5);
            let nu = (Complex::ONE - e.conj().scale(g)).scale(0.5);
            for z in sig.iter_mut() {
                *z = mu * *z + nu * z.conj();
            }
        }
        // 4. carrier frequency offset
        if self.cfo_hz != 0.0 {
            crate::channel::apply_cfo(&mut sig, self.cfo_hz, fs);
        }
        // 5. phase noise (Wiener process); Box–Muller yields two
        // Gaussians per draw — use both, alternating samples
        if self.phase_noise_linewidth_hz > 0.0 {
            let sigma = (std::f64::consts::TAU * self.phase_noise_linewidth_hz / fs).sqrt();
            let mut rng = StdRng::seed_from_u64(stage_seed(seed, TAG_PHASE_NOISE));
            let mut phase = 0.0f64;
            let mut spare: Option<f64> = None;
            for z in sig.iter_mut() {
                *z *= Complex::from_angle(phase);
                let n = match spare.take() {
                    Some(n) => n,
                    None => {
                        let (a, b) = gauss_pair(&mut rng);
                        spare = Some(b);
                        a
                    }
                };
                phase += sigma * n;
            }
        }
        // 6. scale to the wanted RSSI
        set_rssi(&mut sig, rssi_dbm);
        // 7. block Rayleigh fading (after scaling: the noise floor is
        // fixed by physics, the signal fades around the mean RSSI)
        if let Some(block) = self.fading_block_samples {
            let mut rng = StdRng::seed_from_u64(stage_seed(seed, TAG_FADING));
            let len = sig.len();
            let mut i = 0;
            while i < len {
                let (re, im) = gauss_pair(&mut rng);
                let h = Complex::new(re, im).scale(std::f64::consts::FRAC_1_SQRT_2);
                for z in sig[i..(i + block).min(len)].iter_mut() {
                    *z *= h;
                }
                i += block;
            }
        }
        // 8. calibrated AWGN
        let mut awgn = AwgnChannel::new(self.noise_figure_db, stage_seed(seed, TAG_NOISE));
        awgn.add_noise(&mut sig, fs);
        // 9. ADC quantization with AGC: scale the peak rail near full
        // scale, quantize, scale back (the AGC keeps downstream power
        // arithmetic in dBm intact)
        if let Some(bits) = self.adc_bits {
            let q = Quantizer::new(bits);
            let peak = sig
                .iter()
                .map(|z| z.re.abs().max(z.im.abs()))
                .fold(0.0f64, f64::max);
            if peak > 0.0 {
                let agc = 0.9 / peak;
                for z in sig.iter_mut() {
                    *z = q.round_trip_iq(z.scale(agc)).scale(1.0 / agc);
                }
            }
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::measure_rssi_dbm;
    use crate::units::noise_floor_dbm;
    use tinysdr_dsp::complex::mean_power;
    use tinysdr_dsp::fft::{fft, peak_bin};
    use tinysdr_dsp::nco::ideal_tone;

    const FS: f64 = 1e6;

    /// Strong enough that the physical noise floor (−114 dBm at 1 MHz)
    /// is ~100 dB down and linear-stage assertions are clean.
    const LOUD: f64 = -10.0;

    #[test]
    fn awgn_only_chain_is_calibrated() {
        // signal power lands on the requested RSSI and the added noise
        // matches the physical floor for (fs, NF)
        let chain = ImpairmentChain::new(5.0);
        assert!(chain.is_awgn_only());
        let tx = ideal_tone(100e3, FS, 100_000);
        let rx = chain.apply(&tx, -60.0, FS, 42);
        let total = measure_rssi_dbm(&rx);
        // at −60 dBm the −109 dBm noise floor is invisible
        assert!((total + 60.0).abs() < 0.05, "RSSI {total}");
        // noise-only residual: subtract the scaled signal
        let sig_mw = crate::units::dbm_to_mw(-60.0);
        let scale = (sig_mw / mean_power(&tx)).sqrt();
        let resid: Vec<Complex> = rx
            .iter()
            .zip(&tx)
            .map(|(&r, &t)| r - t.scale(scale))
            .collect();
        let n_dbm = measure_rssi_dbm(&resid);
        let want = noise_floor_dbm(FS, 5.0);
        assert!((n_dbm - want).abs() < 0.2, "noise {n_dbm} vs {want}");
    }

    #[test]
    fn apply_is_deterministic_in_the_seed() {
        let chain = ImpairmentChain::new(4.5)
            .with_cfo_hz(1e3)
            .with_phase_noise(50.0)
            .with_block_fading(256);
        let tx = ideal_tone(50e3, FS, 4096);
        let a = chain.apply(&tx, -90.0, FS, 7);
        let b = chain.apply(&tx, -90.0, FS, 7);
        assert_eq!(a, b, "same seed must be bit-identical");
        let c = chain.apply(&tx, -90.0, FS, 8);
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn cfo_stage_shifts_the_tone() {
        let n = 4096;
        let bin = FS / n as f64;
        let chain = ImpairmentChain::new(4.5).with_cfo_hz(32.0 * bin);
        let tx = ideal_tone(100.0 * bin, FS, n);
        let rx = chain.apply(&tx, LOUD, FS, 1);
        let (k, _) = peak_bin(&fft(&rx));
        assert_eq!(k, 132);
    }

    #[test]
    fn iq_imbalance_creates_the_predicted_image() {
        // a +f tone through an imbalanced front end grows an image at −f
        // with power |ν|²/|μ|²
        let n = 8192;
        let bin = FS / n as f64;
        let gain_db = 1.0;
        let phase_deg = 5.0;
        let chain = ImpairmentChain::new(4.5).with_iq_imbalance(gain_db, phase_deg);
        let tx = ideal_tone(200.0 * bin, FS, n);
        let rx = chain.apply(&tx, LOUD, FS, 3);
        let spec = fft(&rx);
        let direct = spec[200].norm_sqr();
        let image = spec[n - 200].norm_sqr();
        let g = db_to_lin(gain_db / 2.0);
        let phi = phase_deg.to_radians();
        let e = Complex::from_angle(phi);
        let mu = (Complex::ONE + e.scale(g)).scale(0.5);
        let nu = (Complex::ONE - e.conj().scale(g)).scale(0.5);
        let want_db = 10.0 * (nu.norm_sqr() / mu.norm_sqr()).log10();
        let got_db = 10.0 * (image / direct).log10();
        assert!(
            (got_db - want_db).abs() < 1.0,
            "image {got_db:.1} dB vs predicted {want_db:.1} dB"
        );
    }

    #[test]
    fn timing_offset_grows_the_buffer_and_keeps_power() {
        let chain = ImpairmentChain::new(4.5).with_timing_offset(17.5);
        let tx = ideal_tone(50e3, FS, 4096);
        let rx = chain.apply(&tx, LOUD, FS, 4);
        assert!(rx.len() > tx.len());
        assert!((measure_rssi_dbm(&rx[64..4000]) - LOUD).abs() < 0.3);
    }

    #[test]
    fn fading_keeps_unit_mean_power_across_blocks() {
        // many independent Rayleigh blocks average to the requested RSSI
        let chain = ImpairmentChain::new(0.0).with_block_fading(64);
        let tx = ideal_tone(50e3, FS, 128 * 64);
        let rx = chain.apply(&tx, LOUD, FS, 5);
        let got = measure_rssi_dbm(&rx);
        assert!((got - LOUD).abs() < 1.0, "mean faded power {got} dBm");
        // and individual blocks actually fade (non-constant envelope)
        let p0 = mean_power(&rx[..64]);
        let p1 = mean_power(&rx[64 * 7..64 * 8]);
        assert!(
            (10.0 * (p0 / p1).log10()).abs() > 0.1,
            "blocks should differ"
        );
    }

    #[test]
    fn phase_noise_preserves_envelope_and_decorrelates_phase() {
        let chain = ImpairmentChain::new(0.0).with_phase_noise(500.0);
        let tx = ideal_tone(50e3, FS, 50_000);
        let rx = chain.apply(&tx, LOUD, FS, 6);
        // envelope preserved (noise floor is ~100 dB down at −10 dBm)
        assert!((measure_rssi_dbm(&rx) - LOUD).abs() < 0.1);
        // accumulated phase error at the end of the buffer is visible
        let scale = (crate::units::dbm_to_mw(LOUD) / mean_power(&tx)).sqrt();
        let end_err = (rx[49_999] * tx[49_999].conj().scale(scale)).arg().abs();
        let start_err = (rx[10] * tx[10].conj().scale(scale)).arg().abs();
        assert!(
            end_err > start_err,
            "phase should wander: start {start_err} end {end_err}"
        );
    }

    #[test]
    fn coarse_quantization_sets_the_error_floor() {
        let tx = ideal_tone(50e3, FS, 8192);
        let clean = ImpairmentChain::new(0.0).apply(&tx, LOUD, FS, 9);
        let q4 = ImpairmentChain::new(0.0)
            .with_adc_quantization(4)
            .apply(&tx, LOUD, FS, 9);
        let q13 = ImpairmentChain::new(0.0)
            .with_adc_quantization(13)
            .apply(&tx, LOUD, FS, 9);
        let err = |a: &[Complex], b: &[Complex]| {
            let e: Vec<Complex> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
            mean_power(&e)
        };
        let e4 = err(&q4, &clean);
        let e13 = err(&q13, &clean);
        assert!(e4 > e13 * 1e3, "4-bit error {e4:e} vs 13-bit {e13:e}");
        // 13-bit quantization is ~80 dB below the signal: negligible
        let snr13 = 10.0 * (mean_power(&clean) / e13).log10();
        assert!(snr13 > 60.0, "13-bit SNR {snr13} dB");
    }

    #[test]
    fn chain_matches_plain_awgn_when_empty() {
        // the AWGN-only chain must reproduce the calibrated channel the
        // paper sweeps: same physics, deterministic in the seed
        let nf = 4.5;
        let tx = ideal_tone(30e3, 500e3, 65_536);
        let rx = ImpairmentChain::new(nf).apply(&tx, -110.0, 500e3, 77);
        let total_mw = mean_power(&rx);
        let want_mw =
            crate::units::dbm_to_mw(-110.0) + crate::units::dbm_to_mw(noise_floor_dbm(500e3, nf));
        assert!(
            (total_mw - want_mw).abs() / want_mw < 0.05,
            "total {total_mw:e} vs {want_mw:e}"
        );
    }
}

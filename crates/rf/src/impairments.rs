//! Composable channel impairments for PHY conformance sweeps.
//!
//! The paper's sensitivity figures (10–12, 15) sweep received power
//! through a calibrated AWGN channel. Real links add more than noise:
//! LO offset and phase noise, sampling-clock error, I/Q path mismatch,
//! multipath fading, and the ADC's finite word width. [`ImpairmentChain`]
//! stacks those effects in their physical order and ends in the existing
//! calibrated AWGN stage ([`crate::channel::AwgnChannel`]), so a
//! conformance sweep can ask "what does the SF8 waterfall look like with
//! 2 ppm clock drift and a 1 dB I/Q gain error?" and get a reproducible
//! answer.
//!
//! The chain is **stateless and deterministic**: [`ImpairmentChain::apply`]
//! takes an explicit seed and derives one independent splitmix64 stream
//! per randomized stage, so the same `(chain, signal, seed)` triple
//! produces bit-identical output on any thread of any shard — the same
//! contract the OTA campaign engine enforces.
//!
//! Stage order (TX → antenna → RX):
//!
//! 1. fractional sample-timing offset ([`tinysdr_dsp::delay`])
//! 2. sample-clock drift (ppm resampling)
//! 3. transmitter I/Q gain/phase imbalance
//! 4. carrier frequency offset
//! 5. oscillator phase noise (Wiener process of a given linewidth)
//! 6. scale to the wanted RSSI
//! 7. block Rayleigh fading (unit mean power)
//! 8. calibrated AWGN at the receiver noise figure
//! 9. ADC quantization at the LVDS word width (AGC'd to full scale)

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinysdr_dsp::complex::{mean_power, Complex};
use tinysdr_dsp::delay::{fractional_delay_into, resample_drift_into, DelayScratch};
use tinysdr_dsp::fixed::Quantizer;

use crate::channel::{gauss_pair, set_rssi, AwgnChannel};
use crate::units::{db_to_lin, dbm_to_mw};

/// splitmix64 finalizer (same avalanche the OTA seed derivation uses);
/// kept local so the RF substrate stays below the OTA layer.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for one named stage of one chain application.
#[inline]
fn stage_seed(seed: u64, tag: u64) -> u64 {
    splitmix64(seed ^ splitmix64(tag))
}

/// Stream tag for the phase-noise Wiener process.
const TAG_PHASE_NOISE: u64 = 0x7A5E_0001;
/// Stream tag for the block-fading coefficient draws.
const TAG_FADING: u64 = 0xFADE_0002;
/// Stream tag for the AWGN stage.
const TAG_NOISE: u64 = 0xA36A_0003;

/// A deterministic stack of channel impairments ending in calibrated
/// AWGN. Build with [`ImpairmentChain::new`] plus the `with_*` builder
/// methods; apply with [`ImpairmentChain::apply`] (or the allocation-free
/// [`ImpairmentChain::apply_into`]).
///
/// The fields are private so the builder invariants (non-negative timing
/// offset, valid ADC word width, …) cannot be bypassed by hand-editing a
/// constructed chain; read them back through the accessor methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentChain {
    noise_figure_db: f64,
    timing_offset_samples: f64,
    clock_drift_ppm: f64,
    iq_gain_db: f64,
    iq_phase_deg: f64,
    cfo_hz: f64,
    phase_noise_linewidth_hz: f64,
    fading_block_samples: Option<usize>,
    adc_bits: Option<u32>,
}

impl ImpairmentChain {
    /// A chain with no impairments beyond calibrated AWGN at the given
    /// receiver noise figure — behaviourally the plain
    /// [`AwgnChannel`] sweep the paper's figures use.
    pub fn new(noise_figure_db: f64) -> Self {
        ImpairmentChain {
            noise_figure_db,
            timing_offset_samples: 0.0,
            clock_drift_ppm: 0.0,
            iq_gain_db: 0.0,
            iq_phase_deg: 0.0,
            cfo_hz: 0.0,
            phase_noise_linewidth_hz: 0.0,
            fading_block_samples: None,
            adc_bits: None,
        }
    }

    /// Replace the receiver noise figure (a conformance grid reuses one
    /// impairment recipe across receivers with different front ends).
    pub fn with_noise_figure(mut self, noise_figure_db: f64) -> Self {
        self.noise_figure_db = noise_figure_db;
        self
    }

    /// Add a sample-timing offset (integer + fractional samples, ≥ 0).
    pub fn with_timing_offset(mut self, samples: f64) -> Self {
        assert!(samples >= 0.0, "timing offset must be non-negative");
        self.timing_offset_samples = samples;
        self
    }

    /// Add sample-clock drift in ppm.
    pub fn with_clock_drift_ppm(mut self, ppm: f64) -> Self {
        self.clock_drift_ppm = ppm;
        self
    }

    /// Add transmitter I/Q imbalance: `gain_db` on the Q rail relative
    /// to I, plus a quadrature error of `phase_deg` degrees.
    pub fn with_iq_imbalance(mut self, gain_db: f64, phase_deg: f64) -> Self {
        self.iq_gain_db = gain_db;
        self.iq_phase_deg = phase_deg;
        self
    }

    /// Add a carrier frequency offset in Hz.
    pub fn with_cfo_hz(mut self, cfo_hz: f64) -> Self {
        self.cfo_hz = cfo_hz;
        self
    }

    /// Add oscillator phase noise as a Wiener process whose per-sample
    /// variance is `2π·linewidth/fs` (Lorentzian linewidth model).
    pub fn with_phase_noise(mut self, linewidth_hz: f64) -> Self {
        assert!(linewidth_hz >= 0.0, "linewidth must be non-negative");
        self.phase_noise_linewidth_hz = linewidth_hz;
        self
    }

    /// Add block Rayleigh fading with the given coherence length in
    /// samples. The complex channel coefficient is redrawn per block
    /// from CN(0, 1), so the *expected* receive power still equals the
    /// requested RSSI.
    pub fn with_block_fading(mut self, coherence_samples: usize) -> Self {
        assert!(coherence_samples > 0, "coherence must be positive");
        self.fading_block_samples = Some(coherence_samples);
        self
    }

    /// Quantize the received waveform to `bits`-bit I/Q words (the LVDS
    /// data path of Fig. 4 carries 13-bit words).
    ///
    /// # Panics
    /// Panics if `bits` is outside `2..=24` — the word widths
    /// [`Quantizer::new`] supports. Validating here keeps the panic at
    /// the builder instead of deep inside a sweep's `apply` call.
    pub fn with_adc_quantization(mut self, bits: u32) -> Self {
        assert!(
            (2..=24).contains(&bits),
            "ADC word width must be 2..=24 bits, got {bits}"
        );
        self.adc_bits = Some(bits);
        self
    }

    /// Receiver noise figure in dB for the final AWGN stage.
    pub fn noise_figure_db(&self) -> f64 {
        self.noise_figure_db
    }

    /// Sample-timing offset in samples (integer + fractional), ≥ 0.
    pub fn timing_offset_samples(&self) -> f64 {
        self.timing_offset_samples
    }

    /// Sample-clock drift in parts per million (positive: RX clock fast).
    pub fn clock_drift_ppm(&self) -> f64 {
        self.clock_drift_ppm
    }

    /// I/Q gain imbalance in dB (Q rail relative to I rail).
    pub fn iq_gain_db(&self) -> f64 {
        self.iq_gain_db
    }

    /// I/Q phase (quadrature) error in degrees.
    pub fn iq_phase_deg(&self) -> f64 {
        self.iq_phase_deg
    }

    /// Carrier frequency offset in Hz.
    pub fn cfo_hz(&self) -> f64 {
        self.cfo_hz
    }

    /// Oscillator Lorentzian linewidth in Hz (0: phase noise disabled).
    pub fn phase_noise_linewidth_hz(&self) -> f64 {
        self.phase_noise_linewidth_hz
    }

    /// Block-fading coherence length in samples (`None`: fading disabled).
    pub fn fading_block_samples(&self) -> Option<usize> {
        self.fading_block_samples
    }

    /// ADC word width in bits (`None`: the float path, no quantization).
    pub fn adc_bits(&self) -> Option<u32> {
        self.adc_bits
    }

    /// `true` if the chain is AWGN-only (no extra impairments).
    pub fn is_awgn_only(&self) -> bool {
        self.timing_offset_samples == 0.0
            && self.clock_drift_ppm == 0.0
            && self.iq_gain_db == 0.0
            && self.iq_phase_deg == 0.0
            && self.cfo_hz == 0.0
            && self.phase_noise_linewidth_hz == 0.0
            && self.fading_block_samples.is_none()
            && self.adc_bits.is_none()
    }

    /// Run a transmit waveform through the chain: impairments in
    /// physical order, scaled to `rssi_dbm`, noise for a simulation
    /// bandwidth of `fs` Hz, and (optionally) ADC quantization.
    ///
    /// Deterministic: the output depends only on `(self, tx, rssi_dbm,
    /// fs, seed)` — never on threads, shards or call order.
    ///
    /// This is a thin wrapper over [`ImpairmentChain::apply_into`] with
    /// fresh buffers; hot loops should hold a [`ChainScratch`] and call
    /// `apply_into` directly.
    pub fn apply(&self, tx: &[Complex], rssi_dbm: f64, fs: f64, seed: u64) -> Vec<Complex> {
        let mut out = Vec::new();
        let mut scratch = ChainScratch::new();
        self.apply_into(tx, rssi_dbm, fs, seed, &mut out, &mut scratch);
        out
    }

    /// [`ImpairmentChain::apply`] into a caller-owned output buffer,
    /// running all nine stages with zero steady-state allocation once
    /// `out` and `scratch` have grown to the working size. Bit-identical
    /// to `apply` for every `(chain, tx, rssi_dbm, fs, seed)` — buffer
    /// reuse changes where samples live, never the order of a single
    /// floating-point operation.
    pub fn apply_into(
        &self,
        tx: &[Complex],
        rssi_dbm: f64,
        fs: f64,
        seed: u64,
        out: &mut Vec<Complex>,
        scratch: &mut ChainScratch,
    ) {
        // stages 1–5 (RSSI-independent front half)
        self.apply_front_into(tx, fs, seed, out, scratch);
        // 6. scale to the wanted RSSI
        set_rssi(out, rssi_dbm);
        // 7. block Rayleigh fading (after scaling: the noise floor is
        // fixed by physics, the signal fades around the mean RSSI)
        if let Some(block) = self.fading_block_samples {
            let mut rng = StdRng::seed_from_u64(stage_seed(seed, TAG_FADING));
            let len = out.len();
            let mut i = 0;
            while i < len {
                let (re, im) = gauss_pair(&mut rng);
                let h = Complex::new(re, im).scale(std::f64::consts::FRAC_1_SQRT_2);
                for z in out[i..(i + block).min(len)].iter_mut() {
                    *z *= h;
                }
                i += block;
            }
        }
        // 8. calibrated AWGN
        let mut awgn = AwgnChannel::new(self.noise_figure_db, stage_seed(seed, TAG_NOISE));
        awgn.add_noise(out, fs);
        // 9. ADC quantization
        self.quantize_in_place(out);
    }

    /// Stages 1–5 of the chain (timing, drift, I/Q imbalance, CFO, phase
    /// noise) into `out`. Everything here is independent of the target
    /// RSSI: the randomized stages key their RNG streams on `seed` alone,
    /// so a sweep can run the front half once per `(waveform, seed)` and
    /// reuse it across every RSSI point of a curve — bit-identically.
    fn apply_front_into(
        &self,
        tx: &[Complex],
        fs: f64,
        seed: u64,
        out: &mut Vec<Complex>,
        scratch: &mut ChainScratch,
    ) {
        // 1. sample-timing offset
        if self.timing_offset_samples > 0.0 {
            fractional_delay_into(tx, self.timing_offset_samples, &mut scratch.delay, out);
        } else {
            out.clear();
            out.extend_from_slice(tx);
        }
        // 2. sample-clock drift (ping-pong through the scratch buffer:
        // the resampler cannot run in place)
        if self.clock_drift_ppm != 0.0 {
            std::mem::swap(out, &mut scratch.tmp);
            resample_drift_into(&scratch.tmp, self.clock_drift_ppm, &mut scratch.delay, out);
        }
        // 3. I/Q imbalance: y = μ·x + ν·conj(x) with g the linear gain
        // ratio and φ the quadrature error
        if self.iq_gain_db != 0.0 || self.iq_phase_deg != 0.0 {
            let g = db_to_lin(self.iq_gain_db / 2.0); // amplitude ratio
            let phi = self.iq_phase_deg.to_radians();
            let e = Complex::from_angle(phi);
            let mu = (Complex::ONE + e.scale(g)).scale(0.5);
            let nu = (Complex::ONE - e.conj().scale(g)).scale(0.5);
            for z in out.iter_mut() {
                *z = mu * *z + nu * z.conj();
            }
        }
        // 4. carrier frequency offset
        if self.cfo_hz != 0.0 {
            crate::channel::apply_cfo(out, self.cfo_hz, fs);
        }
        // 5. phase noise (Wiener process); Box–Muller yields two
        // Gaussians per draw — use both, alternating samples
        if self.phase_noise_linewidth_hz > 0.0 {
            let sigma = (std::f64::consts::TAU * self.phase_noise_linewidth_hz / fs).sqrt();
            let mut rng = StdRng::seed_from_u64(stage_seed(seed, TAG_PHASE_NOISE));
            let mut phase = 0.0f64;
            let mut spare: Option<f64> = None;
            for z in out.iter_mut() {
                *z *= Complex::from_angle(phase);
                let n = match spare.take() {
                    Some(n) => n,
                    None => {
                        let (a, b) = gauss_pair(&mut rng);
                        spare = Some(b);
                        a
                    }
                };
                phase += sigma * n;
            }
        }
    }

    /// Stage 9: ADC quantization with AGC — scale the peak rail near
    /// full scale, quantize, scale back (the AGC keeps downstream power
    /// arithmetic in dBm intact).
    fn quantize_in_place(&self, sig: &mut [Complex]) {
        if let Some(bits) = self.adc_bits {
            let q = Quantizer::new(bits);
            let peak = sig
                .iter()
                .map(|z| z.re.abs().max(z.im.abs()))
                .fold(0.0f64, f64::max);
            if peak > 0.0 {
                let agc = 0.9 / peak;
                for z in sig.iter_mut() {
                    *z = q.round_trip_iq(z.scale(agc)).scale(1.0 / agc);
                }
            }
        }
    }

    /// Precompute everything about one `(tx, fs, seed)` pass that does
    /// not depend on the target RSSI: the front half of the chain
    /// (stages 1–5), its mean power, the per-block fading coefficients
    /// and the full AWGN noise vector. A sweep curve then replays the
    /// pass at each RSSI point with [`ImpairmentChain::apply_prepared_into`],
    /// skipping the expensive interpolation and Gaussian draws — with
    /// bit-identical output, because every stage's RNG stream is keyed
    /// on `seed` alone and the per-point arithmetic is unchanged.
    pub fn prepare_pass_into(
        &self,
        tx: &[Complex],
        fs: f64,
        seed: u64,
        prep: &mut PreparedPass,
        scratch: &mut ChainScratch,
    ) {
        self.apply_front_into(tx, fs, seed, &mut prep.front, scratch);
        prep.front_power = mean_power(&prep.front);
        prep.fading_block = self.fading_block_samples;
        prep.fading.clear();
        if let Some(block) = self.fading_block_samples {
            let mut rng = StdRng::seed_from_u64(stage_seed(seed, TAG_FADING));
            let mut i = 0;
            while i < prep.front.len() {
                let (re, im) = gauss_pair(&mut rng);
                prep.fading
                    .push(Complex::new(re, im).scale(std::f64::consts::FRAC_1_SQRT_2));
                i += block;
            }
        }
        let mut awgn = AwgnChannel::new(self.noise_figure_db, stage_seed(seed, TAG_NOISE));
        awgn.noise_only_into(prep.front.len(), fs, &mut prep.noise);
    }

    /// Replay a prepared pass at one RSSI point: copy the front half,
    /// scale to `rssi_dbm`, apply the precomputed fading blocks, add the
    /// precomputed noise vector, quantize. Must be called with the same
    /// chain that prepared `prep`; the output is then bit-identical to
    /// [`ImpairmentChain::apply`] at the same `(tx, rssi_dbm, fs, seed)`.
    pub fn apply_prepared_into(&self, prep: &PreparedPass, rssi_dbm: f64, out: &mut Vec<Complex>) {
        out.clear();
        out.extend_from_slice(&prep.front);
        // 6. scale to the wanted RSSI — same arithmetic as
        // `normalize_power`, with the mean power cached across points
        // (it is a property of the front half alone)
        let p = prep.front_power;
        if p > 0.0 {
            let g = (dbm_to_mw(rssi_dbm) / p).sqrt();
            for z in out.iter_mut() {
                *z = z.scale(g);
            }
        }
        // 7. fading: the same per-block coefficients `apply` would draw
        if let Some(block) = prep.fading_block {
            let len = out.len();
            for (b, &h) in prep.fading.iter().enumerate() {
                let i = b * block;
                for z in out[i..(i + block).min(len)].iter_mut() {
                    *z *= h;
                }
            }
        }
        // 8. AWGN: the same per-sample draws `add_noise` would make
        for (z, n) in out.iter_mut().zip(&prep.noise) {
            *z += *n;
        }
        // 9. ADC quantization
        self.quantize_in_place(out);
    }
}

/// Reusable scratch buffers for [`ImpairmentChain::apply_into`]: the
/// interpolation window/kernel plus a ping-pong buffer for the
/// resampling stage. One per worker thread is enough.
#[derive(Debug, Clone, Default)]
pub struct ChainScratch {
    delay: DelayScratch,
    tmp: Vec<Complex>,
}

impl ChainScratch {
    /// Fresh scratch; buffers grow lazily to the working size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The RSSI-independent precomputation of one impairment pass: front
/// half (stages 1–5), its mean power, fading coefficients and noise
/// vector. Built by [`ImpairmentChain::prepare_pass_into`], replayed per
/// RSSI point by [`ImpairmentChain::apply_prepared_into`].
#[derive(Debug, Clone, Default)]
pub struct PreparedPass {
    front: Vec<Complex>,
    front_power: f64,
    fading: Vec<Complex>,
    fading_block: Option<usize>,
    noise: Vec<Complex>,
}

impl PreparedPass {
    /// Fresh (empty) pass state; buffers grow lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the prepared waveform in samples.
    pub fn len(&self) -> usize {
        self.front.len()
    }

    /// `true` if nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::measure_rssi_dbm;
    use crate::units::noise_floor_dbm;
    use tinysdr_dsp::complex::mean_power;
    use tinysdr_dsp::fft::{fft, peak_bin};
    use tinysdr_dsp::nco::ideal_tone;

    const FS: f64 = 1e6;

    /// Strong enough that the physical noise floor (−114 dBm at 1 MHz)
    /// is ~100 dB down and linear-stage assertions are clean.
    const LOUD: f64 = -10.0;

    #[test]
    fn awgn_only_chain_is_calibrated() {
        // signal power lands on the requested RSSI and the added noise
        // matches the physical floor for (fs, NF)
        let chain = ImpairmentChain::new(5.0);
        assert!(chain.is_awgn_only());
        let tx = ideal_tone(100e3, FS, 100_000);
        let rx = chain.apply(&tx, -60.0, FS, 42);
        let total = measure_rssi_dbm(&rx);
        // at −60 dBm the −109 dBm noise floor is invisible
        assert!((total + 60.0).abs() < 0.05, "RSSI {total}");
        // noise-only residual: subtract the scaled signal
        let sig_mw = crate::units::dbm_to_mw(-60.0);
        let scale = (sig_mw / mean_power(&tx)).sqrt();
        let resid: Vec<Complex> = rx
            .iter()
            .zip(&tx)
            .map(|(&r, &t)| r - t.scale(scale))
            .collect();
        let n_dbm = measure_rssi_dbm(&resid);
        let want = noise_floor_dbm(FS, 5.0);
        assert!((n_dbm - want).abs() < 0.2, "noise {n_dbm} vs {want}");
    }

    #[test]
    fn apply_is_deterministic_in_the_seed() {
        let chain = ImpairmentChain::new(4.5)
            .with_cfo_hz(1e3)
            .with_phase_noise(50.0)
            .with_block_fading(256);
        let tx = ideal_tone(50e3, FS, 4096);
        let a = chain.apply(&tx, -90.0, FS, 7);
        let b = chain.apply(&tx, -90.0, FS, 7);
        assert_eq!(a, b, "same seed must be bit-identical");
        let c = chain.apply(&tx, -90.0, FS, 8);
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn cfo_stage_shifts_the_tone() {
        let n = 4096;
        let bin = FS / n as f64;
        let chain = ImpairmentChain::new(4.5).with_cfo_hz(32.0 * bin);
        let tx = ideal_tone(100.0 * bin, FS, n);
        let rx = chain.apply(&tx, LOUD, FS, 1);
        let (k, _) = peak_bin(&fft(&rx)).unwrap();
        assert_eq!(k, 132);
    }

    #[test]
    fn iq_imbalance_creates_the_predicted_image() {
        // a +f tone through an imbalanced front end grows an image at −f
        // with power |ν|²/|μ|²
        let n = 8192;
        let bin = FS / n as f64;
        let gain_db = 1.0;
        let phase_deg = 5.0;
        let chain = ImpairmentChain::new(4.5).with_iq_imbalance(gain_db, phase_deg);
        let tx = ideal_tone(200.0 * bin, FS, n);
        let rx = chain.apply(&tx, LOUD, FS, 3);
        let spec = fft(&rx);
        let direct = spec[200].norm_sqr();
        let image = spec[n - 200].norm_sqr();
        let g = db_to_lin(gain_db / 2.0);
        let phi = phase_deg.to_radians();
        let e = Complex::from_angle(phi);
        let mu = (Complex::ONE + e.scale(g)).scale(0.5);
        let nu = (Complex::ONE - e.conj().scale(g)).scale(0.5);
        let want_db = 10.0 * (nu.norm_sqr() / mu.norm_sqr()).log10();
        let got_db = 10.0 * (image / direct).log10();
        assert!(
            (got_db - want_db).abs() < 1.0,
            "image {got_db:.1} dB vs predicted {want_db:.1} dB"
        );
    }

    #[test]
    fn timing_offset_grows_the_buffer_and_keeps_power() {
        let chain = ImpairmentChain::new(4.5).with_timing_offset(17.5);
        let tx = ideal_tone(50e3, FS, 4096);
        let rx = chain.apply(&tx, LOUD, FS, 4);
        assert!(rx.len() > tx.len());
        assert!((measure_rssi_dbm(&rx[64..4000]) - LOUD).abs() < 0.3);
    }

    #[test]
    fn fading_keeps_unit_mean_power_across_blocks() {
        // many independent Rayleigh blocks average to the requested RSSI
        let chain = ImpairmentChain::new(0.0).with_block_fading(64);
        let tx = ideal_tone(50e3, FS, 128 * 64);
        let rx = chain.apply(&tx, LOUD, FS, 5);
        let got = measure_rssi_dbm(&rx);
        assert!((got - LOUD).abs() < 1.0, "mean faded power {got} dBm");
        // and individual blocks actually fade (non-constant envelope)
        let p0 = mean_power(&rx[..64]);
        let p1 = mean_power(&rx[64 * 7..64 * 8]);
        assert!(
            (10.0 * (p0 / p1).log10()).abs() > 0.1,
            "blocks should differ"
        );
    }

    #[test]
    fn phase_noise_preserves_envelope_and_decorrelates_phase() {
        let chain = ImpairmentChain::new(0.0).with_phase_noise(500.0);
        let tx = ideal_tone(50e3, FS, 50_000);
        let rx = chain.apply(&tx, LOUD, FS, 6);
        // envelope preserved (noise floor is ~100 dB down at −10 dBm)
        assert!((measure_rssi_dbm(&rx) - LOUD).abs() < 0.1);
        // accumulated phase error at the end of the buffer is visible
        let scale = (crate::units::dbm_to_mw(LOUD) / mean_power(&tx)).sqrt();
        let end_err = (rx[49_999] * tx[49_999].conj().scale(scale)).arg().abs();
        let start_err = (rx[10] * tx[10].conj().scale(scale)).arg().abs();
        assert!(
            end_err > start_err,
            "phase should wander: start {start_err} end {end_err}"
        );
    }

    #[test]
    fn coarse_quantization_sets_the_error_floor() {
        let tx = ideal_tone(50e3, FS, 8192);
        let clean = ImpairmentChain::new(0.0).apply(&tx, LOUD, FS, 9);
        let q4 = ImpairmentChain::new(0.0)
            .with_adc_quantization(4)
            .apply(&tx, LOUD, FS, 9);
        let q13 = ImpairmentChain::new(0.0)
            .with_adc_quantization(13)
            .apply(&tx, LOUD, FS, 9);
        let err = |a: &[Complex], b: &[Complex]| {
            let e: Vec<Complex> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
            mean_power(&e)
        };
        let e4 = err(&q4, &clean);
        let e13 = err(&q13, &clean);
        assert!(e4 > e13 * 1e3, "4-bit error {e4:e} vs 13-bit {e13:e}");
        // 13-bit quantization is ~80 dB below the signal: negligible
        let snr13 = 10.0 * (mean_power(&clean) / e13).log10();
        assert!(snr13 > 60.0, "13-bit SNR {snr13} dB");
    }

    #[test]
    fn chain_matches_plain_awgn_when_empty() {
        // the AWGN-only chain must reproduce the calibrated channel the
        // paper sweeps: same physics, deterministic in the seed
        let nf = 4.5;
        let tx = ideal_tone(30e3, 500e3, 65_536);
        let rx = ImpairmentChain::new(nf).apply(&tx, -110.0, 500e3, 77);
        let total_mw = mean_power(&rx);
        let want_mw =
            crate::units::dbm_to_mw(-110.0) + crate::units::dbm_to_mw(noise_floor_dbm(500e3, nf));
        assert!(
            (total_mw - want_mw).abs() / want_mw < 0.05,
            "total {total_mw:e} vs {want_mw:e}"
        );
    }

    /// A grid of chains that, together, exercise every one of the nine
    /// stages (including the stage-skipping `if`s on both sides).
    fn contract_grid() -> Vec<ImpairmentChain> {
        vec![
            ImpairmentChain::new(4.5),
            ImpairmentChain::new(4.5).with_timing_offset(0.35),
            ImpairmentChain::new(4.5).with_clock_drift_ppm(-30.0),
            ImpairmentChain::new(4.5).with_iq_imbalance(0.4, 2.5),
            ImpairmentChain::new(4.5).with_cfo_hz(750.0),
            ImpairmentChain::new(4.5).with_phase_noise(80.0),
            ImpairmentChain::new(4.5).with_block_fading(512),
            ImpairmentChain::new(4.5).with_adc_quantization(6),
            ImpairmentChain::new(6.0)
                .with_timing_offset(1.25)
                .with_clock_drift_ppm(40.0)
                .with_iq_imbalance(0.3, -1.5)
                .with_cfo_hz(-300.0)
                .with_phase_noise(25.0)
                .with_block_fading(256)
                .with_adc_quantization(10),
        ]
    }

    #[test]
    fn apply_into_is_bit_identical_to_apply_across_the_grid() {
        let tx = ideal_tone(40e3, FS, 4096);
        let mut out = Vec::new();
        let mut scratch = ChainScratch::new();
        for (i, chain) in contract_grid().into_iter().enumerate() {
            for &rssi in &[-60.0, -95.0, -120.0] {
                let seed = 1000 + i as u64;
                let reference = chain.apply(&tx, rssi, FS, seed);
                // reuse out+scratch across the whole grid: growth and
                // leftover contents must never leak into the result
                chain.apply_into(&tx, rssi, FS, seed, &mut out, &mut scratch);
                assert_eq!(out, reference, "chain #{i} at {rssi} dBm diverged");
            }
        }
    }

    #[test]
    fn prepared_pass_is_bit_identical_to_apply() {
        let tx = ideal_tone(40e3, FS, 4096);
        let mut prep = PreparedPass::new();
        let mut scratch = ChainScratch::new();
        let mut out = Vec::new();
        for (i, chain) in contract_grid().into_iter().enumerate() {
            let seed = 2000 + i as u64;
            chain.prepare_pass_into(&tx, FS, seed, &mut prep, &mut scratch);
            assert_eq!(prep.len(), chain.apply(&tx, -90.0, FS, seed).len());
            assert!(!prep.is_empty());
            // one prepare, many RSSI points — the sweep-curve shape
            for &rssi in &[-50.0, -85.0, -105.0, -130.0] {
                let reference = chain.apply(&tx, rssi, FS, seed);
                chain.apply_prepared_into(&prep, rssi, &mut out);
                assert_eq!(out, reference, "chain #{i} at {rssi} dBm diverged");
            }
        }
    }

    #[test]
    fn accessors_report_builder_state() {
        // regression: fields used to be `pub`, letting callers bypass the
        // builder asserts (e.g. a negative timing offset); they are now
        // private and the accessors are the only read path
        let chain = ImpairmentChain::new(3.0)
            .with_timing_offset(0.5)
            .with_clock_drift_ppm(-20.0)
            .with_iq_imbalance(0.4, 2.5)
            .with_cfo_hz(750.0)
            .with_phase_noise(80.0)
            .with_block_fading(512)
            .with_adc_quantization(6);
        assert_eq!(chain.noise_figure_db(), 3.0);
        assert_eq!(chain.timing_offset_samples(), 0.5);
        assert_eq!(chain.clock_drift_ppm(), -20.0);
        assert_eq!(chain.iq_gain_db(), 0.4);
        assert_eq!(chain.iq_phase_deg(), 2.5);
        assert_eq!(chain.cfo_hz(), 750.0);
        assert_eq!(chain.phase_noise_linewidth_hz(), 80.0);
        assert_eq!(chain.fading_block_samples(), Some(512));
        assert_eq!(chain.adc_bits(), Some(6));
    }

    #[test]
    #[should_panic(expected = "ADC word width")]
    fn adc_zero_bits_rejected_at_builder() {
        // regression: used to be accepted here and panic later inside
        // `apply`, deep in a sweep
        let _ = ImpairmentChain::new(4.5).with_adc_quantization(0);
    }

    #[test]
    #[should_panic(expected = "ADC word width")]
    fn adc_one_bit_rejected_at_builder() {
        let _ = ImpairmentChain::new(4.5).with_adc_quantization(1);
    }

    #[test]
    #[should_panic(expected = "ADC word width")]
    fn adc_25_bits_rejected_at_builder() {
        let _ = ImpairmentChain::new(4.5).with_adc_quantization(25);
    }
}

//! Propagation models for the campus testbed (paper Fig. 7).
//!
//! The paper deploys 20 TinySDR nodes across a university campus and
//! programs them from one LoRa access point. We reproduce the *RSSI
//! distribution* that drives Fig. 14's programming-time CDF with a
//! standard log-distance model plus lognormal shadowing, parameterized
//! for a campus environment (buildings + open space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Free-space path loss in dB at distance `d_m` meters and frequency
/// `freq_hz`.
pub fn free_space_db(d_m: f64, freq_hz: f64) -> f64 {
    assert!(d_m > 0.0 && freq_hz > 0.0);
    20.0 * d_m.log10() + 20.0 * freq_hz.log10() - 147.55
}

/// Log-distance path-loss model with optional lognormal shadowing.
#[derive(Debug, Clone)]
pub struct LogDistance {
    /// Path loss at the reference distance, dB.
    pub pl0_db: f64,
    /// Reference distance, meters.
    pub d0_m: f64,
    /// Path-loss exponent (2 free space … 3.5 dense urban).
    pub exponent: f64,
    /// Shadowing standard deviation, dB (0 disables shadowing).
    pub sigma_db: f64,
}

impl LogDistance {
    /// Campus model at 915 MHz used for the Fig. 7/Fig. 14 testbed:
    /// free-space anchor at 1 m (31.7 dB), exponent 2.9, σ = 4 dB —
    /// typical for a mixed outdoor/indoor university deployment.
    pub fn campus_915mhz() -> Self {
        LogDistance {
            pl0_db: free_space_db(1.0, 915e6),
            d0_m: 1.0,
            exponent: 2.9,
            sigma_db: 4.0,
        }
    }

    /// Deterministic (median) path loss at `d_m` meters.
    pub fn median_path_loss_db(&self, d_m: f64) -> f64 {
        assert!(d_m > 0.0, "distance must be positive");
        let d = d_m.max(self.d0_m);
        self.pl0_db + 10.0 * self.exponent * (d / self.d0_m).log10()
    }

    /// Path loss with a specific shadowing realization `shadow_db`
    /// (usually drawn once per link, not per packet).
    pub fn path_loss_db(&self, d_m: f64, shadow_db: f64) -> f64 {
        self.median_path_loss_db(d_m) + shadow_db
    }

    /// Draw a shadowing value (zero-mean Gaussian, σ = `sigma_db`).
    pub fn draw_shadow(&self, rng: &mut StdRng) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        // Box–Muller
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * self.sigma_db
    }

    /// Received power for a link: `tx_dbm + gains − PL(d) − shadow`.
    pub fn rssi_dbm(
        &self,
        tx_power_dbm: f64,
        antenna_gains_db: f64,
        d_m: f64,
        shadow_db: f64,
    ) -> f64 {
        tx_power_dbm + antenna_gains_db - self.path_loss_db(d_m, shadow_db)
    }
}

/// A point-to-point link with a frozen shadowing realization.
#[derive(Debug, Clone)]
pub struct Link {
    /// Distance in meters.
    pub distance_m: f64,
    /// Frozen shadowing draw for this link, dB.
    pub shadow_db: f64,
    /// Sum of antenna gains, dB.
    pub antenna_gains_db: f64,
}

impl Link {
    /// Create a link with shadowing drawn from the model.
    pub fn new(model: &LogDistance, distance_m: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Link {
            distance_m,
            shadow_db: model.draw_shadow(&mut rng),
            antenna_gains_db: 0.0,
        }
    }

    /// RSSI at the far end for a given transmit power.
    pub fn rssi_dbm(&self, model: &LogDistance, tx_power_dbm: f64) -> f64 {
        model.rssi_dbm(
            tx_power_dbm,
            self.antenna_gains_db,
            self.distance_m,
            self.shadow_db,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_landmarks() {
        // 915 MHz at 1 m ≈ 31.7 dB; at 1 km ≈ 91.7 dB
        assert!((free_space_db(1.0, 915e6) - 31.7).abs() < 0.2);
        assert!((free_space_db(1000.0, 915e6) - 91.7).abs() < 0.2);
        // 2.44 GHz at 10 m ≈ 60.2 dB
        assert!((free_space_db(10.0, 2.44e9) - 60.2).abs() < 0.3);
    }

    #[test]
    fn median_monotone_in_distance() {
        let m = LogDistance::campus_915mhz();
        let mut prev = 0.0;
        for d in [1.0, 10.0, 100.0, 1000.0, 2000.0] {
            let pl = m.median_path_loss_db(d);
            assert!(pl > prev);
            prev = pl;
        }
    }

    #[test]
    fn campus_model_range_sanity() {
        // at 14 dBm TX, a node 1 km away should sit near LoRa sensitivity:
        // PL(1km) = 31.7 + 29*3 = 118.7 dB → RSSI ≈ −104.7 dBm (median)
        let m = LogDistance::campus_915mhz();
        let rssi = m.rssi_dbm(14.0, 0.0, 1000.0, 0.0);
        assert!(rssi < -95.0 && rssi > -115.0, "rssi {rssi}");
        // 2 km is marginal even for SF8/BW500 (−121 dBm sensitivity)
        let rssi2 = m.rssi_dbm(14.0, 0.0, 2000.0, 0.0);
        assert!(rssi2 < rssi - 8.0);
    }

    #[test]
    fn shadow_statistics() {
        let m = LogDistance::campus_915mhz();
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..20_000).map(|_| m.draw_shadow(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.15, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_disables_shadowing() {
        let m = LogDistance {
            sigma_db: 0.0,
            ..LogDistance::campus_915mhz()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.draw_shadow(&mut rng), 0.0);
    }

    #[test]
    fn link_is_reproducible() {
        let m = LogDistance::campus_915mhz();
        let a = Link::new(&m, 500.0, 77);
        let b = Link::new(&m, 500.0, 77);
        assert_eq!(a.shadow_db, b.shadow_db);
        assert!((a.rssi_dbm(&m, 14.0) - b.rssi_dbm(&m, 14.0)).abs() < 1e-12);
    }

    #[test]
    fn below_reference_distance_clamps() {
        let m = LogDistance::campus_915mhz();
        assert_eq!(m.median_path_loss_db(0.5), m.median_path_loss_db(1.0));
    }
}

//! O-QPSK modulation with half-sine pulse shaping and the
//! chip-correlation receiver (IEEE 802.15.4 §6.5, 2.4 GHz PHY).
//!
//! TX: each 4-bit symbol spreads to its 32-chip PN sequence
//! ([`crate::chips`]); even-indexed chips drive the I rail, odd-indexed
//! chips the Q rail, each as a half-sine pulse spanning two chip
//! periods, with the Q rail offset by one chip period — the classic
//! offset-QPSK/MSK structure, constant-envelope by construction, at
//! 2 Mchip/s.
//!
//! RX: noncoherent chip correlation. Each received symbol window is
//! correlated against the 16 reference chip waveforms (built by the
//! same shaper, so they carry the exact pulse overlap) and the largest
//! correlation magnitude wins — the DSSS despreading that buys the
//! 2.4 GHz PHY its processing gain.

use tinysdr_dsp::complex::Complex;

use crate::chips::{chip_sequence, CHIPS_PER_SYMBOL, CHIP_RATE};

/// Half-sine O-QPSK modulator at `spc` samples per chip.
#[derive(Debug, Clone)]
pub struct OqpskModulator {
    spc: usize,
    /// One half-sine pulse, `2·spc` samples: `sin(π·t / 2Tc)`.
    pulse: Vec<f64>,
}

impl OqpskModulator {
    /// New modulator at `spc ≥ 2` samples per chip (`spc = 2` is the
    /// AT86RF215's native 4 MS/s).
    pub fn new(spc: usize) -> Self {
        assert!(spc >= 2, "need at least 2 samples per chip");
        let n = 2 * spc;
        let pulse = (0..n)
            .map(|i| (std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        OqpskModulator { spc, pulse }
    }

    /// Samples per chip.
    pub fn spc(&self) -> usize {
        self.spc
    }

    /// Sampling rate, Hz.
    pub fn fs(&self) -> f64 {
        CHIP_RATE * self.spc as f64
    }

    /// Samples in one 32-chip symbol period.
    pub fn samples_per_symbol(&self) -> usize {
        CHIPS_PER_SYMBOL * self.spc
    }

    /// Modulate a chip stream (0/1, even length) into I/Q samples.
    /// Output length is `chips.len()·spc + spc` — the final Q half-sine
    /// extends one chip period past the last chip slot.
    pub fn modulate_chips(&self, chips: &[u8]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.modulate_chips_into(chips, &mut OqpskScratch::default(), &mut out);
        out
    }

    /// [`OqpskModulator::modulate_chips`] into a caller-owned buffer,
    /// with the I/Q rail intermediates held in `scratch` — zero
    /// steady-state allocation across a batch. Bit-identical to the
    /// allocating path.
    pub fn modulate_chips_into(
        &self,
        chips: &[u8],
        scratch: &mut OqpskScratch,
        out: &mut Vec<Complex>,
    ) {
        self.chips_core(chips, &mut scratch.i_rail, &mut scratch.q_rail, out);
    }

    fn chips_core(
        &self,
        chips: &[u8],
        i_rail: &mut Vec<f64>,
        q_rail: &mut Vec<f64>,
        out: &mut Vec<Complex>,
    ) {
        assert!(
            chips.len().is_multiple_of(2),
            "O-QPSK chips come in I/Q pairs"
        );
        let spc = self.spc;
        let n = chips.len() * spc + spc;
        i_rail.clear();
        i_rail.resize(n, 0.0);
        q_rail.clear();
        q_rail.resize(n, 0.0);
        for (k, &c) in chips.iter().enumerate() {
            let a = if c != 0 { 1.0 } else { -1.0 };
            // chip k's half-sine starts at its own chip slot; even chips
            // ride I, odd chips ride Q (the built-in Tc offset)
            let start = k * spc;
            let rail: &mut Vec<f64> = if k % 2 == 0 { i_rail } else { q_rail };
            for (j, &p) in self.pulse.iter().enumerate() {
                rail[start + j] += a * p;
            }
        }
        out.clear();
        out.extend(
            i_rail
                .iter()
                .zip(q_rail.iter())
                .map(|(&re, &im)| Complex::new(re, im)),
        );
    }

    /// Modulate 4-bit data symbols (`0..16`) through DSSS spreading.
    pub fn modulate_symbols(&self, symbols: &[u8]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.modulate_symbols_into(symbols, &mut OqpskScratch::default(), &mut out);
        out
    }

    /// [`OqpskModulator::modulate_symbols`] into a caller-owned buffer,
    /// with the chip expansion and I/Q rails held in `scratch`.
    /// Bit-identical to the allocating path.
    pub fn modulate_symbols_into(
        &self,
        symbols: &[u8],
        scratch: &mut OqpskScratch,
        out: &mut Vec<Complex>,
    ) {
        let OqpskScratch {
            chips,
            i_rail,
            q_rail,
        } = scratch;
        chips.clear();
        for &s in symbols {
            chips.extend_from_slice(&chip_sequence(s));
        }
        self.chips_core(chips, i_rail, q_rail, out);
    }
}

/// Reusable intermediates for the O-QPSK modulator's `*_into` paths:
/// the DSSS chip expansion and the two pulse-shaped rails. One per
/// worker thread (or batch) is enough.
#[derive(Debug, Clone, Default)]
pub struct OqpskScratch {
    chips: Vec<u8>,
    i_rail: Vec<f64>,
    q_rail: Vec<f64>,
}

impl OqpskScratch {
    /// Fresh scratch; buffers grow lazily.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Noncoherent chip-correlation receiver.
#[derive(Debug, Clone)]
pub struct OqpskDemodulator {
    spc: usize,
    /// The 16 single-symbol reference waveforms.
    templates: Vec<Vec<Complex>>,
}

impl OqpskDemodulator {
    /// Receiver at `spc` samples per chip (must match the transmitter).
    pub fn new(spc: usize) -> Self {
        let m = OqpskModulator::new(spc);
        let templates = (0..16u8).map(|s| m.modulate_symbols(&[s])).collect();
        OqpskDemodulator { spc, templates }
    }

    /// Samples per chip.
    pub fn spc(&self) -> usize {
        self.spc
    }

    /// Samples in one 32-chip symbol period.
    pub fn samples_per_symbol(&self) -> usize {
        CHIPS_PER_SYMBOL * self.spc
    }

    /// Detect one aligned symbol window: the index of the chip sequence
    /// with the largest `|correlation|` (noncoherent — invariant to the
    /// capture's carrier phase), plus that magnitude.
    pub fn detect_symbol(&self, window: &[Complex]) -> (u8, f64) {
        let mut best = (0u8, f64::MIN);
        for (s, t) in self.templates.iter().enumerate() {
            // zip stops at the shorter of window/template — the same
            // pairs, in the same order, as the indexed loop with its
            // explicit bounds check
            let mut c = Complex::ZERO;
            for (&x, &tv) in window.iter().zip(t) {
                c += x * tv.conj();
            }
            let m = c.norm_sqr();
            if m > best.1 {
                best = (s as u8, m);
            }
        }
        best
    }

    /// Demodulate an *aligned* capture into 4-bit symbols, one per full
    /// 32-chip window.
    pub fn demodulate_symbols(&self, x: &[Complex]) -> Vec<u8> {
        let mut out = Vec::new();
        self.demodulate_symbols_into(x, &mut out);
        out
    }

    /// [`OqpskDemodulator::demodulate_symbols`] into a caller-owned
    /// buffer (cleared first) — allocation-free in steady state,
    /// bit-identical to the allocating path.
    pub fn demodulate_symbols_into(&self, x: &[Complex], out: &mut Vec<u8>) {
        let ns = self.samples_per_symbol();
        let n_syms = x.len() / ns;
        out.clear();
        out.reserve(n_syms);
        out.extend((0..n_syms).map(|i| {
            // include the half-chip spill-over past the window when
            // the capture still has it — the last Q pulse carries
            // real symbol energy
            let end = ((i + 1) * ns + self.spc).min(x.len());
            self.detect_symbol(&x[i * ns..end]).0
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tinysdr_rf::channel::AwgnChannel;

    fn random_symbols(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..16u8)).collect()
    }

    #[test]
    fn waveform_length_and_rates() {
        let m = OqpskModulator::new(2);
        assert_eq!(m.fs(), 4e6);
        assert_eq!(m.samples_per_symbol(), 64);
        let sig = m.modulate_symbols(&[0, 1, 2]);
        assert_eq!(sig.len(), 3 * 64 + 2);
    }

    #[test]
    fn envelope_is_constant_in_steady_state() {
        // MSK property: after the first chip period and before the last,
        // |s|² = sin² + cos² = 1
        let m = OqpskModulator::new(4);
        let sig = m.modulate_symbols(&random_symbols(8, 3));
        let spc = 4;
        for z in &sig[spc..sig.len() - spc] {
            assert!((z.abs() - 1.0).abs() < 1e-9, "|s| = {}", z.abs());
        }
    }

    #[test]
    fn into_variants_are_bit_identical() {
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let mut scratch = OqpskScratch::new();
        let mut wave = Vec::new();
        let mut rx = Vec::new();
        // reuse scratch across streams of different lengths
        for (n, seed) in [(16usize, 3u64), (64, 5), (7, 8)] {
            let syms = random_symbols(n, seed);
            m.modulate_symbols_into(&syms, &mut scratch, &mut wave);
            assert_eq!(wave, m.modulate_symbols(&syms), "{n} symbols");
            d.demodulate_symbols_into(&wave, &mut rx);
            assert_eq!(rx, d.demodulate_symbols(&wave), "{n} symbols");
        }
        // raw chip path too
        let chips = [1u8, 0, 0, 1, 1, 1, 0, 0];
        m.modulate_chips_into(&chips, &mut scratch, &mut wave);
        assert_eq!(wave, m.modulate_chips(&chips));
    }

    #[test]
    fn clean_loopback_recovers_symbols() {
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let syms = random_symbols(64, 7);
        let rx = d.demodulate_symbols(&m.modulate_symbols(&syms));
        assert_eq!(rx, syms);
    }

    #[test]
    fn loopback_survives_a_carrier_phase_rotation() {
        // noncoherent detection: a constant phase offset must not matter
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let syms = random_symbols(32, 9);
        let rot = Complex::from_angle(1.1);
        let sig: Vec<Complex> = m
            .modulate_symbols(&syms)
            .into_iter()
            .map(|z| z * rot)
            .collect();
        assert_eq!(d.demodulate_symbols(&sig), syms);
    }

    #[test]
    fn loopback_at_high_snr_is_clean() {
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let syms = random_symbols(128, 11);
        let mut sig = m.modulate_symbols(&syms);
        let mut ch = AwgnChannel::new(4.5, 5);
        ch.apply(&mut sig, -70.0, m.fs());
        assert_eq!(d.demodulate_symbols(&sig), syms);
    }

    #[test]
    fn ser_transitions_with_rssi() {
        // DSSS processing gain: clean at −90 dBm, chance-level deep
        // below the noise floor
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let syms = random_symbols(256, 13);
        let base = m.modulate_symbols(&syms);
        let ser = |rssi: f64, seed: u64| {
            let mut sig = base.clone();
            let mut ch = AwgnChannel::new(10.0, seed);
            ch.apply(&mut sig, rssi, m.fs());
            let rx = d.demodulate_symbols(&sig);
            rx.iter().zip(&syms).filter(|(a, b)| a != b).count() as f64 / syms.len() as f64
        };
        assert_eq!(ser(-90.0, 1), 0.0, "clean at -90 dBm");
        assert!(ser(-115.0, 2) > 0.5, "chance-level far below the floor");
    }
}

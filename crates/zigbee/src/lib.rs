//! # tinysdr-zigbee
//!
//! IEEE 802.15.4 O-QPSK PHY (2.4 GHz, 250 kb/s) — the third protocol of
//! the TinySDR reproduction and the proof of the paper's §2 claim that
//! the platform hosts "any IoT protocol" up to a 2 MHz bandwidth:
//! Zigbee rides the same AT86RF215 I/Q path as BLE, and its modem plugs
//! into the same [`tinysdr_rf::phy::PhyModem`] seam as LoRa and GFSK.
//!
//! * [`chips`] — the 16×32 DSSS chip table of IEEE 802.15.4-2006
//!   Table 73, generated from its rotation/conjugation structure and
//!   pinned against spec rows.
//! * [`oqpsk`] — half-sine O-QPSK at 2 Mchip/s (constant envelope, the
//!   MSK-equivalent structure) and the noncoherent chip-correlation
//!   receiver that despreads it.
//! * [`modem`] — [`modem::ZigbeePhy`], the [`tinysdr_rf::phy::PhyModem`]
//!   implementor wired into the PHY registry, the conformance
//!   waterfalls and the device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chips;
pub mod modem;
pub mod oqpsk;

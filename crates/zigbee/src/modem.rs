//! [`PhyModem`] implementor for the 802.15.4 O-QPSK PHY.
//!
//! [`ZigbeePhy`] is the third protocol of the registry — the proof that
//! the [`PhyModem`] seam carries a PHY the workspace never shipped
//! before. Frame bytes map to 4-bit symbols low-nibble-first (the
//! 802.15.4 octet order), spread to 32-chip PN sequences, and ride a
//! half-sine O-QPSK waveform at 2 Mchip/s; the receiver despreads by
//! chip correlation. Error unit = 4-bit DSSS symbol.

use tinysdr_dsp::complex::Complex;
use tinysdr_rf::phy::{unit_errors_between, DemodResult, ErrorCount, PhyModem};

use crate::chips::CHIP_RATE;
use crate::oqpsk::{OqpskDemodulator, OqpskModulator, OqpskScratch};

/// 802.15.4 channel 19's carrier, Hz (2405 + 5·(19−11) MHz).
pub const ZIGBEE_CENTER_HZ: f64 = 2.445e9;

/// Spec receiver-sensitivity floor, dBm: IEEE 802.15.4 §6.5.3.3
/// requires ≤ −85 dBm at 1% PER.
pub const SPEC_SENSITIVITY_DBM: f64 = -85.0;

/// Typical 2.4 GHz silicon sensitivity, dBm (CC2538/AT86RF233-class
/// datasheets quote −97 to −101; we anchor at the conservative end).
pub const SILICON_SENSITIVITY_DBM: f64 = -97.0;

/// Effective receiver noise figure, dB — calibrated (like the BLE
/// modem's CC2650 figure) so the chip-correlation receiver's measured
/// 1%-SER point lands on the ≈ −97 dBm silicon anchor rather than the
/// correlator's theoretical limit; the gap absorbs the implementation
/// losses (channel filtering, sync jitter, finite AGC) real 802.15.4
/// radios carry. Recorded in EXPERIMENTS.md.
pub const ZIGBEE_NOISE_FIGURE_DB: f64 = 17.8;

/// Unpack bytes into 4-bit symbols, low nibble first (802.15.4 octet
/// order).
pub fn bytes_to_symbols(frame: &[u8]) -> Vec<u8> {
    frame.iter().flat_map(|&b| [b & 0x0F, b >> 4]).collect()
}

/// Pack 4-bit symbols back into bytes, low nibble first; a trailing
/// unpaired nibble is zero-padded.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; symbols.len().div_ceil(2)];
    for (i, &s) in symbols.iter().enumerate() {
        out[i / 2] |= (s & 0x0F) << (4 * (i % 2));
    }
    out
}

/// The 802.15.4 O-QPSK DSSS modem as a [`PhyModem`].
#[derive(Debug, Clone)]
pub struct ZigbeePhy {
    spc: usize,
    modulator: OqpskModulator,
    demod: OqpskDemodulator,
}

impl ZigbeePhy {
    /// New modem at `spc` samples per chip (`spc = 2` → 4 MS/s, the
    /// AT86RF215's native I/Q rate).
    pub fn new(spc: usize) -> Self {
        ZigbeePhy {
            spc,
            modulator: OqpskModulator::new(spc),
            demod: OqpskDemodulator::new(spc),
        }
    }

    /// Samples per chip.
    pub fn spc(&self) -> usize {
        self.spc
    }
}

impl Default for ZigbeePhy {
    fn default() -> Self {
        Self::new(2)
    }
}

impl PhyModem for ZigbeePhy {
    fn label(&self) -> String {
        "802.15.4 OQPSK".to_string()
    }

    fn sample_rate_hz(&self) -> f64 {
        self.modulator.fs()
    }

    /// The O-QPSK main lobe spans the chip rate.
    fn occupied_bw_hz(&self) -> f64 {
        CHIP_RATE
    }

    fn noise_figure_db(&self) -> f64 {
        ZIGBEE_NOISE_FIGURE_DB
    }

    fn sensitivity_anchor_dbm(&self) -> f64 {
        SILICON_SENSITIVITY_DBM
    }

    fn center_frequency_hz(&self) -> f64 {
        ZIGBEE_CENTER_HZ
    }

    fn modulate(&self, frame: &[u8]) -> Vec<Complex> {
        self.modulator.modulate_symbols(&bytes_to_symbols(frame))
    }

    fn demodulate(&self, iq: &[Complex]) -> DemodResult {
        let syms = self.demod.demodulate_symbols(iq);
        let bytes = symbols_to_bytes(&syms);
        let units = syms.into_iter().map(u16::from).collect();
        DemodResult::stream(bytes, units)
    }

    /// Native unit: 4-bit DSSS symbols. Lost symbols (truncated
    /// capture) count as errors.
    fn count_errors(&self, tx_frame: &[u8], rx: &DemodResult) -> ErrorCount {
        let tx: Vec<u16> = bytes_to_symbols(tx_frame)
            .into_iter()
            .map(u16::from)
            .collect();
        unit_errors_between(&tx, &rx.units)
    }

    /// Batch override: the chip-expansion and I/Q-rail scratch is
    /// shared across the batch. Bit-identical to the default.
    fn modulate_batch(&self, frames: &[&[u8]], out: &mut Vec<Vec<Complex>>) {
        let mut scratch = OqpskScratch::new();
        out.resize_with(frames.len(), Vec::new);
        for (frame, wave) in frames.iter().zip(out.iter_mut()) {
            self.modulator
                .modulate_symbols_into(&bytes_to_symbols(frame), &mut scratch, wave);
        }
    }

    /// Batch override: one symbol buffer reused across captures.
    /// Bit-identical to looping `demodulate`.
    fn demodulate_batch(&self, waveforms: &[&[Complex]]) -> Vec<DemodResult> {
        let mut syms = Vec::new();
        waveforms
            .iter()
            .map(|iq| {
                self.demod.demodulate_symbols_into(iq, &mut syms);
                let bytes = symbols_to_bytes(&syms);
                let units = syms.iter().map(|&s| u16::from(s)).collect();
                DemodResult::stream(bytes, units)
            })
            .collect()
    }

    fn clone_box(&self) -> Box<dyn PhyModem> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_packing_round_trips() {
        let frame: Vec<u8> = (0..23).map(|i| (i * 53 + 1) as u8).collect();
        assert_eq!(symbols_to_bytes(&bytes_to_symbols(&frame)), frame);
        assert_eq!(bytes_to_symbols(&[0xA5]), vec![0x5, 0xA]);
        // unpaired nibble zero-padded
        assert_eq!(symbols_to_bytes(&[0x7]), vec![0x07]);
    }

    #[test]
    fn clean_roundtrip_is_lossless() {
        let phy = ZigbeePhy::new(2);
        let frame: Vec<u8> = (0..32).map(|i| (i * 97 + 13) as u8).collect();
        let rx = phy.demodulate(&phy.modulate(&frame));
        let c = phy.count_errors(&frame, &rx);
        assert_eq!(c.trials, 64);
        assert!(
            c.is_clean(),
            "{} symbol errors on a clean channel",
            c.errors
        );
        assert_eq!(rx.bytes, frame);
        assert_eq!(rx.frame_ok, None);
    }

    #[test]
    fn metadata_matches_the_2450mhz_phy() {
        let phy = ZigbeePhy::default();
        assert_eq!(phy.label(), "802.15.4 OQPSK");
        assert_eq!(phy.sample_rate_hz(), 4e6);
        assert_eq!(phy.occupied_bw_hz(), 2e6);
        assert_eq!(phy.sensitivity_anchor_dbm(), SILICON_SENSITIVITY_DBM);
        assert!(phy.sensitivity_anchor_dbm() < SPEC_SENSITIVITY_DBM);
        assert_eq!(phy.center_frequency_hz(), 2.445e9);
    }

    #[test]
    fn truncated_capture_loses_symbols_as_errors() {
        let phy = ZigbeePhy::new(2);
        let frame = vec![0x3Cu8; 10]; // 20 symbols
        let tx = phy.modulate(&frame);
        let rx = phy.demodulate(&tx[..tx.len() / 2]);
        let c = phy.count_errors(&frame, &rx);
        assert_eq!(c.trials, 20);
        assert!(c.errors >= 10, "errors {}", c.errors);
    }

    #[test]
    fn batch_overrides_are_bit_identical_to_scalar_paths() {
        let phy = ZigbeePhy::new(2);
        let frames: Vec<Vec<u8>> = vec![
            (0..32).map(|i| (i * 97 + 13) as u8).collect(),
            vec![0x3C; 10],
            vec![0xA5],
        ];
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let mut waves = Vec::new();
        phy.modulate_batch(&refs, &mut waves);
        for (frame, wave) in refs.iter().zip(&waves) {
            assert_eq!(*wave, phy.modulate(frame));
        }
        let slices: Vec<&[Complex]> = waves.iter().map(|w| w.as_slice()).collect();
        let batch = phy.demodulate_batch(&slices);
        for (iq, rx) in slices.iter().zip(&batch) {
            assert_eq!(*rx, phy.demodulate(iq));
        }
    }

    #[test]
    fn airtime_reflects_the_250kbps_rate() {
        // 25 bytes = 50 symbols at 62.5 ksym/s = 0.8 ms
        let phy = ZigbeePhy::new(2);
        let t = phy.airtime_s(&[0u8; 25]);
        assert!((t - 0.8e-3).abs() < 0.05e-3, "airtime {t} s");
    }
}

//! The 802.15.4 2.4 GHz DSSS chip table (IEEE 802.15.4-2006 Table 73).
//!
//! Each 4-bit data symbol maps to a 32-chip pseudo-noise sequence. The
//! table has closed structure: symbols 1–7 are successive 4-chip cyclic
//! right rotations of symbol 0's sequence, and symbols 8–15 are symbols
//! 0–7 with every odd-indexed chip inverted (the odd chips ride the Q
//! rail, so this is the quadrature-conjugate half of the set). We
//! generate the table from that structure and pin spec rows in tests.

/// Chips per symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;
/// Data symbols (4 bits each).
pub const N_SYMBOLS: usize = 16;
/// Chip rate, chip/s (2.4 GHz O-QPSK PHY).
pub const CHIP_RATE: f64 = 2e6;
/// Symbol rate, symbol/s (32 chips per symbol).
pub const SYMBOL_RATE: f64 = CHIP_RATE / CHIPS_PER_SYMBOL as f64;
/// Data rate, bit/s (4 bits per symbol).
pub const BIT_RATE: f64 = SYMBOL_RATE * 4.0;

/// Symbol 0's chip sequence, `c0..c31` (Table 73 row 0).
pub const SYMBOL_0_CHIPS: [u8; 32] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// The chip sequence for a data symbol `0..16`.
///
/// # Panics
/// Panics if `symbol >= 16`.
pub fn chip_sequence(symbol: u8) -> [u8; CHIPS_PER_SYMBOL] {
    assert!(
        (symbol as usize) < N_SYMBOLS,
        "802.15.4 symbols are 4 bits, got {symbol}"
    );
    let mut seq = SYMBOL_0_CHIPS;
    for _ in 0..(symbol & 0x7) {
        seq = rotate_right_4(&seq);
    }
    if symbol >= 8 {
        for i in (1..CHIPS_PER_SYMBOL).step_by(2) {
            seq[i] ^= 1;
        }
    }
    seq
}

/// Cyclic right rotation by 4 chips.
fn rotate_right_4(seq: &[u8; CHIPS_PER_SYMBOL]) -> [u8; CHIPS_PER_SYMBOL] {
    let mut out = [0u8; CHIPS_PER_SYMBOL];
    for (i, &c) in seq.iter().enumerate() {
        out[(i + 4) % CHIPS_PER_SYMBOL] = c;
    }
    out
}

/// Hamming distance between two chip sequences.
pub fn chip_distance(a: &[u8; CHIPS_PER_SYMBOL], b: &[u8; CHIPS_PER_SYMBOL]) -> u32 {
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_str(s: &[u8; 32]) -> String {
        s.iter().map(|&c| char::from(b'0' + c)).collect()
    }

    #[test]
    fn spec_rows_pin_the_generated_table() {
        // IEEE 802.15.4-2006 Table 73, rows 0, 1, 8 and 15
        assert_eq!(
            seq_str(&chip_sequence(0)),
            "11011001110000110101001000101110"
        );
        assert_eq!(
            seq_str(&chip_sequence(1)),
            "11101101100111000011010100100010"
        );
        assert_eq!(
            seq_str(&chip_sequence(8)),
            "10001100100101100000011101111011"
        );
        assert_eq!(
            seq_str(&chip_sequence(15)),
            "11001001011000000111011110111000"
        );
    }

    #[test]
    fn sequences_are_distinct_and_well_separated() {
        let table: Vec<_> = (0..16u8).map(chip_sequence).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let d = chip_distance(&table[i], &table[j]);
                assert!(
                    d >= 12,
                    "symbols {i}/{j} separated by only {d} chips (spec set is quasi-orthogonal)"
                );
            }
        }
    }

    #[test]
    fn sequences_are_balanced_to_within_two_chips() {
        for s in 0..16u8 {
            let ones: u32 = chip_sequence(s).iter().map(|&c| c as u32).sum();
            assert!((15..=17).contains(&ones), "symbol {s}: {ones} ones");
        }
    }

    #[test]
    #[should_panic(expected = "4 bits")]
    fn out_of_range_symbol_panics() {
        chip_sequence(16);
    }

    #[test]
    fn rates_are_the_2450mhz_phy() {
        assert_eq!(CHIP_RATE, 2e6);
        assert_eq!(SYMBOL_RATE, 62_500.0);
        assert_eq!(BIT_RATE, 250e3);
    }
}

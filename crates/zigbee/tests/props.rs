//! Property-based invariants for the 802.15.4 O-QPSK PHY, mirroring
//! the LoRa/GFSK modem properties from the conformance-harness PR.

use proptest::prelude::*;
use tinysdr_rf::channel::AwgnChannel;
use tinysdr_rf::phy::PhyModem;
use tinysdr_zigbee::chips::{chip_sequence, CHIPS_PER_SYMBOL};
use tinysdr_zigbee::modem::{bytes_to_symbols, symbols_to_bytes, ZigbeePhy};
use tinysdr_zigbee::oqpsk::{OqpskDemodulator, OqpskModulator};

proptest! {
    /// Nibble packing is the identity for any byte frame.
    #[test]
    fn nibble_packing_identity(frame in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(symbols_to_bytes(&bytes_to_symbols(&frame)), frame);
    }

    /// modulate → demodulate over a clean channel is lossless for any
    /// frame and supported sample rate.
    #[test]
    fn clean_roundtrip_any_frame(
        frame in prop::collection::vec(any::<u8>(), 1..48),
        spc in 2usize..=4,
    ) {
        let phy = ZigbeePhy::new(spc);
        let rx = phy.demodulate(&phy.modulate(&frame));
        let c = phy.count_errors(&frame, &rx);
        prop_assert_eq!(c.trials, 2 * frame.len() as u64);
        prop_assert!(c.is_clean(), "{} symbol errors", c.errors);
        prop_assert_eq!(rx.bytes, frame);
    }

    /// The roundtrip stays lossless at high SNR (−75 dBm is ~22 dB
    /// above the calibrated sensitivity) and under a random constant
    /// carrier phase — the noncoherent correlator's whole job.
    #[test]
    fn high_snr_roundtrip_with_phase(
        frame in prop::collection::vec(any::<u8>(), 1..32),
        seed in any::<u64>(),
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let phy = ZigbeePhy::new(2);
        let rot = tinysdr_dsp::complex::Complex::from_angle(phase);
        let mut sig: Vec<_> = phy.modulate(&frame).into_iter().map(|z| z * rot).collect();
        let mut ch = AwgnChannel::new(phy.noise_figure_db(), seed);
        ch.apply(&mut sig, -75.0, phy.sample_rate_hz());
        let c = phy.count_errors(&frame, &phy.demodulate(&sig));
        prop_assert!(c.is_clean(), "{} errors at -75 dBm", c.errors);
    }

    /// Chip-sequence structure: every symbol's sequence despreads to
    /// itself through the correlator even when embedded mid-stream.
    #[test]
    fn every_symbol_detected_in_context(sym in 0u8..16, left in 0u8..16, right in 0u8..16) {
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let rx = d.demodulate_symbols(&m.modulate_symbols(&[left, sym, right]));
        prop_assert_eq!(rx, vec![left, sym, right]);
    }

    /// A single chip flip never flips the despread symbol: 32-chip
    /// sequences are ≥ 12 chips apart, so one bad chip leaves the
    /// correct sequence closest.
    #[test]
    fn one_chip_error_is_absorbed(sym in 0u8..16, hit in 0usize..CHIPS_PER_SYMBOL) {
        let m = OqpskModulator::new(2);
        let d = OqpskDemodulator::new(2);
        let mut chips = chip_sequence(sym);
        chips[hit] ^= 1;
        let sig = m.modulate_chips(&chips);
        prop_assert_eq!(d.detect_symbol(&sig).0, sym);
    }
}

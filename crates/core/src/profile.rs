//! Calibrated operating-point power profile (paper §5.1–§5.2).
//!
//! These are the battery-referred platform totals the paper measures
//! with a Fluke 287. Each is *computed* from the component calibrations
//! in the substrate crates — the radio model (`tinysdr-rf`), the fabric
//! power model (`tinysdr-fpga`) and the MCU model (`tinysdr-hw`) — so a
//! change to any calibration propagates here and the tests catch drift
//! against the paper's numbers.

use tinysdr_fpga::power as fpga_power;
use tinysdr_hw::mcu::McuMode;
use tinysdr_lora::fpga_map;
use tinysdr_power::state::{PowerState, StatePower, TransitionCost};
use tinysdr_rf::at86rf215;

/// Platform operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatingPoint {
    /// Everything gated, MCU in LPM3 with the wakeup timer (§5.1).
    Sleep,
    /// Single-tone TX at a given output power and band (Fig. 9).
    SingleTone {
        /// RF output power, dBm ×10 (integer for Eq/Hash; -140..=140).
        deci_dbm: i16,
        /// `true` for the 2.4 GHz path.
        band_2g4: bool,
    },
    /// LoRa packet transmission at 14 dBm (§5.2: 287 mW).
    LoRaTx,
    /// LoRa packet reception (§5.2: 186 mW).
    LoRaRx,
    /// BLE beacon transmission at 0 dBm.
    BleTx,
    /// Concurrent two-configuration LoRa reception (§6: 207 mW).
    ConcurrentRx,
}

/// Single-tone generator fabric cost: NCO + serializer + control, LUTs.
const SINGLE_TONE_LUTS: u32 = 520;

/// Platform power at an operating point, mW (battery-referred).
pub fn platform_power_mw(op: OperatingPoint) -> f64 {
    let mcu_active = McuMode::Active.supply_power_mw();
    match op {
        OperatingPoint::Sleep => {
            let mut pmu = tinysdr_power::pmu::Pmu::new();
            pmu.enter_sleep()
        }
        OperatingPoint::SingleTone { deci_dbm, band_2g4 } => {
            let p = deci_dbm as f64 / 10.0;
            let radio = if band_2g4 {
                at86rf215::power::tx_mw_2g4(p)
            } else {
                at86rf215::power::tx_mw(p)
            };
            radio + fpga_power::running_mw(SINGLE_TONE_LUTS) + mcu_active
        }
        OperatingPoint::LoRaTx => {
            at86rf215::power::tx_mw(14.0)
                + fpga_power::running_mw(fpga_map::lora_tx_design().total_luts())
                + mcu_active
        }
        OperatingPoint::LoRaRx => {
            at86rf215::power::RX_MW
                + fpga_power::running_mw(fpga_map::lora_rx_design(8).total_luts())
                + mcu_active
        }
        OperatingPoint::BleTx => {
            at86rf215::power::tx_mw_2g4(0.0) + fpga_power::running_mw(820) + mcu_active
        }
        OperatingPoint::ConcurrentRx => {
            at86rf215::power::RX_MW
                + fpga_power::running_mw(fpga_map::concurrent_rx_design().total_luts())
                + mcu_active
        }
    }
}

/// The radio's share at an operating point, mW — the paper reports these
/// attributions ("287 mW from which 179 mW is for the radio").
pub fn radio_power_mw(op: OperatingPoint) -> f64 {
    match op {
        OperatingPoint::Sleep => at86rf215::power::SLEEP_MW,
        OperatingPoint::SingleTone { deci_dbm, band_2g4 } => {
            let p = deci_dbm as f64 / 10.0;
            if band_2g4 {
                at86rf215::power::tx_mw_2g4(p)
            } else {
                at86rf215::power::tx_mw(p)
            }
        }
        OperatingPoint::LoRaTx => at86rf215::power::tx_mw(14.0),
        OperatingPoint::BleTx => at86rf215::power::tx_mw_2g4(0.0),
        OperatingPoint::LoRaRx | OperatingPoint::ConcurrentRx => at86rf215::power::RX_MW,
    }
}

/// The calibrated per-state power profile of a TinySDR device running a
/// design of `active_luts` LUTs — every state of the
/// [`tinysdr_power::state`] machine priced from the same component
/// models as [`platform_power_mw`]:
///
/// * `DeepSleep` / `Sleep` come from the PMU/regulator summation
///   ([`StatePower::baseline`]) — the 30 µW floor and the mW-class
///   LPM0 doze;
/// * `Idle` / `RxActive` / `TxActive` are the §5.2 battery-referred
///   compositions (radio + fabric at `active_luts` + MCU);
/// * `FpgaProgram` is the QSPI configuration burst, `FlashWrite` the
///   external-flash page-program draw;
/// * transition costs carry Table 4: the 22 ms FPGA boot (at
///   configuration power) out of deep sleep, the 1.2 ms radio setup
///   into RX/TX, and the 45 µs / 11 µs TRX switches.
pub fn device_state_power(active_luts: u32) -> StatePower {
    let mcu_active = McuMode::Active.supply_power_mw();
    let fabric = fpga_power::running_mw(active_luts);
    let boot_ns = tinysdr_fpga::config::configuration_time_ns();
    let boot_mj = fpga_power::CONFIGURING_MW * boot_ns as f64 / 1e9;
    let radio_setup = TransitionCost {
        latency_ns: at86rf215::timing::RADIO_SETUP_NS,
        energy_mj: 0.0,
    };
    StatePower::baseline()
        .with_state_mw(
            PowerState::Idle,
            10.0 + fabric.min(fpga_power::STATIC_MW) + mcu_active,
        )
        .with_state_mw(
            PowerState::RxActive,
            at86rf215::power::RX_MW + fabric + mcu_active,
        )
        .with_state_mw(
            PowerState::TxActive,
            at86rf215::power::tx_mw(at86rf215::MAX_TX_POWER_DBM) + fabric + mcu_active,
        )
        .with_state_mw(
            PowerState::FpgaProgram,
            fpga_power::CONFIGURING_MW + mcu_active,
        )
        .with_state_mw(
            PowerState::FlashWrite,
            tinysdr_hw::flash::power::PROGRAM_MW + mcu_active,
        )
        .with_transition_cost(
            PowerState::DeepSleep,
            PowerState::Idle,
            TransitionCost {
                latency_ns: boot_ns,
                energy_mj: boot_mj,
            },
        )
        .with_transition_cost(PowerState::Idle, PowerState::RxActive, radio_setup)
        .with_transition_cost(PowerState::Idle, PowerState::TxActive, radio_setup)
        .with_transition_cost(
            PowerState::RxActive,
            PowerState::TxActive,
            TransitionCost {
                latency_ns: at86rf215::timing::RX_TO_TX_NS,
                energy_mj: 0.0,
            },
        )
        .with_transition_cost(
            PowerState::TxActive,
            PowerState::RxActive,
            TransitionCost {
                latency_ns: at86rf215::timing::TX_TO_RX_NS,
                energy_mj: 0.0,
            },
        )
    // remaining legal edges (Idle ⇄ FpgaProgram/FlashWrite/Sleep…) are
    // deliberately unpriced: StatePower treats them as ZERO-cost, and
    // their real costs are the dwells inside those states
}

/// The Fig. 9 sweep: platform power vs radio output power for one band.
pub fn fig9_curve(band_2g4: bool) -> Vec<(f64, f64)> {
    (-14..=14)
        .step_by(2)
        .map(|p| {
            let op = OperatingPoint::SingleTone {
                deci_dbm: (p * 10) as i16,
                band_2g4,
            };
            (p as f64, platform_power_mw(op))
        })
        .collect()
}

/// BLE beaconing battery life (the §5.2 claim: "it could run for over 2
/// years on a 1000 mAh battery when transmitting once per second").
///
/// The FPGA keeps its configuration (SRAM retained, clock gated between
/// events) so a beacon event costs only the radio bursts plus the fabric
/// wake; the platform returns to the 30 µW floor between beacons.
/// `channels` is the number of advertising channels per event: the
/// paper's ">2 years … transmitting once per second" measurement matches
/// single-channel beaconing (≈4 years here); a full 3-channel event
/// lands at ≈1.7 years — the claim sits between the two, consistent with
/// a short-duration extrapolated measurement (see EXPERIMENTS.md).
///
/// # Panics
/// Panics when `channels` is outside 1..=3 or the beacon pattern is
/// unrealizable (non-positive period or draw) — both are caller bugs.
pub fn ble_beacon_battery_years(interval_s: f64, channels: usize) -> f64 {
    use tinysdr_power::battery::Battery;
    use tinysdr_power::duty::DutyCycle;
    assert!((1..=3).contains(&channels));
    // 30-byte beacon burst = 240 µs on air, 220 µs hop gap between
    let burst_s = 240e-6;
    let event_active_s = channels as f64 * burst_s + (channels - 1) as f64 * 220e-6;
    // during hop gaps the radio is retuning (idle-class power), the
    // fabric stays up; approximate the whole event at TX power minus the
    // PA share during gaps — dominated by bursts anyway
    let d = DutyCycle {
        period_s: interval_s,
        active_s: event_active_s,
        active_mw: platform_power_mw(OperatingPoint::BleTx),
        sleep_mw: platform_power_mw(OperatingPoint::Sleep),
        // radio wake from standby (no FPGA reboot): ~1.2 ms at idle-class
        // power plus regulator ramp
        wakeup_mj: 0.02,
    };
    d.battery_life_years(&Battery::lipo_1000mah())
        .expect("beacon pattern is realizable: positive period and draw")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_is_30uw() {
        let p = platform_power_mw(OperatingPoint::Sleep);
        assert!((p * 1000.0 - 30.0).abs() < 3.0, "sleep {} µW", p * 1000.0);
    }

    #[test]
    fn fig9_anchors() {
        // §5.1: "TinySDR consumes 231 mW when transmitting at 0 dBm …
        // 283 mW at its 14 dBm setting"
        let p0 = platform_power_mw(OperatingPoint::SingleTone {
            deci_dbm: 0,
            band_2g4: false,
        });
        let p14 = platform_power_mw(OperatingPoint::SingleTone {
            deci_dbm: 140,
            band_2g4: false,
        });
        assert!((p0 - 231.0).abs() < 10.0, "0 dBm: {p0} mW");
        assert!((p14 - 283.0).abs() < 10.0, "14 dBm: {p14} mW");
    }

    #[test]
    fn fig9_shape_flat_then_rising() {
        let curve = fig9_curve(false);
        // flat at the low end: −14 → −6 dBm changes < 3 mW
        let low_delta = curve[4].1 - curve[0].1;
        assert!(low_delta < 3.0, "low-end delta {low_delta}");
        // rising at the top: 12 → 14 dBm jumps > 5 mW
        let n = curve.len();
        let top_delta = curve[n - 1].1 - curve[n - 2].1;
        assert!(top_delta > 5.0, "top-end delta {top_delta}");
        // 2.4 GHz curve sits slightly above 900 MHz
        let c24 = fig9_curve(true);
        assert!(c24[n - 1].1 > curve[n - 1].1);
    }

    #[test]
    fn usrp_e310_comparison() {
        // "the end-to-end power consumption of the USRP E310 is 16x
        // higher under the same conditions … 15x higher [at 14 dBm]"
        let e310_0dbm = 3700.0; // W-class embedded SDR (Table 1 platform)
        let p0 = platform_power_mw(OperatingPoint::SingleTone {
            deci_dbm: 0,
            band_2g4: false,
        });
        let ratio = e310_0dbm / p0;
        assert!(ratio > 14.0 && ratio < 18.0, "E310 ratio {ratio}");
    }

    #[test]
    fn lora_operating_points_match_sec52() {
        let tx = platform_power_mw(OperatingPoint::LoRaTx);
        let rx = platform_power_mw(OperatingPoint::LoRaRx);
        assert!((tx - 287.0).abs() < 6.0, "LoRa TX {tx} mW");
        assert!((rx - 186.0).abs() < 6.0, "LoRa RX {rx} mW");
        // radio attribution ≈ 179 mW TX / 59 mW RX
        assert!((radio_power_mw(OperatingPoint::LoRaTx) - 179.0).abs() < 6.0);
        assert!((radio_power_mw(OperatingPoint::LoRaRx) - 59.0).abs() < 1.0);
    }

    #[test]
    fn concurrent_matches_sec6() {
        let p = platform_power_mw(OperatingPoint::ConcurrentRx);
        assert!((p - 207.0).abs() < 8.0, "concurrent {p} mW");
    }

    #[test]
    fn device_state_power_matches_operating_points() {
        // the state-machine profile and the operating-point table are
        // two views of the same calibration — they must agree
        let rx_luts = fpga_map::lora_rx_design(8).total_luts();
        let p = device_state_power(rx_luts);
        assert!(
            (p.state_mw(PowerState::RxActive) - platform_power_mw(OperatingPoint::LoRaRx)).abs()
                < 1e-9
        );
        let tx_luts = fpga_map::lora_tx_design().total_luts();
        let ptx = device_state_power(tx_luts);
        assert!(
            (ptx.state_mw(PowerState::TxActive) - platform_power_mw(OperatingPoint::LoRaTx)).abs()
                < 1e-9
        );
        assert!(
            (p.state_mw(PowerState::DeepSleep) - platform_power_mw(OperatingPoint::Sleep)).abs()
                < 1e-9
        );
        // ordering sanity: sleep < doze < idle < rx < tx
        assert!(p.state_mw(PowerState::DeepSleep) < p.state_mw(PowerState::Sleep));
        assert!(p.state_mw(PowerState::Sleep) < p.state_mw(PowerState::Idle));
        assert!(p.state_mw(PowerState::Idle) < p.state_mw(PowerState::RxActive));
        assert!(p.state_mw(PowerState::RxActive) < ptx.state_mw(PowerState::TxActive));
    }

    #[test]
    fn device_state_power_carries_table4_costs() {
        let p = device_state_power(2700);
        let wake = p
            .transition_cost(PowerState::DeepSleep, PowerState::Idle)
            .unwrap();
        assert!((wake.latency_ns as f64 / 1e6 - 22.0).abs() < 0.5, "22 ms");
        assert!(wake.energy_mj > 1.0 && wake.energy_mj < 1.5, "boot energy");
        let rx_tx = p
            .transition_cost(PowerState::RxActive, PowerState::TxActive)
            .unwrap();
        assert_eq!(rx_tx.latency_ns, 11_000);
        let tx_rx = p
            .transition_cost(PowerState::TxActive, PowerState::RxActive)
            .unwrap();
        assert_eq!(tx_rx.latency_ns, 45_000);
    }

    #[test]
    fn ble_beacon_runs_over_two_years() {
        let years = ble_beacon_battery_years(1.0, 1);
        assert!(years > 2.0, "BLE beacon life {years:.2} years");
        assert!(years < 8.0, "suspiciously long: {years:.2} years");
        // three-channel events are ~3× heavier: just over a year
        let years3 = ble_beacon_battery_years(1.0, 3);
        assert!(years3 > 1.0 && years3 < years, "3-channel life {years3:.2}");
    }

    #[test]
    fn faster_beaconing_shortens_life() {
        assert!(ble_beacon_battery_years(0.1, 1) < ble_beacon_battery_years(1.0, 1));
    }
}

//! The TinySDR device: Fig. 3's block diagram as a state machine.
//!
//! Composition: AT86RF215 I/Q radio, LFE5U-25F configuration controller,
//! MSP432 MCU, SX1276 backbone, PMU, programming flash — "Each of these
//! subsystems are controlled in software running on the MCU" (§3).
//!
//! The device-level timing of Table 4 falls out of the composition:
//! waking from sleep boots the FPGA from flash (22 ms) *in parallel*
//! with the radio setup (1.2 ms) — "Because we can perform the I/Q radio
//! setup in parallel with booting the FPGA, the total wakeup time for RX
//! and TX is 22 ms".

use tinysdr_fpga::config::{ConfigController, ConfigError};
use tinysdr_fpga::power as fpga_power;
use tinysdr_hw::flash::{self, Flash, ImageSlot};
use tinysdr_hw::mcu::{Mcu, McuMode};
use tinysdr_power::domains::{Component, Domain};
use tinysdr_power::energy::EnergyLedger;
use tinysdr_power::pmu::Pmu;
use tinysdr_power::state::{PowerState, PowerStateMachine};
use tinysdr_rf::at86rf215::{timing, At86Rf215, Band, RadioError, RadioState, SAMPLE_RATE_HZ};
use tinysdr_rf::phy::PhyModem;
use tinysdr_rf::sx1276::Sx1276;

use crate::profile;

/// Device-level states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// 30 µW floor: everything gated, MCU in LPM3.
    Sleep,
    /// Awake: FPGA configured and idle, radio in TRXOFF.
    Idle,
    /// Receiving on the I/Q radio.
    Receiving,
    /// Transmitting on the I/Q radio.
    Transmitting,
    /// OTA update mode: backbone radio active, FPGA off.
    Updating,
}

impl DeviceState {
    /// The [`PowerState`] this device mode occupies. `Updating` is
    /// [`PowerState::RxActive`] at the power level — the backbone
    /// radio is listening; *which* radio is a device detail (the
    /// ledger still tags update-mode dwells `"ota"`).
    pub fn power_state(self) -> PowerState {
        match self {
            DeviceState::Sleep => PowerState::DeepSleep,
            DeviceState::Idle => PowerState::Idle,
            DeviceState::Receiving | DeviceState::Updating => PowerState::RxActive,
            DeviceState::Transmitting => PowerState::TxActive,
        }
    }
}

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// Radio-level failure.
    Radio(RadioError),
    /// FPGA configuration failure.
    Config(ConfigError),
    /// Operation not valid in the current state.
    WrongState {
        /// Current device state.
        state: DeviceState,
        /// What was attempted.
        op: &'static str,
    },
    /// No bitstream stored in the requested slot.
    EmptySlot,
    /// The requested PHY exceeds what the I/Q radio path can carry.
    PhyUnsupported {
        /// The offending modem's label.
        label: String,
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Radio(e) => write!(f, "radio: {e}"),
            DeviceError::Config(e) => write!(f, "fpga: {e}"),
            DeviceError::WrongState { state, op } => {
                write!(f, "cannot {op} in state {state:?}")
            }
            DeviceError::EmptySlot => write!(f, "no image stored in that slot"),
            DeviceError::PhyUnsupported { label, reason } => {
                write!(f, "PHY {label:?} unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<RadioError> for DeviceError {
    fn from(e: RadioError) -> Self {
        DeviceError::Radio(e)
    }
}

impl From<ConfigError> for DeviceError {
    fn from(e: ConfigError) -> Self {
        DeviceError::Config(e)
    }
}

/// The device.
#[derive(Debug)]
pub struct TinySdr {
    /// I/Q radio.
    pub radio: At86Rf215,
    /// FPGA configuration controller.
    pub fpga: ConfigController,
    /// Microcontroller.
    pub mcu: Mcu,
    /// Power-management unit.
    pub pmu: Pmu,
    /// External programming flash.
    pub flash: Flash,
    /// Backbone (OTA) radio.
    pub backbone: Sx1276,
    /// The power-state machine: power-level state, simulation clock and
    /// the energy ledger (the simulated Fluke 287). Every device
    /// operation — advancing time, booting the FPGA, storing images,
    /// switching TRX — records into it.
    power: PowerStateMachine,
    state: DeviceState,
    /// LUTs of the active design (drives fabric power).
    active_luts: u32,
    /// Directory of stored images: (slot, design name, length, crc32).
    stored: Vec<(ImageSlot, String, usize, u32)>,
    /// Label of the PHY the radio path was last set up for.
    active_phy: Option<String>,
}

impl TinySdr {
    /// A fresh board: awake but unconfigured, nothing stored.
    pub fn new() -> Self {
        let mut fpga = ConfigController::new();
        fpga.power_on();
        TinySdr {
            radio: At86Rf215::new(),
            fpga,
            mcu: Mcu::new(),
            pmu: Pmu::new(),
            flash: Flash::new(),
            backbone: Sx1276::new(),
            power: PowerStateMachine::new(profile::device_state_power(0)),
            state: DeviceState::Idle,
            active_luts: 0,
            stored: Vec::new(),
            active_phy: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Current power-level state (the [`PowerState`] graph the device
    /// moves through; always the mirror of [`Self::state`] except
    /// transiently inside FPGA/flash operations).
    pub fn power_state(&self) -> PowerState {
        self.power.state()
    }

    /// The power-state machine (ledger, clock, profile).
    pub fn power(&self) -> &PowerStateMachine {
        &self.power
    }

    /// The energy ledger (the simulated Fluke 287).
    pub fn ledger(&self) -> &EnergyLedger {
        self.power.ledger()
    }

    /// A calibrated per-state power profile for the currently loaded
    /// design — the machine's own profile
    /// ([`profile::device_state_power`] at the active LUT count; the
    /// machine is the single source of truth, recalibrated whenever
    /// the design changes).
    pub fn state_power(&self) -> tinysdr_power::state::StatePower {
        self.power.profile().clone()
    }

    /// Simulation clock, nanoseconds since construction.
    pub fn clock_ns(&self) -> u64 {
        self.power.clock_ns()
    }

    /// Advance time, charging the current platform power to the ledger.
    pub fn advance(&mut self, ns: u64) {
        let p = self.platform_power_mw();
        let tag = self.power_tag();
        self.power.dwell_tagged(tag, p, ns);
    }

    /// Walk the power machine to `to` along legal zero-cost edges
    /// (directly or via `Idle`). The real costs of these moves are
    /// charged by the operations themselves — the FPGA-boot dwell in
    /// [`Self::configure_from_slot`], the switch-time dwells in
    /// [`Self::switch_trx`] — so the bookkeeping transitions are free;
    /// legality is still enforced by the machine.
    ///
    /// # Panics
    /// Panics if the power-state graph loses the "every state borders
    /// Idle" property — a bug in [`tinysdr_power::state`], not here.
    fn power_goto(&mut self, to: PowerState) {
        if self.power.state() == to {
            return;
        }
        if !self.power.state().can_transition_to(to) {
            self.power
                .transition_with(PowerState::Idle, 0, 0.0)
                .expect("every power state borders Idle");
        }
        self.power
            .transition_with(to, 0, 0.0)
            .expect("two hops reach every power state");
    }

    fn power_tag(&self) -> &'static str {
        match self.state {
            DeviceState::Sleep => "sleep",
            DeviceState::Idle => "idle",
            DeviceState::Receiving => "rx",
            DeviceState::Transmitting => "tx",
            DeviceState::Updating => "ota",
        }
    }

    /// Instantaneous platform power, mW (battery-referred calibration).
    pub fn platform_power_mw(&self) -> f64 {
        match self.state {
            DeviceState::Sleep => {
                let mut pmu = self.pmu.clone();
                pmu.enter_sleep()
            }
            DeviceState::Idle => {
                10.0 + fpga_power::running_mw(self.active_luts).min(fpga_power::STATIC_MW)
                    + self.mcu.supply_power_mw()
            }
            DeviceState::Receiving | DeviceState::Transmitting => {
                self.radio.supply_power_mw()
                    + fpga_power::running_mw(self.active_luts)
                    + self.mcu.supply_power_mw()
            }
            DeviceState::Updating => self.backbone.supply_power_mw() + self.mcu.supply_power_mw(),
        }
    }

    /// Store a firmware image into a flash slot so the FPGA can boot
    /// from it ("it allows tinySDR to store multiple FPGA bitstreams and
    /// MCU programs to quickly switch between stored protocols").
    ///
    /// The write is a real device operation: the power machine passes
    /// through [`PowerState::FlashWrite`] and the erase+program busy
    /// time is charged to the ledger (tag `"flash"`) at flash-program
    /// plus MCU power.
    ///
    /// # Errors
    /// Fails with [`DeviceError::WrongState`] while the device is in
    /// deep sleep — the flash rail (V3) is gated and the MCU is in
    /// LPM3; wake first and pay the Table 4 cost. Flash-level failures
    /// surface as `Config` errors.
    pub fn store_image(
        &mut self,
        slot: ImageSlot,
        name: &str,
        data: &[u8],
    ) -> Result<(), DeviceError> {
        assert!(data.len() <= slot.capacity(), "image exceeds slot");
        if self.state == DeviceState::Sleep {
            return Err(DeviceError::WrongState {
                state: self.state,
                op: "store image",
            });
        }
        let busy_before = self.flash.busy_ns;
        self.flash
            .erase_and_program(slot.base_addr(), data)
            .map_err(|_| DeviceError::EmptySlot)?;
        let t_flash = self.flash.busy_ns - busy_before;
        let resume = self.power.state();
        self.power_goto(PowerState::FlashWrite);
        self.power.dwell_at(
            flash::power::PROGRAM_MW + self.mcu.supply_power_mw(),
            t_flash,
        );
        self.power_goto(resume);
        let crc = tinysdr_fpga::bitstream::crc32(data);
        self.stored.retain(|(s, ..)| *s != slot);
        self.stored.push((slot, name.to_string(), data.len(), crc));
        Ok(())
    }

    /// Names of stored images.
    pub fn stored_images(&self) -> Vec<(ImageSlot, String)> {
        self.stored
            .iter()
            .map(|(s, n, ..)| (*s, n.clone()))
            .collect()
    }

    /// Configure the FPGA from a stored slot, declaring the design's LUT
    /// count (for the power model). Returns the configuration time in
    /// nanoseconds (≈ 22 ms).
    ///
    /// # Errors
    /// Fails if the slot is empty or the FPGA rejects the image.
    pub fn configure_from_slot(
        &mut self,
        slot: ImageSlot,
        design_luts: u32,
    ) -> Result<u64, DeviceError> {
        // the boot reads flash over V3 and powers the fabric over V2 —
        // both rails must be up. Keyed on the PMU (not DeviceState):
        // wake() re-enables the domains before calling here, which is
        // exactly the distinction a DeviceState::Sleep check would miss.
        if !(self.pmu.domain_on(Domain::V2) && self.pmu.domain_on(Domain::V3)) {
            return Err(DeviceError::WrongState {
                state: self.state,
                op: "configure FPGA (V2/V3 rails gated)",
            });
        }
        let (_, name, len, crc) = self
            .stored
            .iter()
            .find(|(s, ..)| *s == slot)
            .cloned()
            .ok_or(DeviceError::EmptySlot)?;
        let data = self
            .flash
            .read(slot.base_addr(), len)
            .map_err(|_| DeviceError::EmptySlot)?
            .to_vec();
        if tinysdr_fpga::bitstream::crc32(&data) != crc {
            return Err(DeviceError::Config(ConfigError::CrcMismatch));
        }
        // model the image as a bitstream for the controller (FPGA images
        // are full-size; MCU images configure nothing)
        let padded = if data.len() == tinysdr_fpga::bitstream::BITSTREAM_SIZE {
            data
        } else {
            let mut p = data;
            p.resize(tinysdr_fpga::bitstream::BITSTREAM_SIZE, 0);
            p
        };
        let image = tinysdr_fpga::bitstream::Bitstream::from_raw(&name, padded);
        self.fpga.power_on();
        let t = self.fpga.start_configuration(&image, None)?;
        // the boot is a FpgaProgram excursion on the power machine: the
        // dwell charges QSPI-burst power under the "fpga_config" tag and
        // advances the clock by the 22 ms of Table 4
        let resume = self.power.state();
        self.power_goto(PowerState::FpgaProgram);
        self.power.dwell_at(fpga_power::CONFIGURING_MW, t);
        self.power_goto(resume);
        self.fpga.tick(t);
        self.active_luts = design_luts;
        // recalibrate the machine's profile to the new design so
        // `power().profile()` agrees with `state_power()`
        self.power
            .set_profile(profile::device_state_power(design_luts));
        Ok(t)
    }

    /// Configure the device for a protocol through the [`PhyModem`]
    /// seam: boot the FPGA design from `slot` *and* set up the I/Q
    /// radio from the modem's own metadata — carrier from
    /// [`PhyModem::center_frequency_hz`], rate checked against the
    /// AT86RF215's 4 MS/s I/Q interface. This is "program any IoT PHY"
    /// as one call: the same boxed modem that sweeps waterfalls and
    /// prices campaign air time also tunes the radio.
    ///
    /// Returns the setup time in nanoseconds — the FPGA boot and the
    /// radio retune run in parallel, exactly like [`Self::wake`].
    ///
    /// # Errors
    /// Fails if the slot is empty, the FPGA rejects the image, the
    /// modem needs more than the radio's 4 MS/s, or the carrier is
    /// outside the AT86RF215 band plan.
    pub fn configure_phy(
        &mut self,
        slot: ImageSlot,
        design_luts: u32,
        phy: &dyn PhyModem,
    ) -> Result<u64, DeviceError> {
        // validate BOTH radio preconditions before touching anything —
        // a failed setup must leave the device exactly as it was (no
        // half-configured FPGA under the old carrier)
        if phy.sample_rate_hz() > SAMPLE_RATE_HZ {
            return Err(DeviceError::PhyUnsupported {
                label: phy.label(),
                reason: "sample rate exceeds the radio's 4 MS/s I/Q interface",
            });
        }
        if Band::containing(phy.center_frequency_hz()).is_none() {
            return Err(DeviceError::PhyUnsupported {
                label: phy.label(),
                reason: "carrier outside the AT86RF215 band plan",
            });
        }
        let t_fpga = self.configure_from_slot(slot, design_luts)?;
        let before = self.radio.transition_ns;
        self.radio.set_frequency(phy.center_frequency_hz())?;
        let t_radio = self.radio.transition_ns - before + timing::RADIO_SETUP_NS;
        self.active_phy = Some(phy.label());
        Ok(t_fpga.max(t_radio))
    }

    /// Label of the PHY the radio path was last configured for via
    /// [`Self::configure_phy`].
    pub fn active_phy(&self) -> Option<&str> {
        self.active_phy.as_deref()
    }

    /// Enter the 30 µW sleep state (§5.1): gate the FPGA and PAs, radio
    /// to sleep, MCU to LPM3.
    pub fn sleep(&mut self) {
        self.radio.transition(RadioState::Sleep);
        self.fpga.power_off();
        self.pmu.enter_sleep();
        self.mcu.set_mode(McuMode::Lpm3);
        self.state = DeviceState::Sleep;
        self.power_goto(PowerState::DeepSleep);
    }

    /// Wake from sleep into RX or TX. Returns the wakeup latency in
    /// nanoseconds — Table 4's 22 ms, dominated by the FPGA boot running
    /// in parallel with the 1.2 ms radio setup.
    ///
    /// # Errors
    /// Requires a previously stored FPGA image in slot 0.
    pub fn wake(&mut self, to: RadioState, design_luts: u32) -> Result<u64, DeviceError> {
        if self.state != DeviceState::Sleep {
            return Err(DeviceError::WrongState {
                state: self.state,
                op: "wake",
            });
        }
        self.mcu.set_mode(McuMode::Active);
        for d in [Domain::V2, Domain::V3, Domain::V4, Domain::V5] {
            self.pmu.set_domain(d, true);
        }
        self.pmu
            .set_load(Component::Mcu, McuMode::Active.supply_power_mw());
        // parallel: FPGA boot || radio setup
        let t_fpga = self.configure_from_slot(ImageSlot::Fpga(0), design_luts)?;
        let t_radio = self.radio.transition(to);
        let total = t_fpga.max(t_radio);
        self.state = match to {
            RadioState::Rx => DeviceState::Receiving,
            RadioState::Tx => DeviceState::Transmitting,
            _ => DeviceState::Idle,
        };
        self.power_goto(self.state.power_state());
        Ok(total)
    }

    /// Switch between RX and TX, returning the switching time (Table 4:
    /// 45 µs / 11 µs).
    ///
    /// # Errors
    /// Only valid while the I/Q radio is active.
    pub fn switch_trx(&mut self) -> Result<u64, DeviceError> {
        let (to, next) = match self.state {
            DeviceState::Receiving => (RadioState::Tx, DeviceState::Transmitting),
            DeviceState::Transmitting => (RadioState::Rx, DeviceState::Receiving),
            s => {
                return Err(DeviceError::WrongState {
                    state: s,
                    op: "switch TRX",
                })
            }
        };
        let t = self.radio.transition(to);
        self.state = next;
        self.power_goto(next.power_state());
        self.advance(t);
        Ok(t)
    }

    /// Retune the radio, returning the 220 µs frequency-switch time.
    ///
    /// # Errors
    /// Propagates out-of-band errors.
    pub fn switch_frequency(&mut self, freq_hz: f64) -> Result<u64, DeviceError> {
        let before = self.radio.transition_ns;
        self.radio.set_frequency(freq_hz)?;
        let t = self.radio.transition_ns - before;
        self.advance(t);
        Ok(t)
    }

    /// Enter OTA update mode: "periodically turn off the FPGA and switch
    /// from IQ radio mode to the backbone radio to listen for new
    /// firmware updates" (§3.4).
    pub fn enter_update_mode(&mut self) {
        self.radio.transition(RadioState::Sleep);
        self.fpga.power_off();
        self.active_luts = 0;
        self.power.set_profile(profile::device_state_power(0));
        self.backbone.state = tinysdr_rf::sx1276::Sx1276State::Rx;
        self.state = DeviceState::Updating;
        self.power_goto(PowerState::RxActive);
    }

    /// Reproduce Table 4 by exercising the state machine and measuring.
    /// Returns `(operation, milliseconds)` rows.
    ///
    /// # Errors
    /// Needs an FPGA image stored in slot 0.
    pub fn measure_table4(&mut self) -> Result<Vec<(&'static str, f64)>, DeviceError> {
        let mut rows = Vec::new();
        self.sleep();
        let wake = self.wake(RadioState::Rx, 2700)?;
        rows.push(("Sleep to Radio Operation", wake as f64 / 1e6));
        rows.push(("Radio Setup", timing::RADIO_SETUP_NS as f64 / 1e6));
        let rx_to_tx = self.switch_trx()?; // Receiving → Transmitting
        let tx_to_rx = self.switch_trx()?; // back
        rows.insert(2, ("TX to RX", tx_to_rx as f64 / 1e6));
        rows.push(("RX to TX", rx_to_tx as f64 / 1e6));
        let hop = self.switch_frequency(2.426e9)?;
        rows.push(("Frequency Switch", hop as f64 / 1e6));
        Ok(rows)
    }
}

impl Default for TinySdr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_with_image() -> TinySdr {
        let mut dev = TinySdr::new();
        let img = tinysdr_fpga::bitstream::Bitstream::synthesize("lora_phy", 0.15, 1);
        dev.store_image(ImageSlot::Fpga(0), "lora_phy", img.data())
            .unwrap();
        dev
    }

    #[test]
    fn wakeup_is_22ms_dominated_by_fpga() {
        let mut dev = device_with_image();
        dev.sleep();
        let t = dev.wake(RadioState::Rx, 2700).unwrap();
        let ms = t as f64 / 1e6;
        assert!((ms - 22.0).abs() < 0.5, "wakeup {ms} ms");
        assert_eq!(dev.state(), DeviceState::Receiving);
    }

    #[test]
    fn table4_rows_match_paper() {
        let mut dev = device_with_image();
        let rows = dev.measure_table4().unwrap();
        let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!((get("Sleep to Radio Operation") - 22.0).abs() < 0.5);
        assert!((get("Radio Setup") - 1.2).abs() < 0.01);
        assert!((get("TX to RX") - 0.045).abs() < 1e-9);
        assert!((get("RX to TX") - 0.011).abs() < 1e-9);
        assert!((get("Frequency Switch") - 0.220).abs() < 1e-9);
    }

    #[test]
    fn sleep_power_at_floor() {
        let mut dev = device_with_image();
        dev.sleep();
        let p = dev.platform_power_mw();
        assert!((p * 1000.0 - 30.0).abs() < 3.0, "sleep {} µW", p * 1000.0);
    }

    #[test]
    fn rx_power_matches_lora_rx() {
        let mut dev = device_with_image();
        dev.sleep();
        dev.wake(RadioState::Rx, 2700).unwrap();
        let p = dev.platform_power_mw();
        assert!((p - 186.0).abs() < 6.0, "RX platform {p} mW");
    }

    #[test]
    fn cannot_wake_when_not_sleeping() {
        let mut dev = device_with_image();
        assert!(matches!(
            dev.wake(RadioState::Rx, 100),
            Err(DeviceError::WrongState { .. })
        ));
    }

    #[test]
    fn wake_without_stored_image_fails() {
        let mut dev = TinySdr::new();
        dev.sleep();
        assert_eq!(
            dev.wake(RadioState::Rx, 100).unwrap_err(),
            DeviceError::EmptySlot
        );
    }

    #[test]
    fn energy_ledger_accumulates() {
        let mut dev = device_with_image();
        // storing the image already cost flash-write energy; measure the
        // sleep/RX cycle as a delta on top of it
        let base = dev.ledger().total_mj();
        dev.sleep();
        dev.advance(1_000_000_000); // 1 s of sleep ≈ 0.03 mJ
        dev.wake(RadioState::Rx, 2700).unwrap();
        dev.advance(1_000_000_000); // 1 s of RX ≈ 186 mJ
        let total = dev.ledger().total_mj() - base;
        assert!((total - 186.5).abs() < 8.0, "ledger {total} mJ");
        let tags = dev.ledger().by_tag();
        assert!(tags.contains_key("sleep") && tags.contains_key("rx"));
    }

    #[test]
    fn storing_an_image_charges_flash_write_energy() {
        let mut dev = TinySdr::new();
        assert!(dev.ledger().is_empty());
        let img = tinysdr_fpga::bitstream::Bitstream::synthesize("lora_phy", 0.15, 1);
        dev.store_image(ImageSlot::Fpga(0), "lora_phy", img.data())
            .unwrap();
        let tags = dev.ledger().by_tag();
        // a 579 KB erase+program at ~25 mW for a few seconds: tens of mJ
        let flash_mj = tags["flash"];
        assert!(
            flash_mj > 20.0 && flash_mj < 500.0,
            "flash write {flash_mj} mJ"
        );
        // the excursion returned to Idle — no state leak
        assert_eq!(dev.power_state(), tinysdr_power::state::PowerState::Idle);
        assert_eq!(dev.state(), DeviceState::Idle);
    }

    #[test]
    fn power_machine_mirrors_device_state() {
        use tinysdr_power::state::PowerState;
        let mut dev = device_with_image();
        assert_eq!(dev.power_state(), PowerState::Idle);
        dev.sleep();
        assert_eq!(dev.power_state(), PowerState::DeepSleep);
        dev.wake(RadioState::Rx, 2700).unwrap();
        assert_eq!(dev.power_state(), PowerState::RxActive);
        dev.switch_trx().unwrap();
        assert_eq!(dev.power_state(), PowerState::TxActive);
        dev.enter_update_mode();
        assert_eq!(dev.power_state(), PowerState::RxActive);
        dev.sleep();
        assert_eq!(dev.power_state(), PowerState::DeepSleep);
        // every move above went through legal edges only — the machine
        // would have panicked otherwise (power_goto unwraps)
    }

    #[test]
    fn configuring_on_gated_rails_is_rejected() {
        // direct configure while asleep must fail: V2/V3 are gated.
        // wake() works because it re-enables the domains first — the
        // guard is keyed on the PMU, not on DeviceState
        let mut dev = device_with_image();
        dev.sleep();
        let err = dev
            .configure_from_slot(ImageSlot::Fpga(0), 2700)
            .unwrap_err();
        assert!(matches!(err, DeviceError::WrongState { .. }));
        assert_eq!(dev.fpga.loaded_design(), None, "nothing may have booted");
        // the same slot boots fine through the legal path
        dev.wake(RadioState::Rx, 2700).unwrap();
        assert_eq!(dev.fpga.loaded_design(), Some("lora_phy"));
    }

    #[test]
    fn storing_while_asleep_is_rejected() {
        // the flash rail is gated in deep sleep: a write must wake first
        // and pay the Table 4 cost, not teleport through FlashWrite
        let mut dev = device_with_image();
        dev.sleep();
        let clock = dev.clock_ns();
        let records = dev.ledger().len();
        let img = tinysdr_fpga::bitstream::Bitstream::synthesize("late", 0.1, 9);
        let err = dev
            .store_image(ImageSlot::Fpga(1), "late", img.data())
            .unwrap_err();
        assert!(matches!(err, DeviceError::WrongState { .. }));
        // the refusal changed nothing: no phantom energy, no time
        assert_eq!(dev.clock_ns(), clock);
        assert_eq!(dev.ledger().len(), records);
        assert_eq!(dev.stored_images().len(), 1);
    }

    #[test]
    fn machine_profile_tracks_reconfiguration() {
        use tinysdr_power::state::PowerState;
        // regression: the machine used to keep its construction-time
        // 0-LUT profile forever, contradicting state_power()
        let mut dev = device_with_image();
        dev.configure_from_slot(ImageSlot::Fpga(0), 2700).unwrap();
        assert_eq!(
            dev.power().profile().state_mw(PowerState::RxActive),
            dev.state_power().state_mw(PowerState::RxActive),
        );
        dev.enter_update_mode(); // drops the design -> 0-LUT profile
        assert_eq!(
            dev.power().profile().state_mw(PowerState::RxActive),
            crate::profile::device_state_power(0).state_mw(PowerState::RxActive),
        );
    }

    #[test]
    fn state_power_profile_tracks_the_loaded_design() {
        use tinysdr_power::state::PowerState;
        let mut dev = device_with_image();
        dev.configure_from_slot(ImageSlot::Fpga(0), 2700).unwrap();
        let p = dev.state_power();
        // the profile's RxActive must match the device's own RX power
        dev.sleep();
        dev.wake(RadioState::Rx, 2700).unwrap();
        let live = dev.platform_power_mw();
        let profiled = p.state_mw(PowerState::RxActive);
        assert!(
            (live - profiled).abs() < 1e-9,
            "profile {profiled} vs live {live}"
        );
        assert!((p.state_mw(PowerState::DeepSleep) * 1000.0 - 30.0).abs() < 3.0);
    }

    #[test]
    fn multiple_stored_protocols_switch_quickly() {
        let mut dev = TinySdr::new();
        let lora = tinysdr_fpga::bitstream::Bitstream::synthesize("lora", 0.15, 1);
        let ble = tinysdr_fpga::bitstream::Bitstream::synthesize("ble", 0.034, 2);
        dev.store_image(ImageSlot::Fpga(0), "lora", lora.data())
            .unwrap();
        dev.store_image(ImageSlot::Fpga(1), "ble", ble.data())
            .unwrap();
        assert_eq!(dev.stored_images().len(), 2);
        // switching protocols = one 22 ms reconfiguration, no OTA needed
        let t = dev.configure_from_slot(ImageSlot::Fpga(1), 820).unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5);
        assert_eq!(dev.fpga.loaded_design(), Some("ble"));
    }

    #[test]
    fn configure_phy_sets_radio_from_modem_metadata() {
        use tinysdr_ble::modem::BleBerPhy;
        use tinysdr_lora::modem::LoraSerPhy;
        let mut dev = TinySdr::new();
        let lora = tinysdr_fpga::bitstream::Bitstream::synthesize("lora", 0.15, 1);
        let ble = tinysdr_fpga::bitstream::Bitstream::synthesize("ble", 0.034, 2);
        dev.store_image(ImageSlot::Fpga(0), "lora", lora.data())
            .unwrap();
        dev.store_image(ImageSlot::Fpga(1), "ble", ble.data())
            .unwrap();
        assert_eq!(dev.active_phy(), None);

        let lora_phy = LoraSerPhy::new(8, 125e3);
        let t = dev
            .configure_phy(ImageSlot::Fpga(0), 2700, &lora_phy)
            .unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5, "setup {t} ns");
        assert_eq!(dev.active_phy(), Some("LoRa SER SF8 BW125"));
        assert_eq!(dev.radio.frequency_hz(), 915e6);

        // protocol switch = reconfigure + retune, one call, still ~22 ms
        let ble_phy = BleBerPhy::new(4);
        let t = dev
            .configure_phy(ImageSlot::Fpga(1), 820, &ble_phy)
            .unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5);
        assert_eq!(dev.active_phy(), Some("BLE BER 4Msps"));
        assert_eq!(dev.radio.frequency_hz(), 2.426e9);
        assert_eq!(dev.fpga.loaded_design(), Some("ble"));
    }

    #[test]
    fn configure_phy_rejects_rates_beyond_the_radio() {
        use tinysdr_ble::modem::BleBerPhy;
        let mut dev = device_with_image();
        // 8 samples/bit at 1 Mb/s = 8 MS/s, past the 4 MS/s interface
        let too_fast = BleBerPhy::new(8);
        let err = dev
            .configure_phy(ImageSlot::Fpga(0), 820, &too_fast)
            .unwrap_err();
        assert!(matches!(err, DeviceError::PhyUnsupported { .. }));
        assert_eq!(dev.active_phy(), None, "failed setup must not stick");
    }

    /// A modem whose carrier sits outside every AT86RF215 band but whose
    /// rate is fine — exercises the pre-mutation carrier check.
    #[derive(Debug, Clone)]
    struct OutOfBandPhy;

    impl PhyModem for OutOfBandPhy {
        fn label(&self) -> String {
            "5.8 GHz test".into()
        }
        fn sample_rate_hz(&self) -> f64 {
            1e6
        }
        fn occupied_bw_hz(&self) -> f64 {
            1e6
        }
        fn noise_figure_db(&self) -> f64 {
            5.0
        }
        fn sensitivity_anchor_dbm(&self) -> f64 {
            -90.0
        }
        fn center_frequency_hz(&self) -> f64 {
            5.8e9
        }
        fn modulate(&self, _frame: &[u8]) -> Vec<tinysdr_dsp::complex::Complex> {
            Vec::new()
        }
        fn demodulate(
            &self,
            _iq: &[tinysdr_dsp::complex::Complex],
        ) -> tinysdr_rf::phy::DemodResult {
            tinysdr_rf::phy::DemodResult::empty()
        }
        fn clone_box(&self) -> Box<dyn PhyModem> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn configure_phy_rejects_out_of_band_carrier_without_touching_the_fpga() {
        let mut dev = device_with_image();
        dev.configure_from_slot(ImageSlot::Fpga(0), 2700).unwrap();
        let loaded_before = dev.fpga.loaded_design().map(str::to_string);
        let freq_before = dev.radio.frequency_hz();
        let err = dev
            .configure_phy(ImageSlot::Fpga(0), 100, &OutOfBandPhy)
            .unwrap_err();
        assert!(matches!(err, DeviceError::PhyUnsupported { .. }));
        // the failed call must be a no-op: same design, same carrier,
        // no phy label recorded
        assert_eq!(dev.fpga.loaded_design().map(str::to_string), loaded_before);
        assert_eq!(dev.radio.frequency_hz(), freq_before);
        assert_eq!(dev.active_phy(), None);
    }

    #[test]
    fn update_mode_uses_backbone_only() {
        let mut dev = device_with_image();
        dev.enter_update_mode();
        assert_eq!(dev.state(), DeviceState::Updating);
        // ~40 mW backbone RX + MCU
        let p = dev.platform_power_mw();
        assert!(p > 40.0 && p < 70.0, "update-mode power {p}");
    }
}

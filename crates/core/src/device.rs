//! The TinySDR device: Fig. 3's block diagram as a state machine.
//!
//! Composition: AT86RF215 I/Q radio, LFE5U-25F configuration controller,
//! MSP432 MCU, SX1276 backbone, PMU, programming flash — "Each of these
//! subsystems are controlled in software running on the MCU" (§3).
//!
//! The device-level timing of Table 4 falls out of the composition:
//! waking from sleep boots the FPGA from flash (22 ms) *in parallel*
//! with the radio setup (1.2 ms) — "Because we can perform the I/Q radio
//! setup in parallel with booting the FPGA, the total wakeup time for RX
//! and TX is 22 ms".

use tinysdr_fpga::config::{ConfigController, ConfigError};
use tinysdr_fpga::power as fpga_power;
use tinysdr_hw::flash::{Flash, ImageSlot};
use tinysdr_hw::mcu::{Mcu, McuMode};
use tinysdr_power::domains::{Component, Domain};
use tinysdr_power::energy::EnergyLedger;
use tinysdr_power::pmu::Pmu;
use tinysdr_rf::at86rf215::{timing, At86Rf215, Band, RadioError, RadioState, SAMPLE_RATE_HZ};
use tinysdr_rf::phy::PhyModem;
use tinysdr_rf::sx1276::Sx1276;

/// Device-level states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// 30 µW floor: everything gated, MCU in LPM3.
    Sleep,
    /// Awake: FPGA configured and idle, radio in TRXOFF.
    Idle,
    /// Receiving on the I/Q radio.
    Receiving,
    /// Transmitting on the I/Q radio.
    Transmitting,
    /// OTA update mode: backbone radio active, FPGA off.
    Updating,
}

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// Radio-level failure.
    Radio(RadioError),
    /// FPGA configuration failure.
    Config(ConfigError),
    /// Operation not valid in the current state.
    WrongState {
        /// Current device state.
        state: DeviceState,
        /// What was attempted.
        op: &'static str,
    },
    /// No bitstream stored in the requested slot.
    EmptySlot,
    /// The requested PHY exceeds what the I/Q radio path can carry.
    PhyUnsupported {
        /// The offending modem's label.
        label: String,
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Radio(e) => write!(f, "radio: {e}"),
            DeviceError::Config(e) => write!(f, "fpga: {e}"),
            DeviceError::WrongState { state, op } => {
                write!(f, "cannot {op} in state {state:?}")
            }
            DeviceError::EmptySlot => write!(f, "no image stored in that slot"),
            DeviceError::PhyUnsupported { label, reason } => {
                write!(f, "PHY {label:?} unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<RadioError> for DeviceError {
    fn from(e: RadioError) -> Self {
        DeviceError::Radio(e)
    }
}

impl From<ConfigError> for DeviceError {
    fn from(e: ConfigError) -> Self {
        DeviceError::Config(e)
    }
}

/// The device.
#[derive(Debug)]
pub struct TinySdr {
    /// I/Q radio.
    pub radio: At86Rf215,
    /// FPGA configuration controller.
    pub fpga: ConfigController,
    /// Microcontroller.
    pub mcu: Mcu,
    /// Power-management unit.
    pub pmu: Pmu,
    /// External programming flash.
    pub flash: Flash,
    /// Backbone (OTA) radio.
    pub backbone: Sx1276,
    /// Energy ledger (the simulated Fluke 287).
    pub ledger: EnergyLedger,
    state: DeviceState,
    clock_ns: u64,
    /// LUTs of the active design (drives fabric power).
    active_luts: u32,
    /// Directory of stored images: (slot, design name, length, crc32).
    stored: Vec<(ImageSlot, String, usize, u32)>,
    /// Label of the PHY the radio path was last set up for.
    active_phy: Option<String>,
}

impl TinySdr {
    /// A fresh board: awake but unconfigured, nothing stored.
    pub fn new() -> Self {
        let mut fpga = ConfigController::new();
        fpga.power_on();
        TinySdr {
            radio: At86Rf215::new(),
            fpga,
            mcu: Mcu::new(),
            pmu: Pmu::new(),
            flash: Flash::new(),
            backbone: Sx1276::new(),
            ledger: EnergyLedger::new(),
            state: DeviceState::Idle,
            clock_ns: 0,
            active_luts: 0,
            stored: Vec::new(),
            active_phy: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Simulation clock, nanoseconds since construction.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advance time, charging the current platform power to the ledger.
    pub fn advance(&mut self, ns: u64) {
        let p = self.platform_power_mw();
        self.ledger.record(self.power_tag(), p, ns);
        self.clock_ns += ns;
    }

    fn power_tag(&self) -> &'static str {
        match self.state {
            DeviceState::Sleep => "sleep",
            DeviceState::Idle => "idle",
            DeviceState::Receiving => "rx",
            DeviceState::Transmitting => "tx",
            DeviceState::Updating => "ota",
        }
    }

    /// Instantaneous platform power, mW (battery-referred calibration).
    pub fn platform_power_mw(&self) -> f64 {
        match self.state {
            DeviceState::Sleep => {
                let mut pmu = self.pmu.clone();
                pmu.enter_sleep()
            }
            DeviceState::Idle => {
                10.0 + fpga_power::running_mw(self.active_luts).min(fpga_power::STATIC_MW)
                    + self.mcu.supply_power_mw()
            }
            DeviceState::Receiving | DeviceState::Transmitting => {
                self.radio.supply_power_mw()
                    + fpga_power::running_mw(self.active_luts)
                    + self.mcu.supply_power_mw()
            }
            DeviceState::Updating => self.backbone.supply_power_mw() + self.mcu.supply_power_mw(),
        }
    }

    /// Store a firmware image into a flash slot so the FPGA can boot
    /// from it ("it allows tinySDR to store multiple FPGA bitstreams and
    /// MCU programs to quickly switch between stored protocols").
    ///
    /// # Errors
    /// Flash-level failures surface as `Config` errors.
    pub fn store_image(
        &mut self,
        slot: ImageSlot,
        name: &str,
        data: &[u8],
    ) -> Result<(), DeviceError> {
        assert!(data.len() <= slot.capacity(), "image exceeds slot");
        self.flash
            .erase_and_program(slot.base_addr(), data)
            .map_err(|_| DeviceError::EmptySlot)?;
        let crc = tinysdr_fpga::bitstream::crc32(data);
        self.stored.retain(|(s, ..)| *s != slot);
        self.stored.push((slot, name.to_string(), data.len(), crc));
        Ok(())
    }

    /// Names of stored images.
    pub fn stored_images(&self) -> Vec<(ImageSlot, String)> {
        self.stored
            .iter()
            .map(|(s, n, ..)| (*s, n.clone()))
            .collect()
    }

    /// Configure the FPGA from a stored slot, declaring the design's LUT
    /// count (for the power model). Returns the configuration time in
    /// nanoseconds (≈ 22 ms).
    ///
    /// # Errors
    /// Fails if the slot is empty or the FPGA rejects the image.
    pub fn configure_from_slot(
        &mut self,
        slot: ImageSlot,
        design_luts: u32,
    ) -> Result<u64, DeviceError> {
        let (_, name, len, crc) = self
            .stored
            .iter()
            .find(|(s, ..)| *s == slot)
            .cloned()
            .ok_or(DeviceError::EmptySlot)?;
        let data = self
            .flash
            .read(slot.base_addr(), len)
            .map_err(|_| DeviceError::EmptySlot)?
            .to_vec();
        if tinysdr_fpga::bitstream::crc32(&data) != crc {
            return Err(DeviceError::Config(ConfigError::CrcMismatch));
        }
        // model the image as a bitstream for the controller (FPGA images
        // are full-size; MCU images configure nothing)
        let padded = if data.len() == tinysdr_fpga::bitstream::BITSTREAM_SIZE {
            data
        } else {
            let mut p = data;
            p.resize(tinysdr_fpga::bitstream::BITSTREAM_SIZE, 0);
            p
        };
        let image = tinysdr_fpga::bitstream::Bitstream::from_raw(&name, padded);
        self.fpga.power_on();
        let t = self.fpga.start_configuration(&image, None)?;
        self.ledger
            .record("fpga_config", fpga_power::CONFIGURING_MW, t);
        self.clock_ns += t;
        self.fpga.tick(t);
        self.active_luts = design_luts;
        Ok(t)
    }

    /// Configure the device for a protocol through the [`PhyModem`]
    /// seam: boot the FPGA design from `slot` *and* set up the I/Q
    /// radio from the modem's own metadata — carrier from
    /// [`PhyModem::center_frequency_hz`], rate checked against the
    /// AT86RF215's 4 MS/s I/Q interface. This is "program any IoT PHY"
    /// as one call: the same boxed modem that sweeps waterfalls and
    /// prices campaign air time also tunes the radio.
    ///
    /// Returns the setup time in nanoseconds — the FPGA boot and the
    /// radio retune run in parallel, exactly like [`Self::wake`].
    ///
    /// # Errors
    /// Fails if the slot is empty, the FPGA rejects the image, the
    /// modem needs more than the radio's 4 MS/s, or the carrier is
    /// outside the AT86RF215 band plan.
    pub fn configure_phy(
        &mut self,
        slot: ImageSlot,
        design_luts: u32,
        phy: &dyn PhyModem,
    ) -> Result<u64, DeviceError> {
        // validate BOTH radio preconditions before touching anything —
        // a failed setup must leave the device exactly as it was (no
        // half-configured FPGA under the old carrier)
        if phy.sample_rate_hz() > SAMPLE_RATE_HZ {
            return Err(DeviceError::PhyUnsupported {
                label: phy.label(),
                reason: "sample rate exceeds the radio's 4 MS/s I/Q interface",
            });
        }
        if Band::containing(phy.center_frequency_hz()).is_none() {
            return Err(DeviceError::PhyUnsupported {
                label: phy.label(),
                reason: "carrier outside the AT86RF215 band plan",
            });
        }
        let t_fpga = self.configure_from_slot(slot, design_luts)?;
        let before = self.radio.transition_ns;
        self.radio.set_frequency(phy.center_frequency_hz())?;
        let t_radio = self.radio.transition_ns - before + timing::RADIO_SETUP_NS;
        self.active_phy = Some(phy.label());
        Ok(t_fpga.max(t_radio))
    }

    /// Label of the PHY the radio path was last configured for via
    /// [`Self::configure_phy`].
    pub fn active_phy(&self) -> Option<&str> {
        self.active_phy.as_deref()
    }

    /// Enter the 30 µW sleep state (§5.1): gate the FPGA and PAs, radio
    /// to sleep, MCU to LPM3.
    pub fn sleep(&mut self) {
        self.radio.transition(RadioState::Sleep);
        self.fpga.power_off();
        self.pmu.enter_sleep();
        self.mcu.set_mode(McuMode::Lpm3);
        self.state = DeviceState::Sleep;
    }

    /// Wake from sleep into RX or TX. Returns the wakeup latency in
    /// nanoseconds — Table 4's 22 ms, dominated by the FPGA boot running
    /// in parallel with the 1.2 ms radio setup.
    ///
    /// # Errors
    /// Requires a previously stored FPGA image in slot 0.
    pub fn wake(&mut self, to: RadioState, design_luts: u32) -> Result<u64, DeviceError> {
        if self.state != DeviceState::Sleep {
            return Err(DeviceError::WrongState {
                state: self.state,
                op: "wake",
            });
        }
        self.mcu.set_mode(McuMode::Active);
        for d in [Domain::V2, Domain::V3, Domain::V4, Domain::V5] {
            self.pmu.set_domain(d, true);
        }
        self.pmu
            .set_load(Component::Mcu, McuMode::Active.supply_power_mw());
        // parallel: FPGA boot || radio setup
        let t_fpga = self.configure_from_slot(ImageSlot::Fpga(0), design_luts)?;
        let t_radio = self.radio.transition(to);
        let total = t_fpga.max(t_radio);
        self.state = match to {
            RadioState::Rx => DeviceState::Receiving,
            RadioState::Tx => DeviceState::Transmitting,
            _ => DeviceState::Idle,
        };
        Ok(total)
    }

    /// Switch between RX and TX, returning the switching time (Table 4:
    /// 45 µs / 11 µs).
    ///
    /// # Errors
    /// Only valid while the I/Q radio is active.
    pub fn switch_trx(&mut self) -> Result<u64, DeviceError> {
        let (to, next) = match self.state {
            DeviceState::Receiving => (RadioState::Tx, DeviceState::Transmitting),
            DeviceState::Transmitting => (RadioState::Rx, DeviceState::Receiving),
            s => {
                return Err(DeviceError::WrongState {
                    state: s,
                    op: "switch TRX",
                })
            }
        };
        let t = self.radio.transition(to);
        self.state = next;
        self.advance(t);
        Ok(t)
    }

    /// Retune the radio, returning the 220 µs frequency-switch time.
    ///
    /// # Errors
    /// Propagates out-of-band errors.
    pub fn switch_frequency(&mut self, freq_hz: f64) -> Result<u64, DeviceError> {
        let before = self.radio.transition_ns;
        self.radio.set_frequency(freq_hz)?;
        let t = self.radio.transition_ns - before;
        self.advance(t);
        Ok(t)
    }

    /// Enter OTA update mode: "periodically turn off the FPGA and switch
    /// from IQ radio mode to the backbone radio to listen for new
    /// firmware updates" (§3.4).
    pub fn enter_update_mode(&mut self) {
        self.radio.transition(RadioState::Sleep);
        self.fpga.power_off();
        self.active_luts = 0;
        self.backbone.state = tinysdr_rf::sx1276::Sx1276State::Rx;
        self.state = DeviceState::Updating;
    }

    /// Reproduce Table 4 by exercising the state machine and measuring.
    /// Returns `(operation, milliseconds)` rows.
    ///
    /// # Errors
    /// Needs an FPGA image stored in slot 0.
    pub fn measure_table4(&mut self) -> Result<Vec<(&'static str, f64)>, DeviceError> {
        let mut rows = Vec::new();
        self.sleep();
        let wake = self.wake(RadioState::Rx, 2700)?;
        rows.push(("Sleep to Radio Operation", wake as f64 / 1e6));
        rows.push(("Radio Setup", timing::RADIO_SETUP_NS as f64 / 1e6));
        let rx_to_tx = self.switch_trx()?; // Receiving → Transmitting
        let tx_to_rx = self.switch_trx()?; // back
        rows.insert(2, ("TX to RX", tx_to_rx as f64 / 1e6));
        rows.push(("RX to TX", rx_to_tx as f64 / 1e6));
        let hop = self.switch_frequency(2.426e9)?;
        rows.push(("Frequency Switch", hop as f64 / 1e6));
        Ok(rows)
    }
}

impl Default for TinySdr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_with_image() -> TinySdr {
        let mut dev = TinySdr::new();
        let img = tinysdr_fpga::bitstream::Bitstream::synthesize("lora_phy", 0.15, 1);
        dev.store_image(ImageSlot::Fpga(0), "lora_phy", img.data())
            .unwrap();
        dev
    }

    #[test]
    fn wakeup_is_22ms_dominated_by_fpga() {
        let mut dev = device_with_image();
        dev.sleep();
        let t = dev.wake(RadioState::Rx, 2700).unwrap();
        let ms = t as f64 / 1e6;
        assert!((ms - 22.0).abs() < 0.5, "wakeup {ms} ms");
        assert_eq!(dev.state(), DeviceState::Receiving);
    }

    #[test]
    fn table4_rows_match_paper() {
        let mut dev = device_with_image();
        let rows = dev.measure_table4().unwrap();
        let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!((get("Sleep to Radio Operation") - 22.0).abs() < 0.5);
        assert!((get("Radio Setup") - 1.2).abs() < 0.01);
        assert!((get("TX to RX") - 0.045).abs() < 1e-9);
        assert!((get("RX to TX") - 0.011).abs() < 1e-9);
        assert!((get("Frequency Switch") - 0.220).abs() < 1e-9);
    }

    #[test]
    fn sleep_power_at_floor() {
        let mut dev = device_with_image();
        dev.sleep();
        let p = dev.platform_power_mw();
        assert!((p * 1000.0 - 30.0).abs() < 3.0, "sleep {} µW", p * 1000.0);
    }

    #[test]
    fn rx_power_matches_lora_rx() {
        let mut dev = device_with_image();
        dev.sleep();
        dev.wake(RadioState::Rx, 2700).unwrap();
        let p = dev.platform_power_mw();
        assert!((p - 186.0).abs() < 6.0, "RX platform {p} mW");
    }

    #[test]
    fn cannot_wake_when_not_sleeping() {
        let mut dev = device_with_image();
        assert!(matches!(
            dev.wake(RadioState::Rx, 100),
            Err(DeviceError::WrongState { .. })
        ));
    }

    #[test]
    fn wake_without_stored_image_fails() {
        let mut dev = TinySdr::new();
        dev.sleep();
        assert_eq!(
            dev.wake(RadioState::Rx, 100).unwrap_err(),
            DeviceError::EmptySlot
        );
    }

    #[test]
    fn energy_ledger_accumulates() {
        let mut dev = device_with_image();
        dev.sleep();
        dev.advance(1_000_000_000); // 1 s of sleep ≈ 0.03 mJ
        dev.wake(RadioState::Rx, 2700).unwrap();
        dev.advance(1_000_000_000); // 1 s of RX ≈ 186 mJ
        let total = dev.ledger.total_mj();
        assert!((total - 186.5).abs() < 8.0, "ledger {total} mJ");
        let tags = dev.ledger.by_tag();
        assert!(tags.contains_key("sleep") && tags.contains_key("rx"));
    }

    #[test]
    fn multiple_stored_protocols_switch_quickly() {
        let mut dev = TinySdr::new();
        let lora = tinysdr_fpga::bitstream::Bitstream::synthesize("lora", 0.15, 1);
        let ble = tinysdr_fpga::bitstream::Bitstream::synthesize("ble", 0.034, 2);
        dev.store_image(ImageSlot::Fpga(0), "lora", lora.data())
            .unwrap();
        dev.store_image(ImageSlot::Fpga(1), "ble", ble.data())
            .unwrap();
        assert_eq!(dev.stored_images().len(), 2);
        // switching protocols = one 22 ms reconfiguration, no OTA needed
        let t = dev.configure_from_slot(ImageSlot::Fpga(1), 820).unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5);
        assert_eq!(dev.fpga.loaded_design(), Some("ble"));
    }

    #[test]
    fn configure_phy_sets_radio_from_modem_metadata() {
        use tinysdr_ble::modem::BleBerPhy;
        use tinysdr_lora::modem::LoraSerPhy;
        let mut dev = TinySdr::new();
        let lora = tinysdr_fpga::bitstream::Bitstream::synthesize("lora", 0.15, 1);
        let ble = tinysdr_fpga::bitstream::Bitstream::synthesize("ble", 0.034, 2);
        dev.store_image(ImageSlot::Fpga(0), "lora", lora.data())
            .unwrap();
        dev.store_image(ImageSlot::Fpga(1), "ble", ble.data())
            .unwrap();
        assert_eq!(dev.active_phy(), None);

        let lora_phy = LoraSerPhy::new(8, 125e3);
        let t = dev
            .configure_phy(ImageSlot::Fpga(0), 2700, &lora_phy)
            .unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5, "setup {t} ns");
        assert_eq!(dev.active_phy(), Some("LoRa SER SF8 BW125"));
        assert_eq!(dev.radio.frequency(), 915e6);

        // protocol switch = reconfigure + retune, one call, still ~22 ms
        let ble_phy = BleBerPhy::new(4);
        let t = dev
            .configure_phy(ImageSlot::Fpga(1), 820, &ble_phy)
            .unwrap();
        assert!((t as f64 / 1e6 - 22.0).abs() < 0.5);
        assert_eq!(dev.active_phy(), Some("BLE BER 4Msps"));
        assert_eq!(dev.radio.frequency(), 2.426e9);
        assert_eq!(dev.fpga.loaded_design(), Some("ble"));
    }

    #[test]
    fn configure_phy_rejects_rates_beyond_the_radio() {
        use tinysdr_ble::modem::BleBerPhy;
        let mut dev = device_with_image();
        // 8 samples/bit at 1 Mb/s = 8 MS/s, past the 4 MS/s interface
        let too_fast = BleBerPhy::new(8);
        let err = dev
            .configure_phy(ImageSlot::Fpga(0), 820, &too_fast)
            .unwrap_err();
        assert!(matches!(err, DeviceError::PhyUnsupported { .. }));
        assert_eq!(dev.active_phy(), None, "failed setup must not stick");
    }

    /// A modem whose carrier sits outside every AT86RF215 band but whose
    /// rate is fine — exercises the pre-mutation carrier check.
    #[derive(Debug, Clone)]
    struct OutOfBandPhy;

    impl PhyModem for OutOfBandPhy {
        fn label(&self) -> String {
            "5.8 GHz test".into()
        }
        fn sample_rate_hz(&self) -> f64 {
            1e6
        }
        fn occupied_bw_hz(&self) -> f64 {
            1e6
        }
        fn noise_figure_db(&self) -> f64 {
            5.0
        }
        fn sensitivity_anchor_dbm(&self) -> f64 {
            -90.0
        }
        fn center_frequency_hz(&self) -> f64 {
            5.8e9
        }
        fn modulate(&self, _frame: &[u8]) -> Vec<tinysdr_dsp::complex::Complex> {
            Vec::new()
        }
        fn demodulate(
            &self,
            _iq: &[tinysdr_dsp::complex::Complex],
        ) -> tinysdr_rf::phy::DemodResult {
            tinysdr_rf::phy::DemodResult::empty()
        }
        fn clone_box(&self) -> Box<dyn PhyModem> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn configure_phy_rejects_out_of_band_carrier_without_touching_the_fpga() {
        let mut dev = device_with_image();
        dev.configure_from_slot(ImageSlot::Fpga(0), 2700).unwrap();
        let loaded_before = dev.fpga.loaded_design().map(str::to_string);
        let freq_before = dev.radio.frequency();
        let err = dev
            .configure_phy(ImageSlot::Fpga(0), 100, &OutOfBandPhy)
            .unwrap_err();
        assert!(matches!(err, DeviceError::PhyUnsupported { .. }));
        // the failed call must be a no-op: same design, same carrier,
        // no phy label recorded
        assert_eq!(dev.fpga.loaded_design().map(str::to_string), loaded_before);
        assert_eq!(dev.radio.frequency(), freq_before);
        assert_eq!(dev.active_phy(), None);
    }

    #[test]
    fn update_mode_uses_backbone_only() {
        let mut dev = device_with_image();
        dev.enter_update_mode();
        assert_eq!(dev.state(), DeviceState::Updating);
        // ~40 mW backbone RX + MCU
        let p = dev.platform_power_mw();
        assert!(p > 40.0 && p < 70.0, "update-mode power {p}");
    }
}

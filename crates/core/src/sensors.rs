//! Sensor interfaces (paper §3.2.3).
//!
//! "The I2C and SPI serial interfaces and analog to digital converter
//! (ADC) inputs of the MCU are broken out on tinySDR board to support
//! both digital and analog sensors." This module is that breakout: an
//! analog channel through the MSP432's 14-bit ADC, and digital sensor
//! transactions with timing/energy accounting — what an IoT-endpoint
//! application on the platform actually calls between radio events.

/// MSP432 ADC resolution, bits.
pub const ADC_BITS: u32 = 14;
/// ADC reference voltage, volts.
pub const ADC_VREF: f64 = 2.5;
/// ADC conversion time at the default clocking, nanoseconds.
pub const ADC_CONVERSION_NS: u64 = 9_600;
/// ADC supply power while converting, mW.
pub const ADC_ACTIVE_MW: f64 = 0.45;

/// An analog sensor channel through the MCU ADC.
#[derive(Debug, Clone)]
pub struct AnalogChannel {
    /// Channel index (A0..A23 on the MSP432).
    pub index: u8,
    /// Conversions performed.
    pub conversions: u64,
    /// Energy spent converting, mJ.
    pub energy_mj: f64,
}

impl AnalogChannel {
    /// New channel.
    pub fn new(index: u8) -> Self {
        assert!(index < 24, "MSP432 exposes A0..A23");
        AnalogChannel {
            index,
            conversions: 0,
            energy_mj: 0.0,
        }
    }

    /// Sample a voltage: quantize through the 14-bit ADC. Returns the
    /// code and charges the conversion to the channel's ledger.
    pub fn sample(&mut self, volts: f64) -> u16 {
        let full = (1u32 << ADC_BITS) - 1;
        let code = ((volts / ADC_VREF).clamp(0.0, 1.0) * full as f64).round() as u16;
        self.conversions += 1;
        self.energy_mj += ADC_ACTIVE_MW * ADC_CONVERSION_NS as f64 / 1e9;
        code
    }

    /// Convert a code back to volts.
    pub fn to_volts(code: u16) -> f64 {
        code as f64 / ((1u32 << ADC_BITS) - 1) as f64 * ADC_VREF
    }

    /// Quantization step, volts.
    pub fn lsb_volts() -> f64 {
        ADC_VREF / ((1u32 << ADC_BITS) - 1) as f64
    }
}

/// A digital sensor on the I2C bus (e.g. the SmartSense-class
/// temperature/humidity part the paper benchmarks wakeup against).
#[derive(Debug, Clone)]
pub struct I2cSensor {
    /// 7-bit bus address.
    pub address: u8,
    /// Bus clock, Hz (100 kHz standard / 400 kHz fast).
    pub clock_hz: f64,
    /// Bytes moved.
    pub bytes: u64,
    /// Bus time, ns.
    pub bus_ns: u64,
}

impl I2cSensor {
    /// New fast-mode sensor.
    pub fn new(address: u8) -> Self {
        assert!(address < 0x80, "7-bit I2C address");
        I2cSensor {
            address,
            clock_hz: 400e3,
            bytes: 0,
            bus_ns: 0,
        }
    }

    /// Account a register read of `n` bytes (address + register + data,
    /// 9 clocks per byte with ACK). Returns the bus time in ns.
    pub fn read(&mut self, n: usize) -> u64 {
        let total = n + 2;
        let ns = (total as f64 * 9.0 / self.clock_hz * 1e9) as u64;
        self.bytes += total as u64;
        self.bus_ns += ns;
        ns
    }
}

/// One duty-cycle-friendly measurement: wake, sample, return to sleep —
/// the paper's SmartSense comparison says TinySDR's 22 ms wake is "only
/// a 4x longer wakeup time" than such a sensor's; this returns both.
pub fn measurement_wakeup_comparison() -> (f64, f64) {
    let tinysdr_ms = tinysdr_fpga::config::configuration_time_ns() as f64 / 1e6;
    let smartsense_ms = 5.5; // commercial single-protocol sensor node
    (tinysdr_ms, smartsense_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_codes_and_range() {
        let mut ch = AnalogChannel::new(0);
        assert_eq!(ch.sample(0.0), 0);
        assert_eq!(ch.sample(ADC_VREF), (1 << 14) - 1);
        assert_eq!(ch.sample(5.0), (1 << 14) - 1); // clamped
        let mid = ch.sample(ADC_VREF / 2.0);
        assert!((mid as i32 - (1 << 13)).abs() <= 1);
        assert_eq!(ch.conversions, 4);
    }

    #[test]
    fn adc_round_trip_within_lsb() {
        let mut ch = AnalogChannel::new(3);
        for mv in (0..2500).step_by(97) {
            let v = mv as f64 / 1000.0;
            let code = ch.sample(v);
            assert!((AnalogChannel::to_volts(code) - v).abs() <= AnalogChannel::lsb_volts());
        }
    }

    #[test]
    fn adc_energy_is_negligible_next_to_radio() {
        // thousands of conversions cost far less than one LoRa packet
        let mut ch = AnalogChannel::new(1);
        for _ in 0..10_000 {
            ch.sample(1.2);
        }
        assert!(ch.energy_mj < 0.1, "ADC energy {}", ch.energy_mj);
    }

    #[test]
    fn i2c_timing() {
        let mut s = I2cSensor::new(0x40);
        // 4-byte read at 400 kHz: 6 bytes × 9 bits ≈ 135 µs
        let ns = s.read(4);
        assert!((ns as f64 - 135_000.0).abs() < 1_000.0);
    }

    #[test]
    #[should_panic(expected = "7-bit")]
    fn bad_i2c_address() {
        I2cSensor::new(0x90);
    }

    #[test]
    fn wakeup_comparison_is_about_4x() {
        let (tinysdr, sensor) = measurement_wakeup_comparison();
        let ratio = tinysdr / sensor;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }
}

//! # tinysdr-core
//!
//! The TinySDR platform itself: the composition of every substrate in
//! the workspace into the device of the paper's Fig. 3, plus the
//! evaluation scaffolding (campus testbed, platform-comparison catalog,
//! BOM cost model).
//!
//! * [`device`] — the `TinySdr` device: AT86RF215 I/Q radio + LFE5U-25F
//!   FPGA + MSP432 MCU + SX1276 backbone + PMU + flash, with the
//!   operation state machine whose transitions reproduce Table 4.
//! * [`profile`] — calibrated operating-point power table (§5.1–§5.2,
//!   Fig. 9) and battery-life projections (the ">2 years of BLE
//!   beaconing" claim).
//! * [`platforms`] — Table 1 and Fig. 2: the SDR landscape TinySDR is
//!   compared against, as data plus the derived claims (10 000× sleep
//!   advantage).
//! * [`cost`] — Table 5: the $54.53 BOM.
//! * [`sensors`] — the §3.2.3 sensor breakout: ADC channels and I2C
//!   transactions with energy accounting.
//! * [`testbed`] — the 20-node campus deployment of Fig. 7 driving the
//!   Fig. 14 OTA campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod platforms;
pub mod profile;
pub mod sensors;
pub mod testbed;

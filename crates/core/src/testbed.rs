//! The 20-node campus testbed (paper Fig. 7) and the OTA campaign behind
//! Fig. 14.
//!
//! "We deploy a testbed of 20 tinySDR devices across our institution's
//! campus" — node positions span tens of meters to about two kilometers
//! from the LoRa access point, giving the RSSI spread that turns into
//! Fig. 14's programming-time CDF.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tinysdr_dsp::stats::Ecdf;
use tinysdr_ota::blocks::BlockedUpdate;
use tinysdr_ota::session::{run_session, LinkModel, SessionConfig, SessionReport};
use tinysdr_rf::pathloss::{Link, LogDistance};

/// AP transmit power (paper: "transmitting at 14 dBm").
pub const AP_TX_POWER_DBM: f64 = 14.0;
/// AP patch-antenna gain, dB.
pub const AP_ANTENNA_GAIN_DB: f64 = 6.0;

/// One testbed node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Device identifier.
    pub id: u16,
    /// Distance from the AP, meters.
    pub distance_m: f64,
    /// Frozen link (shadowing realization).
    pub link: Link,
    /// Downlink RSSI from the AP, dBm.
    pub rssi_dbm: f64,
}

/// The campus testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Propagation model.
    pub model: LogDistance,
    /// The nodes.
    pub nodes: Vec<Node>,
}

impl Testbed {
    /// Build the 20-node campus testbed. Distances are log-uniform
    /// between 100 m and 2.5 km (near buildings through the campus
    /// edge), with per-link lognormal shadowing — all seeded. The far
    /// tail sits near the SF8/BW500 sensitivity, which is what spreads
    /// the Fig. 14 CDF to the right.
    pub fn campus(seed: u64) -> Self {
        Self::with_nodes(20, seed)
    }

    /// Build a testbed with `n` nodes.
    pub fn with_nodes(n: usize, seed: u64) -> Self {
        let model = LogDistance::campus_915mhz();
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = (0..n)
            .map(|i| {
                let log_d = rng.gen_range(100f64.ln()..2500f64.ln());
                let distance_m = log_d.exp();
                let mut link = Link::new(&model, distance_m, seed ^ (i as u64 * 7919));
                link.antenna_gains_db = AP_ANTENNA_GAIN_DB;
                let rssi = link.rssi_dbm(&model, AP_TX_POWER_DBM);
                Node { id: i as u16, distance_m, link, rssi_dbm: rssi }
            })
            .collect();
        Testbed { model, nodes }
    }

    /// RSSI distribution across nodes, dBm.
    pub fn rssi_spread(&self) -> (f64, f64) {
        let min = self.nodes.iter().map(|n| n.rssi_dbm).fold(f64::MAX, f64::min);
        let max = self.nodes.iter().map(|n| n.rssi_dbm).fold(f64::MIN, f64::max);
        (min, max)
    }

    /// Run an OTA campaign: program every node with `update`, returning
    /// per-node reports (the AP programs nodes sequentially, §3.4).
    pub fn ota_campaign(&self, update: &BlockedUpdate, seed: u64) -> Vec<(u16, SessionReport)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1F7E);
        self.nodes
            .iter()
            .map(|n| {
                let mut link = LinkModel::from_downlink(n.rssi_dbm);
                // location-dependent co-channel interference loss
                link.base_loss_prob = rng.gen_range(0.0..0.08);
                let cfg = SessionConfig { max_attempts: 40, seed: seed ^ (n.id as u64) << 8 };
                (n.id, run_session(update, &link, &cfg))
            })
            .collect()
    }

    /// The Fig. 14 CDF of programming times, minutes.
    pub fn programming_time_cdf(
        &self,
        update: &BlockedUpdate,
        seed: u64,
    ) -> (Ecdf, Vec<(u16, SessionReport)>) {
        let reports = self.ota_campaign(update, seed);
        let mut ecdf = Ecdf::new();
        ecdf.extend(reports.iter().filter(|(_, r)| r.completed).map(|(_, r)| r.duration_s / 60.0));
        (ecdf, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinysdr_ota::image::FirmwareImage;

    #[test]
    fn campus_has_20_nodes_with_spread() {
        let tb = Testbed::campus(42);
        assert_eq!(tb.nodes.len(), 20);
        let (min, max) = tb.rssi_spread();
        // near node strong, far node weak, all above BW500 sensitivity
        assert!(max > -80.0, "strongest {max}");
        assert!(min < -95.0, "weakest {min}");
        assert!(min > -125.0, "weakest {min} must still be reachable");
    }

    #[test]
    fn distances_span_campus() {
        let tb = Testbed::campus(42);
        let dmin = tb.nodes.iter().map(|n| n.distance_m).fold(f64::MAX, f64::min);
        let dmax = tb.nodes.iter().map(|n| n.distance_m).fold(f64::MIN, f64::max);
        assert!(dmin < 150.0);
        assert!(dmax > 1000.0);
    }

    #[test]
    fn mcu_campaign_mean_matches_fig14() {
        // MCU images (≈24 KB compressed): paper Fig. 14 shows ≈39 s mean
        let tb = Testbed::campus(42);
        let img = FirmwareImage::paper_mcu("mac", 3);
        let upd = BlockedUpdate::build(&img);
        let (mut ecdf, reports) = tb.programming_time_cdf(&upd, 7);
        // the far tail of the campus may be unreachable at SF8/BW500 —
        // the paper's AP placement guaranteed coverage; we tolerate one
        // node out of range
        let completed = reports.iter().filter(|(_, r)| r.completed).count();
        assert!(completed >= 19, "only {completed}/20 nodes completed");
        let mean_s = ecdf.mean() * 60.0;
        assert!((mean_s - 45.0).abs() < 15.0, "MCU campaign mean {mean_s} s");
        // CDF spread: far nodes pay for retransmissions
        assert!(ecdf.max() > ecdf.min());
    }

    #[test]
    fn far_nodes_take_longer() {
        let tb = Testbed::campus(11);
        let img = FirmwareImage::mcu("m", 20_000, 5);
        let upd = BlockedUpdate::build(&img);
        let reports = tb.ota_campaign(&upd, 3);
        // correlate RSSI with duration: weakest third vs strongest third
        let mut by_rssi: Vec<_> = tb
            .nodes
            .iter()
            .map(|n| (n.rssi_dbm, reports[n.id as usize].1.duration_s))
            .collect();
        by_rssi.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let weak_mean: f64 =
            by_rssi[..6].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        let strong_mean: f64 =
            by_rssi[14..].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        assert!(weak_mean >= strong_mean, "weak {weak_mean} vs strong {strong_mean}");
    }

    #[test]
    fn testbed_is_reproducible() {
        let a = Testbed::campus(9);
        let b = Testbed::campus(9);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.rssi_dbm, y.rssi_dbm);
        }
        let c = Testbed::campus(10);
        assert!(a.nodes[0].rssi_dbm != c.nodes[0].rssi_dbm);
    }

    #[test]
    fn custom_size_testbeds() {
        let tb = Testbed::with_nodes(5, 1);
        assert_eq!(tb.nodes.len(), 5);
    }
}

//! The 20-node campus testbed (paper Fig. 7) and the OTA campaign
//! engine behind Fig. 14.
//!
//! "We deploy a testbed of 20 tinySDR devices across our institution's
//! campus" — node positions span tens of meters to about two kilometers
//! from the LoRa access point, giving the RSSI spread that turns into
//! Fig. 14's programming-time CDF.
//!
//! The campaign layer scales past the paper's 20 nodes: campaigns can
//! be sharded across threads ([`CampaignConfig::shards`]) under a
//! determinism contract — every node draws its randomness from an
//! order-independent [`tinysdr_ota::seed`] stream, so a sharded
//! campaign is **bit-identical** to the sequential one for the same
//! seed, regardless of shard count or thread interleaving. Two
//! programming strategies are wired in: the paper's §3.4 sequential
//! unicast ([`Testbed::run_campaign`]) and the §7 broadcast with
//! NACK-repair rounds plus targeted unicast repair
//! ([`Testbed::broadcast_campaign`]).
//!
//! Campaign payload air time is priced through the workspace-wide
//! [`tinysdr_rf::phy::PhyModem`] seam: every session asks the OTA
//! link's modem (`LinkModel::phy()`, the framed LoRa implementor) for
//! [`tinysdr_rf::phy::PhyModem::airtime_s`] rather than keeping a
//! parallel formula.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tinysdr_dsp::stats::Ecdf;
use tinysdr_ota::blocks::BlockedUpdate;
use tinysdr_ota::broadcast::{run_broadcast_keyed, BroadcastConfig, BroadcastReport};
use tinysdr_ota::seed::{
    node_stream_seed, stream_seed, STREAM_BROADCAST, STREAM_INTERFERENCE, STREAM_SESSION,
};
use tinysdr_ota::session::{run_session, LinkModel, SessionConfig, SessionReport};
use tinysdr_power::battery::Battery;
use tinysdr_power::duty::DutyCycle;
use tinysdr_power::energy::EnergyLedger;
use tinysdr_rf::pathloss::{Link, LogDistance};

/// AP transmit power (paper: "transmitting at 14 dBm").
pub const AP_TX_POWER_DBM: f64 = 14.0;
/// AP patch-antenna gain, dB.
pub const AP_ANTENNA_GAIN_DB: f64 = 6.0;

/// One testbed node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Device identifier.
    pub id: u16,
    /// Distance from the AP, meters.
    pub distance_m: f64,
    /// Frozen link (shadowing realization).
    pub link: Link,
    /// Downlink RSSI from the AP, dBm.
    pub rssi_dbm: f64,
}

/// The campus testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Propagation model.
    pub model: LogDistance,
    /// The nodes.
    pub nodes: Vec<Node>,
}

impl Testbed {
    /// Build the 20-node campus testbed. Distances are log-uniform
    /// between 100 m and 2.5 km (near buildings through the campus
    /// edge), with per-link lognormal shadowing — all seeded. The far
    /// tail sits near the SF8/BW500 sensitivity, which is what spreads
    /// the Fig. 14 CDF to the right.
    pub fn campus(seed: u64) -> Self {
        Self::with_nodes(20, seed)
    }

    /// Build a testbed with `n` nodes (`n <= 65_536`, the node-id space).
    pub fn with_nodes(n: usize, seed: u64) -> Self {
        assert!(
            n <= u16::MAX as usize + 1,
            "node ids are u16, got {n} nodes"
        );
        let model = LogDistance::campus_915mhz();
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = (0..n)
            .map(|i| {
                let log_d = rng.gen_range(100f64.ln()..2500f64.ln());
                let distance_m = log_d.exp();
                let mut link = Link::new(&model, distance_m, seed ^ (i as u64 * 7919));
                link.antenna_gains_db = AP_ANTENNA_GAIN_DB;
                let rssi = link.rssi_dbm(&model, AP_TX_POWER_DBM);
                Node {
                    id: i as u16,
                    distance_m,
                    link,
                    rssi_dbm: rssi,
                }
            })
            .collect();
        Testbed { model, nodes }
    }

    /// RSSI distribution across nodes, dBm.
    pub fn rssi_spread(&self) -> (f64, f64) {
        let min = self
            .nodes
            .iter()
            .map(|n| n.rssi_dbm)
            .fold(f64::MAX, f64::min);
        let max = self
            .nodes
            .iter()
            .map(|n| n.rssi_dbm)
            .fold(f64::MIN, f64::max);
        (min, max)
    }

    /// Location-dependent co-channel interference loss probability for a
    /// node, in `[0, 0.08)` — drawn from the node's own seed stream, so
    /// the draw is independent of programming order and shard layout.
    pub fn interference_loss(campaign_seed: u64, node_id: u16) -> f64 {
        let mut rng = StdRng::seed_from_u64(node_stream_seed(
            campaign_seed,
            node_id as u64,
            STREAM_INTERFERENCE,
        ));
        rng.gen_range(0.0..0.08)
    }

    /// The RNG seed a node's unicast programming session runs with.
    /// Exposed so tests can assert the no-collision contract.
    pub fn session_seed(campaign_seed: u64, node_id: u16) -> u64 {
        node_stream_seed(campaign_seed, node_id as u64, STREAM_SESSION)
    }

    /// Program one node: frozen link + per-node interference + the
    /// node's own session RNG stream. Pure in `(node, update, cfg)`.
    fn program_node(node: &Node, update: &BlockedUpdate, cfg: &CampaignConfig) -> SessionReport {
        let mut link = LinkModel::from_downlink(node.rssi_dbm);
        link.base_loss_prob = Self::interference_loss(cfg.seed, node.id);
        let scfg = SessionConfig {
            max_attempts: cfg.max_attempts,
            seed: Self::session_seed(cfg.seed, node.id),
        };
        run_session(update, &link, &scfg)
    }

    /// One shard's work: program a slice of nodes sequentially,
    /// accumulating the shard-local programming-time ECDF (minutes,
    /// completed sessions only).
    fn program_nodes(
        nodes: &[Node],
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
    ) -> (Vec<(u16, SessionReport)>, Ecdf) {
        let mut out = Vec::with_capacity(nodes.len());
        let mut ecdf = Ecdf::new();
        for n in nodes {
            let rep = Self::program_node(n, update, cfg);
            if rep.completed {
                ecdf.push(rep.duration_s / 60.0);
            }
            out.push((n.id, rep));
        }
        (out, ecdf)
    }

    /// Run a unicast OTA campaign over a node subset, sharded per `cfg`.
    ///
    /// # Panics
    /// Propagates a panic from any campaign shard: losing a shard's
    /// nodes would silently skew every merged ECDF.
    fn run_campaign_on(
        nodes: &[Node],
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
    ) -> CampaignReport {
        let shards = cfg.shards.clamp(1, nodes.len().max(1));
        let shard_results: Vec<(Vec<(u16, SessionReport)>, Ecdf)> = if shards <= 1 {
            vec![Self::program_nodes(nodes, update, cfg)]
        } else {
            let chunk = nodes.len().div_ceil(shards);
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = nodes
                    .chunks(chunk)
                    .map(|c| s.spawn(move |_| Self::program_nodes(c, update, cfg)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("campaign shard panicked"))
                    .collect()
            })
            .expect("campaign scope")
        };
        CampaignReport::from_shards(shard_results)
    }

    /// Run a unicast OTA campaign: program every node with `update`.
    /// With `cfg.shards == 1` this is the paper's §3.4 flow (the AP
    /// programs nodes back to back); with more shards the sessions are
    /// simulated in parallel under the determinism contract (the result
    /// is bit-identical to the sequential run).
    pub fn run_campaign(&self, update: &BlockedUpdate, cfg: &CampaignConfig) -> CampaignReport {
        Self::run_campaign_on(&self.nodes, update, cfg)
    }

    /// Back-compat convenience: sequential unicast campaign.
    pub fn ota_campaign(&self, update: &BlockedUpdate, seed: u64) -> CampaignReport {
        self.run_campaign(update, &CampaignConfig::sequential(seed))
    }

    /// Run the §7 broadcast strategy: one shared broadcast with
    /// NACK-driven repair rounds, then targeted unicast repair sessions
    /// (through the sharded unicast engine) for any node the broadcast
    /// phase left incomplete.
    pub fn broadcast_campaign(
        &self,
        update: &BlockedUpdate,
        cfg: &BroadcastCampaignConfig,
    ) -> BroadcastCampaignReport {
        let links: Vec<LinkModel> = self
            .nodes
            .iter()
            .map(|n| {
                let mut l = LinkModel::from_downlink(n.rssi_dbm);
                l.base_loss_prob = Self::interference_loss(cfg.repair.seed, n.id);
                l
            })
            .collect();
        let ids: Vec<u64> = self.nodes.iter().map(|n| n.id as u64).collect();
        let broadcast = run_broadcast_keyed(
            update,
            &links,
            &ids,
            &BroadcastConfig {
                max_rounds: cfg.max_rounds,
                seed: stream_seed(cfg.repair.seed, STREAM_BROADCAST),
            },
        );
        let stragglers: Vec<Node> = self
            .nodes
            .iter()
            .zip(&broadcast.node_complete)
            .filter(|(_, &done)| !done)
            .map(|(n, _)| n.clone())
            .collect();
        let straggler_ids: Vec<u16> = stragglers.iter().map(|n| n.id).collect();
        let repaired = Self::run_campaign_on(&stragglers, update, &cfg.repair);
        let total_time_s = broadcast.total_time_s + repaired.total_air_time_s();
        BroadcastCampaignReport {
            node_ids: self.nodes.iter().map(|n| n.id).collect(),
            broadcast,
            straggler_ids,
            repaired,
            total_time_s,
        }
    }

    /// The Fig. 14 CDF of programming times, minutes (completed
    /// sessions only — check [`CampaignReport::completed`] against
    /// [`CampaignReport::len`] for coverage; an all-incomplete campaign
    /// yields an empty ECDF whose accessors return `None`).
    pub fn programming_time_cdf(
        &self,
        update: &BlockedUpdate,
        seed: u64,
    ) -> (Ecdf, CampaignReport) {
        let report = self.run_campaign(update, &CampaignConfig::sequential(seed));
        (report.time_ecdf().clone(), report)
    }
}

/// Knobs for a unicast programming campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Per-packet retry budget handed to each session.
    pub max_attempts: u32,
    /// Worker threads the campaign is sharded across (1 = sequential).
    pub shards: usize,
    /// Campaign seed; every node derives its own streams from it.
    pub seed: u64,
}

impl CampaignConfig {
    /// The paper's sequential flow: one thread, 40 attempts per packet.
    pub fn sequential(seed: u64) -> Self {
        CampaignConfig {
            max_attempts: 40,
            shards: 1,
            seed,
        }
    }

    /// Shard across `shards` worker threads.
    pub fn sharded(seed: u64, shards: usize) -> Self {
        CampaignConfig {
            max_attempts: 40,
            shards: shards.max(1),
            seed,
        }
    }

    /// Shard across the machine's available cores.
    pub fn auto(seed: u64) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::sharded(seed, n)
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::sequential(1)
    }
}

/// Outcome of a unicast campaign, keyed by node id (not by iteration
/// position — shard layouts must not change what a report means).
///
/// Beyond the Fig. 14 programming-time view, the report carries the
/// campaign's **energy axis**: a per-node energy ECDF, the merged
/// per-component [`EnergyLedger`] (tags `radio_rx` / `radio_tx` /
/// `mcu` / `flash`), and battery-lifetime projections for duty-cycled
/// fleets. All of it is derived from the id-sorted reports, so the
/// sharded-equals-sequential determinism contract extends to every
/// energy number.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// `(node id, session report)`, sorted by node id.
    reports: Vec<(u16, SessionReport)>,
    /// Programming times of completed sessions, minutes; built by
    /// merging the per-shard ECDFs.
    time_ecdf: Ecdf,
    /// Per-node session energy, mJ — every node, completed or not
    /// (aborted sessions still burned their energy).
    energy_ecdf: Ecdf,
    /// Per-component ledgers of every node, merged ascending by id.
    ledger: EnergyLedger,
}

impl CampaignReport {
    fn from_shards(shards: Vec<(Vec<(u16, SessionReport)>, Ecdf)>) -> Self {
        let mut reports = Vec::with_capacity(shards.iter().map(|(r, _)| r.len()).sum());
        let mut time_ecdf = Ecdf::new();
        for (shard_reports, shard_ecdf) in shards {
            reports.extend(shard_reports);
            time_ecdf.merge(&shard_ecdf);
        }
        reports.sort_by_key(|(id, _)| *id);
        // energy views are derived from the id-sorted reports, never
        // from shard order — bit-identical regardless of shard layout
        let mut energy_ecdf = Ecdf::new();
        let mut ledger = EnergyLedger::new();
        for (_, r) in &reports {
            energy_ecdf.push(r.node_energy_mj);
            ledger.merge(&r.ledger);
        }
        CampaignReport {
            reports,
            time_ecdf,
            energy_ecdf,
            ledger,
        }
    }

    /// The session report for a node id, if the node was in the campaign.
    pub fn get(&self, id: u16) -> Option<&SessionReport> {
        self.reports
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|k| &self.reports[k].1)
    }

    /// All `(node id, report)` pairs, ascending by node id.
    pub fn reports(&self) -> &[(u16, SessionReport)] {
        &self.reports
    }

    /// Iterate over `(node id, report)` pairs, ascending by node id.
    pub fn iter(&self) -> impl Iterator<Item = &(u16, SessionReport)> {
        self.reports.iter()
    }

    /// Number of nodes in the campaign.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` if the campaign covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Number of nodes whose session completed.
    pub fn completed(&self) -> usize {
        self.reports.iter().filter(|(_, r)| r.completed).count()
    }

    /// Sum of session durations, seconds — the AP's wall-clock time when
    /// sessions run back to back over the shared channel (simulation
    /// shards don't shorten air time; there is still one AP radio).
    pub fn total_air_time_s(&self) -> f64 {
        self.reports.iter().map(|(_, r)| r.duration_s).sum()
    }

    /// Programming-time ECDF (minutes, completed sessions only). Empty
    /// — all accessors `None` — when no session completed.
    pub fn time_ecdf(&self) -> &Ecdf {
        &self.time_ecdf
    }

    /// Per-node session energy ECDF, mJ — **all** nodes, completed or
    /// not (an aborted session still burned what it burned). Empty —
    /// all accessors `None` — for an empty campaign.
    pub fn energy_ecdf(&self) -> &Ecdf {
        &self.energy_ecdf
    }

    /// Total node-side energy across the campaign, mJ (summed
    /// ascending by node id).
    pub fn total_energy_mj(&self) -> f64 {
        self.reports.iter().map(|(_, r)| r.node_energy_mj).sum()
    }

    /// The merged per-component ledger of every node, ascending by id
    /// (tags `radio_rx`, `radio_tx`, `mcu`, `flash`).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Campaign energy per component, mJ (from the merged ledger).
    pub fn energy_by_tag(&self) -> BTreeMap<String, f64> {
        self.ledger.by_tag()
    }

    /// Battery-lifetime projection: each node repeats its session every
    /// `period_s` seconds and spends the rest at the `sleep_mw` floor
    /// (pass [`tinysdr_power::state::deep_sleep_mw`] for the paper's
    /// 30 µW). Returns the ECDF of per-node lifetimes in **years**.
    ///
    /// Nodes whose session does not fit the period are projected as
    /// continuously active (back-to-back updates); the backbone-radio
    /// wake itself is treated as free — waking the OTA listener needs
    /// no FPGA boot (§3.4 turns the FPGA *off* in update mode).
    ///
    /// # Panics
    /// Panics on a non-positive/non-finite `period_s` or a negative/
    /// non-finite `sleep_mw` — garbage inputs must not be silently
    /// projected as always-on.
    pub fn battery_life_years_ecdf(&self, battery: &Battery, period_s: f64, sleep_mw: f64) -> Ecdf {
        assert!(
            period_s > 0.0 && period_s.is_finite(),
            "update period must be positive"
        );
        assert!(
            sleep_mw >= 0.0 && sleep_mw.is_finite(),
            "sleep floor must be >= 0"
        );
        let mut out = Ecdf::new();
        for (_, r) in &self.reports {
            if r.duration_s <= 0.0 {
                continue;
            }
            let active_mw = r.node_energy_mj / r.duration_s;
            // a session longer than its period saturates to always-on;
            // with the inputs validated above that is the only way the
            // duty-cycle average can be absent
            let avg = if r.duration_s > period_s {
                active_mw
            } else {
                DutyCycle {
                    period_s,
                    active_s: r.duration_s,
                    active_mw,
                    sleep_mw,
                    wakeup_mj: 0.0,
                }
                .average_power_mw()
                .expect("validated pattern")
            };
            if let Some(years) = battery.lifetime_years(avg) {
                out.push(years);
            }
        }
        out
    }
}

/// Knobs for the broadcast + targeted-repair strategy.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastCampaignConfig {
    /// NACK-repair rounds the broadcast phase may use before falling
    /// back to targeted unicast.
    pub max_rounds: u32,
    /// Engine configuration (seed, shards, retry budget) for the
    /// targeted unicast repair phase; its seed also keys the broadcast
    /// streams.
    pub repair: CampaignConfig,
}

impl BroadcastCampaignConfig {
    /// Default shape: 12 broadcast repair rounds, sequential repair.
    pub fn new(seed: u64) -> Self {
        BroadcastCampaignConfig {
            max_rounds: 12,
            repair: CampaignConfig::sequential(seed),
        }
    }
}

/// Outcome of a broadcast campaign: the shared phase plus the targeted
/// unicast repairs.
#[derive(Debug, Clone)]
pub struct BroadcastCampaignReport {
    /// Node ids in testbed order — the key aligning the positional
    /// broadcast vectors with the id-keyed repair report.
    pub node_ids: Vec<u16>,
    /// The shared broadcast phase (`node_complete`/`node_energy_mj` are
    /// positional, in testbed order).
    pub broadcast: BroadcastReport,
    /// Node ids the broadcast phase left incomplete — the targets of
    /// the repair phase.
    pub straggler_ids: Vec<u16>,
    /// Targeted unicast repair sessions for broadcast stragglers
    /// (empty when the broadcast phase reached everyone).
    pub repaired: CampaignReport,
    /// Broadcast time plus repair sessions back to back, seconds.
    pub total_time_s: f64,
}

impl BroadcastCampaignReport {
    /// `true` once every node holds the full image (via broadcast or a
    /// repair session).
    pub fn all_complete(&self) -> bool {
        self.straggler_ids
            .iter()
            .all(|&id| self.repaired.get(id).map(|r| r.completed).unwrap_or(false))
    }

    /// Per-node campaign energy, mJ: what the node spent listening to
    /// the shared broadcast (plus NACKing) plus, for stragglers, the
    /// targeted repair session on top.
    pub fn node_energy_ecdf(&self) -> Ecdf {
        let mut e = Ecdf::new();
        for (i, &id) in self.node_ids.iter().enumerate() {
            let mut mj = self.broadcast.node_energy_mj[i];
            if let Some(r) = self.repaired.get(id) {
                mj += r.node_energy_mj;
            }
            e.push(mj);
        }
        e
    }

    /// Total node-side energy across broadcast and repair phases, mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.broadcast.node_energy_mj.iter().sum::<f64>() + self.repaired.total_energy_mj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinysdr_ota::image::FirmwareImage;

    #[test]
    fn campus_has_20_nodes_with_spread() {
        let tb = Testbed::campus(42);
        assert_eq!(tb.nodes.len(), 20);
        let (min, max) = tb.rssi_spread();
        // near node strong, far node weak, all above BW500 sensitivity
        assert!(max > -80.0, "strongest {max}");
        assert!(min < -95.0, "weakest {min}");
        assert!(min > -125.0, "weakest {min} must still be reachable");
    }

    #[test]
    fn distances_span_campus() {
        let tb = Testbed::campus(42);
        let dmin = tb
            .nodes
            .iter()
            .map(|n| n.distance_m)
            .fold(f64::MAX, f64::min);
        let dmax = tb
            .nodes
            .iter()
            .map(|n| n.distance_m)
            .fold(f64::MIN, f64::max);
        assert!(dmin < 150.0);
        assert!(dmax > 1000.0);
    }

    #[test]
    fn mcu_campaign_mean_matches_fig14() {
        // MCU images (≈24 KB compressed): paper Fig. 14 shows ≈39 s mean
        let tb = Testbed::campus(42);
        let img = FirmwareImage::paper_mcu("mac", 3);
        let upd = BlockedUpdate::build(&img);
        let (mut ecdf, reports) = tb.programming_time_cdf(&upd, 7);
        // the far tail of the campus may be unreachable at SF8/BW500 —
        // the paper's AP placement guaranteed coverage; we tolerate one
        // node out of range
        let completed = reports.completed();
        assert!(completed >= 19, "only {completed}/20 nodes completed");
        let mean_s = ecdf.mean().expect("completed sessions") * 60.0;
        assert!((mean_s - 45.0).abs() < 15.0, "MCU campaign mean {mean_s} s");
        // CDF spread: far nodes pay for retransmissions
        assert!(ecdf.max().unwrap() > ecdf.min().unwrap());
    }

    #[test]
    fn far_nodes_take_longer() {
        let tb = Testbed::campus(11);
        let img = FirmwareImage::mcu("m", 20_000, 5);
        let upd = BlockedUpdate::build(&img);
        let reports = tb.ota_campaign(&upd, 3);
        // correlate RSSI with duration: weakest third vs strongest third
        let mut by_rssi: Vec<_> = tb
            .nodes
            .iter()
            .map(|n| {
                (
                    n.rssi_dbm,
                    reports.get(n.id).expect("node in campaign").duration_s,
                )
            })
            .collect();
        by_rssi.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let weak_mean: f64 = by_rssi[..6].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        let strong_mean: f64 = by_rssi[14..].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        assert!(
            weak_mean >= strong_mean,
            "weak {weak_mean} vs strong {strong_mean}"
        );
    }

    #[test]
    fn testbed_is_reproducible() {
        let a = Testbed::campus(9);
        let b = Testbed::campus(9);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.rssi_dbm, y.rssi_dbm);
        }
        let c = Testbed::campus(10);
        assert!(a.nodes[0].rssi_dbm != c.nodes[0].rssi_dbm);
    }

    #[test]
    fn custom_size_testbeds() {
        let tb = Testbed::with_nodes(5, 1);
        assert_eq!(tb.nodes.len(), 5);
    }

    #[test]
    fn node_seeds_never_collide_with_each_other_or_the_campaign_rng() {
        // regression: `seed ^ (id as u64) << 8` parsed as
        // `seed ^ (id << 8)`, so node 0's session ran on the bare
        // campaign seed and low ids differed in a few bits only
        let campaign_seed = 42u64;
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(campaign_seed));
        for id in 0..2048u16 {
            assert!(
                seen.insert(Testbed::session_seed(campaign_seed, id)),
                "session seed collision at node {id}"
            );
        }
        assert_ne!(Testbed::session_seed(campaign_seed, 0), campaign_seed);
    }

    #[test]
    fn interference_is_per_node_and_order_independent() {
        let a = Testbed::interference_loss(7, 3);
        assert_eq!(a, Testbed::interference_loss(7, 3), "pure in (seed, id)");
        assert!((0.0..0.08).contains(&a));
        assert_ne!(a, Testbed::interference_loss(7, 4));
        assert_ne!(a, Testbed::interference_loss(8, 3));
    }

    #[test]
    fn sharded_campaign_is_bit_identical_to_sequential() {
        // the determinism contract: same seed -> identical reports,
        // regardless of shard count / thread interleaving
        let tb = Testbed::with_nodes(64, 5);
        let img = FirmwareImage::mcu("fw", 8_000, 2);
        let upd = BlockedUpdate::build(&img);
        let seq = tb.run_campaign(&upd, &CampaignConfig::sequential(11));
        assert_eq!(seq.len(), 64);
        for shards in [2usize, 3, 8, 64] {
            let par = tb.run_campaign(&upd, &CampaignConfig::sharded(11, shards));
            assert_eq!(seq.reports(), par.reports(), "{shards} shards diverged");
            // merged per-shard ECDFs hold the same distribution
            let mut a = seq.time_ecdf().clone();
            let mut b = par.time_ecdf().clone();
            assert_eq!(a.len(), b.len());
            assert_eq!(a.curve(), b.curve());
            // the contract extends to the energy axis: ECDF, merged
            // ledger and per-tag totals are all bit-identical
            assert_eq!(
                seq.energy_ecdf().clone().curve(),
                par.energy_ecdf().clone().curve(),
                "{shards} shards: energy ECDF diverged"
            );
            assert_eq!(seq.ledger(), par.ledger(), "{shards} shards: ledger");
            assert_eq!(seq.energy_by_tag(), par.energy_by_tag());
            assert_eq!(seq.total_energy_mj(), par.total_energy_mj());
        }
        // shard counts beyond the node count are clamped, not a panic
        let wide = tb.run_campaign(&upd, &CampaignConfig::sharded(11, 1000));
        assert_eq!(seq.reports(), wide.reports());
    }

    #[test]
    fn campaign_reports_are_keyed_by_node_id() {
        let tb = Testbed::with_nodes(9, 3);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("k", 6_000, 1));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sharded(5, 4));
        for n in &tb.nodes {
            assert!(rep.get(n.id).is_some(), "node {} missing", n.id);
        }
        assert!(rep.get(9).is_none());
        let ids: Vec<u16> = rep.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "reports must come back ordered by node id");
    }

    #[test]
    fn empty_campaign_cdf_is_explicit() {
        // regression: with zero completed sessions the ECDF accessors
        // used to panic (min/max/quantile) or lie (mean() == 0.0)
        let mut tb = Testbed::with_nodes(3, 1);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -140.0; // below any fading margin: nothing completes
        }
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("dead", 5_000, 1));
        let (mut ecdf, reports) = tb.programming_time_cdf(&upd, 2);
        assert_eq!(reports.completed(), 0);
        assert!(ecdf.is_empty());
        assert_eq!(ecdf.mean(), None);
        assert_eq!(ecdf.min(), None);
        assert_eq!(ecdf.max(), None);
        assert_eq!(ecdf.quantile(0.5), None);
    }

    #[test]
    fn campaign_energy_axis_is_consistent() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::paper_mcu("mac", 3));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(7));
        // the ECDF covers every node, the ledger totals the same energy
        let mut e = rep.energy_ecdf().clone();
        assert_eq!(e.len(), rep.len());
        assert!(
            (rep.ledger().total_mj() - rep.total_energy_mj()).abs() < 1e-6 * rep.total_energy_mj(),
            "ledger {} vs sum {}",
            rep.ledger().total_mj(),
            rep.total_energy_mj()
        );
        // per-tag breakdown: the radio dominates an OTA session
        let tags = rep.energy_by_tag();
        assert!(tags["radio_rx"] > tags["mcu"]);
        assert!(tags["radio_rx"] > tags["radio_tx"]);
        assert!(tags.contains_key("flash"));
        // far nodes retransmit more, so energy spreads like time does
        assert!(e.max().unwrap() > e.min().unwrap());
        // paper anchor: an MCU update costs ~1.9 kJ·10⁻³ per node on a
        // strong link; the campus median sits in the same decade
        let med = e.quantile(0.5).unwrap();
        assert!(med > 1000.0 && med < 8000.0, "median {med} mJ");
    }

    #[test]
    fn battery_projection_scales_with_update_period() {
        use tinysdr_power::battery::Battery;
        let tb = Testbed::with_nodes(8, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("fw", 8_000, 2));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(3));
        let b = Battery::lipo_1000mah();
        let sleep = tinysdr_power::state::deep_sleep_mw();
        let daily = rep.battery_life_years_ecdf(&b, 86_400.0, sleep);
        let weekly = rep.battery_life_years_ecdf(&b, 7.0 * 86_400.0, sleep);
        let (mut d, mut w) = (daily.clone(), weekly.clone());
        assert_eq!(d.len(), rep.len());
        // updating 7x less often must extend every quantile of life
        assert!(w.quantile(0.5).unwrap() > d.quantile(0.5).unwrap());
        // and nothing can outlive the sleep-floor bound (~14 years)
        let bound = b.lifetime_years(sleep).unwrap();
        assert!(w.max().unwrap() <= bound);
        // a node updated continuously lives measured-in-days
        let frantic = rep.battery_life_years_ecdf(&b, 1.0, sleep);
        assert!(frantic.clone().max().unwrap() < 0.1);
    }

    #[test]
    fn broadcast_report_carries_the_energy_axis() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("bc", 10_000, 4));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 6,
            repair: CampaignConfig::sequential(9),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        let mut e = rep.node_energy_ecdf();
        assert_eq!(e.len(), tb.nodes.len());
        assert!(
            (e.mean().unwrap() * tb.nodes.len() as f64 - rep.total_energy_mj()).abs()
                < 1e-6 * rep.total_energy_mj()
        );
        // stragglers paid broadcast + repair: they sit at the top
        if let Some(&id) = rep.straggler_ids.first() {
            let pos = rep.node_ids.iter().position(|&n| n == id).unwrap();
            let straggler_mj =
                rep.broadcast.node_energy_mj[pos] + rep.repaired.get(id).unwrap().node_energy_mj;
            assert!(straggler_mj > e.quantile(0.5).unwrap());
        }
    }

    #[test]
    fn targeted_repair_completes_what_broadcast_misses() {
        // strong links but location-dependent interference (several
        // percent per-packet loss), and a broadcast phase with zero
        // repair rounds: whoever misses a packet in the single pass
        // must be finished by a targeted unicast session
        let mut tb = Testbed::with_nodes(6, 3);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -90.0;
        }
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("strag", 8_000, 2));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 0,
            repair: CampaignConfig::sequential(4),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(!rep.repaired.is_empty(), "the lossy node must need repair");
        assert!(
            rep.all_complete(),
            "repair phase must finish the stragglers"
        );
        // a repair session is the same session the unicast campaign
        // would have run: same seed stream, same link
        let uni = tb.run_campaign(&upd, &CampaignConfig::sequential(4));
        for (id, r) in rep.repaired.iter() {
            assert_eq!(uni.get(*id), Some(r));
        }
    }

    #[test]
    fn broadcast_campaign_handles_reordered_node_lists() {
        // node ids and vector positions diverge after a reorder; the
        // repair bookkeeping must follow ids, not positions
        let mut tb = Testbed::with_nodes(6, 3);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -90.0;
        }
        tb.nodes.reverse();
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("strag", 8_000, 2));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 0,
            repair: CampaignConfig::sequential(4),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(
            !rep.straggler_ids.is_empty(),
            "single pass must leave stragglers"
        );
        for &id in &rep.straggler_ids {
            assert!(rep.repaired.get(id).is_some(), "repair keyed by id {id}");
        }
        assert!(rep.all_complete());
    }

    #[test]
    fn broadcast_campaign_repairs_stragglers() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("bc", 10_000, 4));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 6,
            repair: CampaignConfig::sequential(9),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(
            rep.all_complete(),
            "broadcast + targeted repair must reach the campus"
        );
        // the shared phase plus repairs still crushes 20 unicast sessions
        let uni = tb.run_campaign(&upd, &CampaignConfig::sequential(9));
        assert!(
            rep.total_time_s < uni.total_air_time_s() / 3.0,
            "broadcast {:.0}s vs unicast {:.0}s",
            rep.total_time_s,
            uni.total_air_time_s()
        );
    }
}

//! The 20-node campus testbed (paper Fig. 7) and the OTA campaign
//! engine behind Fig. 14.
//!
//! "We deploy a testbed of 20 tinySDR devices across our institution's
//! campus" — node positions span tens of meters to about two kilometers
//! from the LoRa access point, giving the RSSI spread that turns into
//! Fig. 14's programming-time CDF.
//!
//! The campaign layer scales past the paper's 20 nodes, all the way to
//! the ROADMAP's million-node fleets:
//!
//! * **Work-stealing block scheduler** — nodes are split into fixed
//!   blocks of [`CampaignConfig::block_len`] ids; worker threads claim
//!   blocks from a shared atomic cursor (fast workers steal what slow
//!   ones would have owned under static chunking) and an in-order
//!   merger folds finished blocks **strictly by block index**. Every
//!   floating-point sum therefore has a fixed association, so a
//!   sharded campaign is **bit-identical** to the sequential one for
//!   the same seed — including every energy number — regardless of
//!   shard count or steal interleaving. (Per-node randomness comes
//!   from order-independent [`tinysdr_ota::seed`] streams, as before.)
//! * **Streaming aggregation** — per-block results fold into a
//!   [`NodeAggregate`]; with [`RetainMode::Sketch`] the report's
//!   memory is independent of node count ([`RetainMode::Exact`], the
//!   default, retains per-node reports so paper-scale figures are
//!   unchanged).
//! * **Checkpoint/resume** — [`Testbed::run_campaign_checkpointed`]
//!   persists the merged prefix through
//!   [`tinysdr_ota::checkpoint`] and resumes a killed campaign
//!   bit-identically to an uninterrupted run.
//!
//! Two programming strategies are wired in: the paper's §3.4
//! sequential unicast ([`Testbed::run_campaign`]) and the §7 broadcast
//! with NACK-repair rounds plus targeted unicast repair
//! ([`Testbed::broadcast_campaign`]).
//!
//! Campaign payload air time is priced through the workspace-wide
//! [`tinysdr_rf::phy::PhyModem`] seam: every session asks the OTA
//! link's modem (`LinkModel::phy()`, the framed LoRa implementor) for
//! [`tinysdr_rf::phy::PhyModem::airtime_s`] rather than keeping a
//! parallel formula.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tinysdr_dsp::cancel::CancelToken;
use tinysdr_dsp::stats::Ecdf;
use tinysdr_ota::aggregate::{LifeProjection, NodeAggregate, NodeMetric, RetainMode};
use tinysdr_ota::blocks::BlockedUpdate;
use tinysdr_ota::broadcast::{run_broadcast_keyed, BroadcastConfig, BroadcastReport};
use tinysdr_ota::checkpoint::{chain_mix, CampaignCheckpoint, CheckpointError, VERSION};
use tinysdr_ota::json::{EcdfTable, Value};
use tinysdr_ota::seed::{
    node_stream_seed, stream_seed, STREAM_BROADCAST, STREAM_INTERFERENCE, STREAM_SESSION,
};
use tinysdr_ota::session::{run_session, LinkModel, SessionConfig, SessionReport};
use tinysdr_power::battery::Battery;
use tinysdr_power::duty::projected_life_years;
use tinysdr_power::energy::EnergyLedger;
use tinysdr_rf::pathloss::{Link, LogDistance};

/// AP transmit power (paper: "transmitting at 14 dBm").
pub const AP_TX_POWER_DBM: f64 = 14.0;
/// AP patch-antenna gain, dB.
pub const AP_ANTENNA_GAIN_DB: f64 = 6.0;

/// Default scheduler block length, nodes per block. Small enough that
/// modest campaigns exercise real work stealing, large enough that the
/// per-block merge lock is noise (a block is hundreds of milliseconds
/// of session simulation).
pub const DEFAULT_BLOCK_LEN: usize = 32;

/// One testbed node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Device identifier.
    pub id: u32,
    /// Distance from the AP, meters.
    pub distance_m: f64,
    /// Frozen link (shadowing realization).
    pub link: Link,
    /// Downlink RSSI from the AP, dBm.
    pub rssi_dbm: f64,
}

/// The campus testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Propagation model.
    pub model: LogDistance,
    /// The nodes.
    pub nodes: Vec<Node>,
}

impl Testbed {
    /// Build the 20-node campus testbed. Distances are log-uniform
    /// between 100 m and 2.5 km (near buildings through the campus
    /// edge), with per-link lognormal shadowing — all seeded. The far
    /// tail sits near the SF8/BW500 sensitivity, which is what spreads
    /// the Fig. 14 CDF to the right.
    pub fn campus(seed: u64) -> Self {
        Self::with_nodes(20, seed)
    }

    /// Build a testbed with `n` nodes (`n <= 2^32`, the node-id
    /// space). The testbed itself is `O(n)` — one [`Node`] per device;
    /// it is the campaign *report* whose memory the sketch mode keeps
    /// flat.
    pub fn with_nodes(n: usize, seed: u64) -> Self {
        assert!(
            n <= u32::MAX as usize + 1,
            "node ids are u32, got {n} nodes"
        );
        let model = LogDistance::campus_915mhz();
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = (0..n)
            .map(|i| {
                let log_d = rng.gen_range(100f64.ln()..2500f64.ln());
                let distance_m = log_d.exp();
                let mut link = Link::new(&model, distance_m, seed ^ (i as u64 * 7919));
                link.antenna_gains_db = AP_ANTENNA_GAIN_DB;
                let rssi = link.rssi_dbm(&model, AP_TX_POWER_DBM);
                Node {
                    id: i as u32,
                    distance_m,
                    link,
                    rssi_dbm: rssi,
                }
            })
            .collect();
        Testbed { model, nodes }
    }

    /// RSSI distribution across nodes, dBm.
    pub fn rssi_spread(&self) -> (f64, f64) {
        let min = self
            .nodes
            .iter()
            .map(|n| n.rssi_dbm)
            .fold(f64::MAX, f64::min);
        let max = self
            .nodes
            .iter()
            .map(|n| n.rssi_dbm)
            .fold(f64::MIN, f64::max);
        (min, max)
    }

    /// Location-dependent co-channel interference loss probability for a
    /// node, in `[0, 0.08)` — drawn from the node's own seed stream, so
    /// the draw is independent of programming order and shard layout.
    pub fn interference_loss(campaign_seed: u64, node_id: u32) -> f64 {
        let mut rng = StdRng::seed_from_u64(node_stream_seed(
            campaign_seed,
            node_id as u64,
            STREAM_INTERFERENCE,
        ));
        rng.gen_range(0.0..0.08)
    }

    /// The RNG seed a node's unicast programming session runs with.
    /// Exposed so tests can assert the no-collision contract.
    pub fn session_seed(campaign_seed: u64, node_id: u32) -> u64 {
        node_stream_seed(campaign_seed, node_id as u64, STREAM_SESSION)
    }

    /// Program one node: frozen link + per-node interference + the
    /// node's own session RNG stream. Pure in `(node, update, cfg)`.
    fn program_node(node: &Node, update: &BlockedUpdate, cfg: &CampaignConfig) -> SessionReport {
        let mut link = LinkModel::from_downlink(node.rssi_dbm);
        link.base_loss_prob = Self::interference_loss(cfg.seed, node.id);
        let scfg = SessionConfig {
            max_attempts: cfg.max_attempts,
            seed: Self::session_seed(cfg.seed, node.id),
        };
        run_session(update, &link, &scfg)
    }

    /// One scheduler block's work: program a slice of nodes
    /// sequentially into a fresh block-local aggregate.
    fn program_block(nodes: &[Node], update: &BlockedUpdate, cfg: &CampaignConfig) -> BlockOut {
        let mut agg = NodeAggregate::new(cfg.retain, cfg.projection);
        let mut reports = Vec::with_capacity(if cfg.retain.is_exact() {
            nodes.len()
        } else {
            0
        });
        for n in nodes {
            let rep = Self::program_node(n, update, cfg);
            agg.push_session(&rep);
            if cfg.retain.is_exact() {
                reports.push((n.id, rep));
            }
        }
        BlockOut { agg, reports }
    }

    /// Fingerprint of everything that determines a campaign's result:
    /// format version, campaign config (minus `shards`, which the
    /// determinism contract makes irrelevant), node identities/links,
    /// and the update payload. A resumed checkpoint must carry the
    /// same fingerprint or the resume is refused.
    fn campaign_fingerprint(nodes: &[Node], update: &BlockedUpdate, cfg: &CampaignConfig) -> u64 {
        let mut h = chain_mix(0xCA3B_A160_0000_0000, VERSION as u64);
        h = chain_mix(h, cfg.seed);
        h = chain_mix(h, cfg.max_attempts as u64);
        h = chain_mix(h, cfg.block_len as u64);
        match cfg.retain {
            RetainMode::Exact => h = chain_mix(h, 0),
            RetainMode::Sketch { alpha } => {
                h = chain_mix(h, 1);
                h = chain_mix(h, alpha.to_bits());
            }
        }
        match &cfg.projection {
            None => h = chain_mix(h, 0),
            Some(p) => {
                h = chain_mix(h, 1);
                h = chain_mix(h, p.period_s.to_bits());
                h = chain_mix(h, p.sleep_mw.to_bits());
                h = chain_mix(h, p.battery.capacity_mah.to_bits());
                h = chain_mix(h, p.battery.voltage_v.to_bits());
                h = chain_mix(h, p.battery.usable_fraction.to_bits());
            }
        }
        h = chain_mix(h, nodes.len() as u64);
        for n in nodes {
            h = chain_mix(h, n.id as u64);
            h = chain_mix(h, n.rssi_dbm.to_bits());
        }
        h = chain_mix(h, update.raw_len as u64);
        h = chain_mix(h, update.image_crc32 as u64);
        h = chain_mix(h, update.compressed_len() as u64);
        h = chain_mix(h, update.blocks.len() as u64);
        h
    }

    /// The scheduler core: claim blocks from the shared cursor, fold
    /// them through the in-order merger, stop on interruption or
    /// cooperative cancellation (checked at each block claim — the
    /// block is the campaign's cancellation granularity).
    #[allow(clippy::too_many_arguments)] // one shared scheduler context, threaded explicitly
    fn scheduler_worker(
        nodes: &[Node],
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
        nblocks: usize,
        cursor: &AtomicUsize,
        merger: &Mutex<InOrderMerger>,
        abort: &AtomicBool,
        cancel: Option<&CancelToken>,
    ) {
        loop {
            if abort.load(Ordering::Relaxed) {
                return;
            }
            if cancel.is_some_and(|c| c.is_cancelled()) {
                abort.store(true, Ordering::Relaxed);
                return;
            }
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= nblocks {
                return;
            }
            let lo = b * cfg.block_len;
            let hi = (lo + cfg.block_len).min(nodes.len());
            let out = Self::program_block(&nodes[lo..hi], update, cfg);
            // lint: allow(unjustified-panic, a poisoned merger means a sibling worker panicked; propagating is correct)
            let mut m = merger.lock().expect("merger mutex poisoned");
            m.offer(b, out);
            if m.should_abort() {
                abort.store(true, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Run a unicast campaign over a node slice with work stealing and
    /// optional checkpointing. The single engine behind
    /// [`Self::run_campaign`] and [`Self::run_campaign_checkpointed`].
    fn run_campaign_blocks(
        nodes: &[Node],
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
        ckpt: Option<&CheckpointConfig>,
        cancel: Option<&CancelToken>,
    ) -> Result<CampaignRun, CheckpointError> {
        assert!(cfg.block_len >= 1, "block_len must be at least 1");
        let nblocks = nodes.len().div_ceil(cfg.block_len);
        let fingerprint = Self::campaign_fingerprint(nodes, update, cfg);

        // resume from an existing checkpoint, if one matches
        let mut start_block = 0usize;
        let mut acc = BlockOut {
            agg: NodeAggregate::new(cfg.retain, cfg.projection),
            reports: Vec::new(),
        };
        if let Some(ck) = ckpt {
            if ck.path.exists() {
                let saved = CampaignCheckpoint::read(&ck.path)?;
                if saved.fingerprint != fingerprint {
                    return Err(CheckpointError::Mismatch(
                        "checkpoint belongs to a different campaign",
                    ));
                }
                if saved.total_blocks != nblocks as u64 {
                    return Err(CheckpointError::Mismatch(
                        "checkpoint block count disagrees with campaign",
                    ));
                }
                start_block = saved.merged_blocks as usize;
                acc = BlockOut {
                    agg: saved.agg,
                    reports: saved.reports,
                };
            }
        }

        let merger = Mutex::new(InOrderMerger {
            next_block: start_block,
            acc,
            pending: BTreeMap::new(),
            ckpt: ckpt.map(|c| CkptState {
                cfg: c.clone(),
                fingerprint,
                total_blocks: nblocks as u64,
                last_written: start_block,
            }),
            failed: None,
            stopped: false,
        });
        let cursor = AtomicUsize::new(start_block);
        let abort = AtomicBool::new(false);
        let remaining = nblocks.saturating_sub(start_block);
        let workers = cfg.shards.clamp(1, remaining.max(1));

        if workers <= 1 {
            Self::scheduler_worker(
                nodes, update, cfg, nblocks, &cursor, &merger, &abort, cancel,
            );
        } else {
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|_| {
                            Self::scheduler_worker(
                                nodes, update, cfg, nblocks, &cursor, &merger, &abort, cancel,
                            )
                        })
                    })
                    .collect();
                for h in handles {
                    // lint: allow(unjustified-panic, a panicked worker lost a block of nodes; propagating is correct)
                    h.join().expect("campaign worker panicked");
                }
            })
            // lint: allow(unjustified-panic, scope only errors if a worker panicked after join, which join already surfaced)
            .expect("campaign scope");
        }

        // lint: allow(unjustified-panic, a poisoned merger means a worker panicked; propagating is correct)
        let mut m = merger.into_inner().expect("merger mutex poisoned");
        if let Some(e) = m.failed.take() {
            return Err(e);
        }
        if m.next_block < nblocks {
            // stopped early (stop_after_blocks, or a cancel token seen
            // at a block boundary): persist the merged frontier so a
            // resume loses nothing
            m.write_checkpoint()?;
            if !m.stopped && cancel.is_some_and(|c| c.is_cancelled()) {
                return Ok(CampaignRun::Cancelled {
                    merged_blocks: m.next_block,
                    total_blocks: nblocks,
                });
            }
            return Ok(CampaignRun::Interrupted {
                merged_blocks: m.next_block,
                total_blocks: nblocks,
            });
        }
        if m.ckpt.is_some() {
            m.write_checkpoint()?;
        }
        Ok(CampaignRun::Complete(CampaignReport::from_blocks(m.acc)))
    }

    /// Run a unicast OTA campaign over a node subset, sharded per `cfg`.
    ///
    /// # Panics
    /// Propagates a panic from any campaign worker: losing a block's
    /// nodes would silently skew every merged distribution.
    fn run_campaign_on(
        nodes: &[Node],
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
    ) -> CampaignReport {
        match Self::run_campaign_blocks(nodes, update, cfg, None, None) {
            Ok(CampaignRun::Complete(rep)) => rep,
            // without a checkpoint config or cancel token there is no
            // I/O and no stop condition, so the engine cannot fail or
            // stop early
            Ok(CampaignRun::Interrupted { .. } | CampaignRun::Cancelled { .. }) | Err(_) => {
                unreachable!("checkpoint-free campaign cannot stop early or fail")
            }
        }
    }

    /// Run a unicast OTA campaign: program every node with `update`.
    /// With `cfg.shards == 1` this is the paper's §3.4 flow (the AP
    /// programs nodes back to back); with more shards the sessions are
    /// simulated by work-stealing workers under the determinism
    /// contract (the result is bit-identical to the sequential run).
    pub fn run_campaign(&self, update: &BlockedUpdate, cfg: &CampaignConfig) -> CampaignReport {
        Self::run_campaign_on(&self.nodes, update, cfg)
    }

    /// Run a unicast campaign with periodic checkpoints, resuming from
    /// `ckpt.path` when a matching checkpoint exists. A resumed run is
    /// **bit-identical** to an uninterrupted one: the merged prefix is
    /// restored from disk and the remaining blocks are recomputed from
    /// their order-independent seed streams.
    ///
    /// Errors surface as [`CheckpointError`]: I/O problems, corrupt
    /// files, or a checkpoint written by a different campaign
    /// configuration. With [`CheckpointConfig::stop_after_blocks`] set
    /// the run stops early (writing a final checkpoint) and returns
    /// [`CampaignRun::Interrupted`] — the kill half of the CI
    /// kill/resume equality gate.
    pub fn run_campaign_checkpointed(
        &self,
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
        ckpt: &CheckpointConfig,
    ) -> Result<CampaignRun, CheckpointError> {
        Self::run_campaign_blocks(&self.nodes, update, cfg, Some(ckpt), None)
    }

    /// [`Self::run_campaign`] with cooperative cancellation: `cancel`
    /// is checked at every block claim, and a cancelled run returns
    /// [`CampaignRun::Cancelled`] with the merged frontier (nothing is
    /// persisted — combine with a checkpoint config via
    /// [`Self::run_campaign_checkpointed_cancellable`] when the
    /// partial work should survive). A token that is never cancelled
    /// changes nothing: the result is bit-identical to
    /// [`Self::run_campaign`].
    pub fn run_campaign_cancellable(
        &self,
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
        cancel: &CancelToken,
    ) -> CampaignRun {
        match Self::run_campaign_blocks(&self.nodes, update, cfg, None, Some(cancel)) {
            Ok(run) => run,
            // lint: allow(unjustified-panic, without a checkpoint config the engine performs no I/O so Err is impossible)
            Err(_) => unreachable!("checkpoint-free campaign cannot fail"),
        }
    }

    /// [`Self::run_campaign_checkpointed`] with cooperative
    /// cancellation. On cancellation the merged frontier is written to
    /// `ckpt.path` first — the graceful-shutdown path of the testbed
    /// daemon: cancel, checkpoint, and a later identical call resumes
    /// bit-identically to an uninterrupted run.
    pub fn run_campaign_checkpointed_cancellable(
        &self,
        update: &BlockedUpdate,
        cfg: &CampaignConfig,
        ckpt: &CheckpointConfig,
        cancel: &CancelToken,
    ) -> Result<CampaignRun, CheckpointError> {
        Self::run_campaign_blocks(&self.nodes, update, cfg, Some(ckpt), Some(cancel))
    }

    /// Back-compat convenience: sequential unicast campaign.
    pub fn ota_campaign(&self, update: &BlockedUpdate, seed: u64) -> CampaignReport {
        self.run_campaign(update, &CampaignConfig::sequential(seed))
    }

    /// Run the §7 broadcast strategy: one shared broadcast with
    /// NACK-driven repair rounds, then targeted unicast repair sessions
    /// (through the sharded unicast engine) for any node the broadcast
    /// phase left incomplete.
    pub fn broadcast_campaign(
        &self,
        update: &BlockedUpdate,
        cfg: &BroadcastCampaignConfig,
    ) -> BroadcastCampaignReport {
        let links: Vec<LinkModel> = self
            .nodes
            .iter()
            .map(|n| {
                let mut l = LinkModel::from_downlink(n.rssi_dbm);
                l.base_loss_prob = Self::interference_loss(cfg.repair.seed, n.id);
                l
            })
            .collect();
        let ids: Vec<u64> = self.nodes.iter().map(|n| n.id as u64).collect();
        let broadcast = run_broadcast_keyed(
            update,
            &links,
            &ids,
            &BroadcastConfig {
                max_rounds: cfg.max_rounds,
                seed: stream_seed(cfg.repair.seed, STREAM_BROADCAST),
            },
        );
        let stragglers: Vec<Node> = self
            .nodes
            .iter()
            .zip(&broadcast.node_complete)
            .filter(|(_, &done)| !done)
            .map(|(n, _)| n.clone())
            .collect();
        let straggler_ids: Vec<u32> = stragglers.iter().map(|n| n.id).collect();
        let repaired = Self::run_campaign_on(&stragglers, update, &cfg.repair);
        let total_time_s = broadcast.total_time_s + repaired.total_air_time_s();
        BroadcastCampaignReport {
            node_ids: self.nodes.iter().map(|n| n.id).collect(),
            broadcast,
            straggler_ids,
            repaired,
            total_time_s,
        }
    }

    /// The Fig. 14 CDF of programming times, minutes (completed
    /// sessions only — check [`CampaignReport::completed`] against
    /// [`CampaignReport::len`] for coverage; an all-incomplete campaign
    /// yields an empty ECDF whose accessors return `None`).
    pub fn programming_time_cdf(
        &self,
        update: &BlockedUpdate,
        seed: u64,
    ) -> (Ecdf, CampaignReport) {
        let report = self.run_campaign(update, &CampaignConfig::sequential(seed));
        let ecdf = report
            .time_ecdf()
            // lint: allow(unjustified-panic, sequential() fixes RetainMode::Exact, so the ECDF always exists)
            .expect("sequential() campaigns retain exact ECDFs")
            .clone();
        (ecdf, report)
    }
}

/// One finished scheduler block: its aggregate and (exact mode only)
/// its per-node reports.
struct BlockOut {
    agg: NodeAggregate,
    reports: Vec<(u32, SessionReport)>,
}

/// Checkpointing state carried by the merger.
struct CkptState {
    cfg: CheckpointConfig,
    fingerprint: u64,
    total_blocks: u64,
    last_written: usize,
}

/// Folds finished blocks strictly in block-index order (late blocks
/// wait in `pending`), so the merged state never depends on steal
/// interleaving — the same reassembly discipline a TCP receiver
/// applies to out-of-order segments.
struct InOrderMerger {
    next_block: usize,
    acc: BlockOut,
    pending: BTreeMap<usize, BlockOut>,
    ckpt: Option<CkptState>,
    failed: Option<CheckpointError>,
    stopped: bool,
}

impl InOrderMerger {
    fn offer(&mut self, idx: usize, out: BlockOut) {
        if self.failed.is_some() || self.stopped {
            return;
        }
        self.pending.insert(idx, out);
        let mut progressed = false;
        while let Some(out) = self.pending.remove(&self.next_block) {
            self.acc.agg.merge(&out.agg);
            self.acc.reports.extend(out.reports);
            self.next_block += 1;
            progressed = true;
        }
        if !progressed {
            return;
        }
        let Some(ck) = &self.ckpt else { return };
        let stop_hit = ck
            .cfg
            .stop_after_blocks
            .is_some_and(|n| self.next_block >= n);
        let due = self.next_block - ck.last_written >= ck.cfg.every_blocks;
        if stop_hit {
            self.stopped = true;
        } else if due {
            if let Err(e) = self.write_checkpoint() {
                self.failed = Some(e);
            }
        }
    }

    fn should_abort(&self) -> bool {
        self.failed.is_some() || self.stopped
    }

    /// Persist the merged prefix. Reports are sorted by id for the
    /// writer (ids are unique, so the sort is deterministic); the
    /// in-memory order keeps following block order until finalization.
    fn write_checkpoint(&mut self) -> Result<(), CheckpointError> {
        let Some(ck) = &mut self.ckpt else {
            return Ok(());
        };
        if self.next_block == ck.last_written {
            return Ok(());
        }
        let mut reports = self.acc.reports.clone();
        reports.sort_by_key(|(id, _)| *id);
        let snapshot = CampaignCheckpoint {
            fingerprint: ck.fingerprint,
            merged_blocks: self.next_block as u64,
            total_blocks: ck.total_blocks,
            agg: self.acc.agg.clone(),
            reports,
        };
        snapshot.write_atomic(&ck.cfg.path)?;
        ck.last_written = self.next_block;
        Ok(())
    }
}

/// Knobs for a unicast programming campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Per-packet retry budget handed to each session.
    pub max_attempts: u32,
    /// Worker threads the campaign's blocks are stolen by
    /// (1 = sequential).
    pub shards: usize,
    /// Campaign seed; every node derives its own streams from it.
    pub seed: u64,
    /// What the report retains per node (exact reports vs sketches).
    pub retain: RetainMode,
    /// Scheduler block length, nodes per block. The unit of stealing,
    /// merging and checkpointing.
    pub block_len: usize,
    /// Optional battery-life projection streamed per node.
    pub projection: Option<LifeProjection>,
}

impl CampaignConfig {
    /// The paper's sequential flow: one thread, 40 attempts per packet,
    /// exact retention.
    pub fn sequential(seed: u64) -> Self {
        CampaignConfig {
            max_attempts: 40,
            shards: 1,
            seed,
            retain: RetainMode::Exact,
            block_len: DEFAULT_BLOCK_LEN,
            projection: None,
        }
    }

    /// Steal blocks across `shards` worker threads.
    pub fn sharded(seed: u64, shards: usize) -> Self {
        CampaignConfig {
            shards: shards.max(1),
            ..Self::sequential(seed)
        }
    }

    /// Steal blocks across the machine's available cores.
    pub fn auto(seed: u64) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::sharded(seed, n)
    }

    /// Select the retention mode (exact reports vs bounded-memory
    /// sketches).
    pub fn with_retain(mut self, retain: RetainMode) -> Self {
        self.retain = retain;
        self
    }

    /// Override the scheduler block length.
    ///
    /// # Panics
    /// Panics on `block_len == 0` — an empty block can never make
    /// progress.
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        assert!(block_len >= 1, "block_len must be at least 1");
        self.block_len = block_len;
        self
    }

    /// Stream a battery-life projection per node (the sketch-mode
    /// counterpart of [`CampaignReport::battery_life_years_ecdf`]).
    pub fn with_projection(mut self, projection: LifeProjection) -> Self {
        self.projection = Some(projection);
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::sequential(1)
    }
}

/// Periodic-checkpoint configuration for
/// [`Testbed::run_campaign_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path (written atomically via temp + rename).
    pub path: std::path::PathBuf,
    /// Write a checkpoint every this many newly merged blocks.
    pub every_blocks: usize,
    /// Stop (with a final checkpoint) once this many leading blocks
    /// are merged — the deterministic "kill" half of the kill/resume
    /// equality gate. `None` runs to completion.
    pub stop_after_blocks: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every `every_blocks` merged blocks.
    pub fn new(path: impl Into<std::path::PathBuf>, every_blocks: usize) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_blocks: every_blocks.max(1),
            stop_after_blocks: None,
        }
    }

    /// Stop after `n` merged blocks (simulated kill).
    pub fn stop_after(mut self, n: usize) -> Self {
        self.stop_after_blocks = Some(n);
        self
    }
}

/// Outcome of a checkpointed campaign run.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Complete is the common case; boxing it would tax every caller
pub enum CampaignRun {
    /// The campaign merged every block.
    Complete(CampaignReport),
    /// The run stopped at [`CheckpointConfig::stop_after_blocks`]; the
    /// checkpoint file holds the merged prefix for a later resume.
    Interrupted {
        /// Leading blocks merged (and persisted) before stopping.
        merged_blocks: usize,
        /// Total blocks in the campaign.
        total_blocks: usize,
    },
    /// A cancel token was observed at a block boundary. When a
    /// checkpoint config was present the merged prefix was persisted
    /// before returning, so the run can resume later exactly like
    /// [`CampaignRun::Interrupted`].
    Cancelled {
        /// Leading blocks merged before the token was observed.
        merged_blocks: usize,
        /// Total blocks in the campaign.
        total_blocks: usize,
    },
}

impl CampaignRun {
    /// The completed report.
    ///
    /// # Panics
    /// Panics if the run was interrupted or cancelled — callers that
    /// set `stop_after_blocks` or pass a cancel token must match on
    /// [`CampaignRun`] instead.
    pub fn expect_complete(self) -> CampaignReport {
        match self {
            CampaignRun::Complete(rep) => rep,
            CampaignRun::Interrupted {
                merged_blocks,
                total_blocks,
            } => panic!("campaign interrupted at block {merged_blocks}/{total_blocks}"),
            CampaignRun::Cancelled {
                merged_blocks,
                total_blocks,
            } => panic!("campaign cancelled at block {merged_blocks}/{total_blocks}"),
        }
    }
}

/// Outcome of a unicast campaign, keyed by node id (not by iteration
/// position — block layouts must not change what a report means).
///
/// Beyond the Fig. 14 programming-time view, the report carries the
/// campaign's **energy axis**: per-node energy distribution, per-tag
/// component totals (`radio_rx` / `radio_tx` / `mcu` / `flash`), and
/// battery-lifetime projections for duty-cycled fleets. All of it is
/// folded blockwise in block-index order, so the sharded-equals-
/// sequential determinism contract extends to every energy number.
///
/// In [`RetainMode::Exact`] (the default) per-node reports and exact
/// ECDFs are retained and the pre-streaming accessors
/// ([`Self::time_ecdf`], [`Self::energy_ecdf`], [`Self::ledger`])
/// return `Some`/populated values; in [`RetainMode::Sketch`] only the
/// bounded-memory aggregate exists and the distribution accessors
/// ([`Self::time_dist`] etc.) are the interface.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Streaming aggregate over every node.
    agg: NodeAggregate,
    /// `(node id, session report)`, sorted by node id — exact mode
    /// only, empty in sketch mode.
    reports: Vec<(u32, SessionReport)>,
    /// Per-component ledgers of every node, merged ascending by id —
    /// exact mode only, empty in sketch mode (use
    /// [`Self::energy_by_tag`], which works in both modes).
    ledger: EnergyLedger,
}

impl CampaignReport {
    fn from_blocks(mut acc: BlockOut) -> Self {
        acc.reports.sort_by_key(|(id, _)| *id);
        let mut ledger = EnergyLedger::new();
        for (_, r) in &acc.reports {
            ledger.merge(&r.ledger);
        }
        CampaignReport {
            agg: acc.agg,
            reports: acc.reports,
            ledger,
        }
    }

    /// The streaming aggregate behind this report.
    pub fn aggregate(&self) -> &NodeAggregate {
        &self.agg
    }

    /// The retention mode the campaign ran with.
    pub fn retain(&self) -> RetainMode {
        self.agg.retain()
    }

    /// The session report for a node id, if the node was in the
    /// campaign (exact mode; sketch mode retains no per-node reports).
    pub fn get(&self, id: u32) -> Option<&SessionReport> {
        self.reports
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|k| &self.reports[k].1)
    }

    /// All `(node id, report)` pairs, ascending by node id (empty in
    /// sketch mode).
    pub fn reports(&self) -> &[(u32, SessionReport)] {
        &self.reports
    }

    /// Iterate over `(node id, report)` pairs, ascending by node id.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, SessionReport)> {
        self.reports.iter()
    }

    /// Number of nodes in the campaign.
    pub fn len(&self) -> usize {
        self.agg.len()
    }

    /// `true` if the campaign covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.agg.is_empty()
    }

    /// Number of nodes whose session completed.
    pub fn completed(&self) -> usize {
        self.agg.completed()
    }

    /// Sum of session durations, seconds — the AP's wall-clock time when
    /// sessions run back to back over the shared channel (simulation
    /// shards don't shorten air time; there is still one AP radio).
    pub fn total_air_time_s(&self) -> f64 {
        self.agg.total_duration_s()
    }

    /// Programming-time distribution (minutes, completed sessions
    /// only) — works in both retention modes.
    pub fn time_dist(&self) -> &NodeMetric {
        self.agg.time_dist()
    }

    /// Per-node session energy distribution, mJ — **all** nodes,
    /// completed or not (an aborted session still burned what it
    /// burned). Works in both retention modes.
    pub fn energy_dist(&self) -> &NodeMetric {
        self.agg.energy_dist()
    }

    /// Per-node bytes-over-air distribution — both retention modes.
    pub fn bytes_dist(&self) -> &NodeMetric {
        self.agg.bytes_dist()
    }

    /// Projected battery-life distribution, years — present iff the
    /// campaign was configured with a [`LifeProjection`].
    pub fn life_dist(&self) -> Option<&NodeMetric> {
        self.agg.life_dist()
    }

    /// Programming-time ECDF (minutes, completed sessions only).
    /// `None` in sketch mode — use [`Self::time_dist`] there.
    pub fn time_ecdf(&self) -> Option<&Ecdf> {
        self.agg.time_dist().as_ecdf()
    }

    /// Per-node session energy ECDF, mJ. `None` in sketch mode — use
    /// [`Self::energy_dist`] there.
    pub fn energy_ecdf(&self) -> Option<&Ecdf> {
        self.agg.energy_dist().as_ecdf()
    }

    /// Total node-side energy across the campaign, mJ (folded
    /// blockwise in block-index order).
    pub fn total_energy_mj(&self) -> f64 {
        self.agg.total_energy_mj()
    }

    /// Total bytes over the air across the campaign.
    pub fn total_bytes(&self) -> u64 {
        self.agg.total_bytes()
    }

    /// The merged per-component ledger of every node, ascending by id
    /// (tags `radio_rx`, `radio_tx`, `mcu`, `flash`). Exact mode only:
    /// a million-node ledger would hold millions of records, so sketch
    /// mode leaves it empty — [`Self::energy_by_tag`] carries the
    /// per-tag totals in both modes.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Campaign energy per component, mJ — streamed per-tag totals,
    /// available in both retention modes.
    pub fn energy_by_tag(&self) -> BTreeMap<String, f64> {
        self.agg.energy_by_tag()
    }

    /// Bytes of state this report holds — the quantity sketch mode
    /// keeps independent of node count.
    pub fn memory_bytes(&self) -> usize {
        let reports: usize = self
            .reports
            .iter()
            .map(|(_, r)| {
                std::mem::size_of::<(u32, SessionReport)>()
                    + std::mem::size_of_val(r.ledger.records())
            })
            .sum();
        let ledger = std::mem::size_of_val(self.ledger.records());
        self.agg.memory_bytes() + reports + ledger
    }

    /// Battery-lifetime projection: each node repeats its session every
    /// `period_s` seconds and spends the rest at the `sleep_mw` floor
    /// (pass [`tinysdr_power::state::deep_sleep_mw`] for the paper's
    /// 30 µW). Returns the ECDF of per-node lifetimes in **years**.
    ///
    /// Exact mode only (it replays the retained reports); in sketch
    /// mode configure [`CampaignConfig::with_projection`] up front and
    /// read [`Self::life_dist`]. Both paths share
    /// [`tinysdr_power::duty::projected_life_years`], so their math
    /// cannot drift apart.
    ///
    /// # Panics
    /// Panics on a non-positive/non-finite `period_s` or a negative/
    /// non-finite `sleep_mw` — garbage inputs must not be silently
    /// projected as always-on.
    pub fn battery_life_years_ecdf(&self, battery: &Battery, period_s: f64, sleep_mw: f64) -> Ecdf {
        let mut out = Ecdf::new();
        for (_, r) in &self.reports {
            if let Some(years) =
                projected_life_years(r.node_energy_mj, r.duration_s, period_s, sleep_mw, battery)
            {
                out.push(years);
            }
        }
        out
    }
}

/// Five-number (plus mean) summary of one campaign observable, in
/// whichever retention mode the campaign ran. The JSON form of a
/// [`NodeMetric`]: everything the control plane reports per
/// distribution without shipping the full curve (that is what
/// [`CampaignReport::ecdf_tables`] is for). `None` fields (an empty
/// distribution) serialize as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSummary {
    /// Observations folded in.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Option<f64>,
    /// Smallest observation.
    pub min: Option<f64>,
    /// Largest observation.
    pub max: Option<f64>,
    /// Median.
    pub p50: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

impl DistSummary {
    /// Summarize a metric (exact or sketch mode).
    pub fn of(m: &NodeMetric) -> Self {
        DistSummary {
            count: m.len() as u64,
            mean: m.mean(),
            min: m.min(),
            max: m.max(),
            p50: m.quantile(0.50),
            p90: m.quantile(0.90),
            p99: m.quantile(0.99),
        }
    }

    /// As a JSON object.
    pub fn to_json(&self) -> Value {
        let opt = |x: Option<f64>| x.map(Value::num).unwrap_or(Value::Null);
        Value::Obj(vec![
            ("count".into(), Value::num(self.count as f64)),
            ("mean".into(), opt(self.mean)),
            ("min".into(), opt(self.min)),
            ("max".into(), opt(self.max)),
            ("p50".into(), opt(self.p50)),
            ("p90".into(), opt(self.p90)),
            ("p99".into(), opt(self.p99)),
        ])
    }

    /// Inverse of [`Self::to_json`].
    pub fn from_json(v: &Value) -> Option<DistSummary> {
        let opt = |key: &str| -> Option<Option<f64>> {
            match v.get(key)? {
                Value::Null => Some(None),
                other => Some(Some(other.as_f64()?)),
            }
        };
        Some(DistSummary {
            count: v.get("count")?.as_u64()?,
            mean: opt("mean")?,
            min: opt("min")?,
            max: opt("max")?,
            p50: opt("p50")?,
            p90: opt("p90")?,
            p99: opt("p99")?,
        })
    }
}

/// The serializable face of a [`CampaignReport`]: totals plus
/// per-observable [`DistSummary`]s, identical whichever retention mode
/// produced them. This is the document the testbed daemon writes as
/// `report.json` and `repro --json` prints — both build it through
/// [`CampaignReport::summary`], which is what makes the two outputs
/// byte-comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Nodes the campaign programmed.
    pub nodes: u64,
    /// Sessions that completed the update.
    pub completed: u64,
    /// Sum of all sessions' air time, seconds.
    pub total_air_time_s: f64,
    /// Sum of all node energies, millijoules.
    pub total_energy_mj: f64,
    /// Total bytes over the air.
    pub total_bytes: u64,
    /// Whether per-node reports were retained exactly.
    pub retain_exact: bool,
    /// Per-component energy totals, ascending by tag.
    pub energy_by_tag: Vec<(String, f64)>,
    /// Programming-time distribution, minutes.
    pub time_min: DistSummary,
    /// Per-node energy distribution, millijoules.
    pub energy_mj: DistSummary,
    /// Per-node bytes-over-air distribution.
    pub bytes: DistSummary,
    /// Battery-life projection distribution, years (campaigns with a
    /// [`LifeProjection`] only).
    pub life_years: Option<DistSummary>,
}

impl CampaignSummary {
    /// As a JSON object (`kind: "campaign"`).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("kind".into(), Value::str("campaign")),
            ("schema".into(), Value::num(1.0)),
            ("nodes".into(), Value::num(self.nodes as f64)),
            ("completed".into(), Value::num(self.completed as f64)),
            ("total_air_time_s".into(), Value::num(self.total_air_time_s)),
            ("total_energy_mj".into(), Value::num(self.total_energy_mj)),
            ("total_bytes".into(), Value::num(self.total_bytes as f64)),
            ("retain_exact".into(), Value::Bool(self.retain_exact)),
            (
                "energy_by_tag".into(),
                Value::Obj(
                    self.energy_by_tag
                        .iter()
                        .map(|(tag, mj)| (tag.clone(), Value::num(*mj)))
                        .collect(),
                ),
            ),
            ("time_min".into(), self.time_min.to_json()),
            ("energy_mj".into(), self.energy_mj.to_json()),
            ("bytes".into(), self.bytes.to_json()),
        ];
        fields.push((
            "life_years".into(),
            match &self.life_years {
                Some(d) => d.to_json(),
                None => Value::Null,
            },
        ));
        Value::Obj(fields)
    }

    /// Inverse of [`Self::to_json`].
    pub fn from_json(v: &Value) -> Option<CampaignSummary> {
        if v.get("kind")?.as_str()? != "campaign" {
            return None;
        }
        let mut energy_by_tag = Vec::new();
        for (tag, mj) in v.get("energy_by_tag")?.as_obj()? {
            energy_by_tag.push((tag.clone(), mj.as_f64()?));
        }
        Some(CampaignSummary {
            nodes: v.get("nodes")?.as_u64()?,
            completed: v.get("completed")?.as_u64()?,
            total_air_time_s: v.get("total_air_time_s")?.as_f64()?,
            total_energy_mj: v.get("total_energy_mj")?.as_f64()?,
            total_bytes: v.get("total_bytes")?.as_u64()?,
            retain_exact: v.get("retain_exact")?.as_bool()?,
            energy_by_tag,
            time_min: DistSummary::from_json(v.get("time_min")?)?,
            energy_mj: DistSummary::from_json(v.get("energy_mj")?)?,
            bytes: DistSummary::from_json(v.get("bytes")?)?,
            life_years: match v.get("life_years")? {
                Value::Null => None,
                d => Some(DistSummary::from_json(d)?),
            },
        })
    }
}

impl CampaignReport {
    /// The serializable summary of this report — a pure function of
    /// the report, so two bit-identical reports summarize to
    /// byte-identical JSON.
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary {
            nodes: self.len() as u64,
            completed: self.completed() as u64,
            total_air_time_s: self.total_air_time_s(),
            total_energy_mj: self.total_energy_mj(),
            total_bytes: self.total_bytes(),
            retain_exact: self.retain().is_exact(),
            energy_by_tag: self.energy_by_tag().into_iter().collect(),
            time_min: DistSummary::of(self.time_dist()),
            energy_mj: DistSummary::of(self.energy_dist()),
            bytes: DistSummary::of(self.bytes_dist()),
            life_years: self.life_dist().map(DistSummary::of),
        }
    }

    /// Shorthand for `summary().to_json()`.
    pub fn to_json(&self) -> Value {
        self.summary().to_json()
    }

    /// The report's distribution curves as artifact tables, each
    /// thinned to at most `max_points` steps: programming time,
    /// energy, bytes, and (when projected) battery life.
    pub fn ecdf_tables(&self, max_points: usize) -> Vec<EcdfTable> {
        let mut tables = vec![
            EcdfTable::from_curve("time_min", &self.time_dist().curve(), max_points),
            EcdfTable::from_curve("energy_mj", &self.energy_dist().curve(), max_points),
            EcdfTable::from_curve("bytes", &self.bytes_dist().curve(), max_points),
        ];
        if let Some(life) = self.life_dist() {
            tables.push(EcdfTable::from_curve(
                "life_years",
                &life.curve(),
                max_points,
            ));
        }
        tables
    }
}

/// Knobs for the broadcast + targeted-repair strategy.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastCampaignConfig {
    /// NACK-repair rounds the broadcast phase may use before falling
    /// back to targeted unicast.
    pub max_rounds: u32,
    /// Engine configuration (seed, shards, retry budget) for the
    /// targeted unicast repair phase; its seed also keys the broadcast
    /// streams.
    pub repair: CampaignConfig,
}

impl BroadcastCampaignConfig {
    /// Default shape: 12 broadcast repair rounds, sequential repair.
    pub fn new(seed: u64) -> Self {
        BroadcastCampaignConfig {
            max_rounds: 12,
            repair: CampaignConfig::sequential(seed),
        }
    }
}

/// Outcome of a broadcast campaign: the shared phase plus the targeted
/// unicast repairs.
#[derive(Debug, Clone)]
pub struct BroadcastCampaignReport {
    /// Node ids in testbed order — the key aligning the positional
    /// broadcast vectors with the id-keyed repair report.
    pub node_ids: Vec<u32>,
    /// The shared broadcast phase (`node_complete`/`node_energy_mj` are
    /// positional, in testbed order).
    pub broadcast: BroadcastReport,
    /// Node ids the broadcast phase left incomplete — the targets of
    /// the repair phase.
    pub straggler_ids: Vec<u32>,
    /// Targeted unicast repair sessions for broadcast stragglers
    /// (empty when the broadcast phase reached everyone).
    pub repaired: CampaignReport,
    /// Broadcast time plus repair sessions back to back, seconds.
    pub total_time_s: f64,
}

impl BroadcastCampaignReport {
    /// `true` once every node holds the full image (via broadcast or a
    /// repair session).
    pub fn all_complete(&self) -> bool {
        self.straggler_ids
            .iter()
            .all(|&id| self.repaired.get(id).map(|r| r.completed).unwrap_or(false))
    }

    /// Per-node campaign energy, mJ: what the node spent listening to
    /// the shared broadcast (plus NACKing) plus, for stragglers, the
    /// targeted repair session on top.
    pub fn node_energy_ecdf(&self) -> Ecdf {
        let mut e = Ecdf::new();
        for (i, &id) in self.node_ids.iter().enumerate() {
            let mut mj = self.broadcast.node_energy_mj[i];
            if let Some(r) = self.repaired.get(id) {
                mj += r.node_energy_mj;
            }
            e.push(mj);
        }
        e
    }

    /// Total node-side energy across broadcast and repair phases, mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.broadcast.node_energy_mj.iter().sum::<f64>() + self.repaired.total_energy_mj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinysdr_ota::image::FirmwareImage;

    #[test]
    fn campus_has_20_nodes_with_spread() {
        let tb = Testbed::campus(42);
        assert_eq!(tb.nodes.len(), 20);
        let (min, max) = tb.rssi_spread();
        // near node strong, far node weak, all above BW500 sensitivity
        assert!(max > -80.0, "strongest {max}");
        assert!(min < -95.0, "weakest {min}");
        assert!(min > -125.0, "weakest {min} must still be reachable");
    }

    #[test]
    fn distances_span_campus() {
        let tb = Testbed::campus(42);
        let dmin = tb
            .nodes
            .iter()
            .map(|n| n.distance_m)
            .fold(f64::MAX, f64::min);
        let dmax = tb
            .nodes
            .iter()
            .map(|n| n.distance_m)
            .fold(f64::MIN, f64::max);
        assert!(dmin < 150.0);
        assert!(dmax > 1000.0);
    }

    #[test]
    fn mcu_campaign_mean_matches_fig14() {
        // MCU images (≈24 KB compressed): paper Fig. 14 shows ≈39 s mean
        let tb = Testbed::campus(42);
        let img = FirmwareImage::paper_mcu("mac", 3);
        let upd = BlockedUpdate::build(&img);
        let (ecdf, reports) = tb.programming_time_cdf(&upd, 7);
        // the far tail of the campus may be unreachable at SF8/BW500 —
        // the paper's AP placement guaranteed coverage; we tolerate one
        // node out of range
        let completed = reports.completed();
        assert!(completed >= 19, "only {completed}/20 nodes completed");
        let mean_s = ecdf.mean().expect("completed sessions") * 60.0;
        assert!((mean_s - 45.0).abs() < 15.0, "MCU campaign mean {mean_s} s");
        // CDF spread: far nodes pay for retransmissions
        assert!(ecdf.max().unwrap() > ecdf.min().unwrap());
    }

    #[test]
    fn far_nodes_take_longer() {
        let tb = Testbed::campus(11);
        let img = FirmwareImage::mcu("m", 20_000, 5);
        let upd = BlockedUpdate::build(&img);
        let reports = tb.ota_campaign(&upd, 3);
        // correlate RSSI with duration: weakest third vs strongest third
        let mut by_rssi: Vec<_> = tb
            .nodes
            .iter()
            .map(|n| {
                (
                    n.rssi_dbm,
                    reports.get(n.id).expect("node in campaign").duration_s,
                )
            })
            .collect();
        by_rssi.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let weak_mean: f64 = by_rssi[..6].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        let strong_mean: f64 = by_rssi[14..].iter().map(|(_, d)| d).sum::<f64>() / 6.0;
        assert!(
            weak_mean >= strong_mean,
            "weak {weak_mean} vs strong {strong_mean}"
        );
    }

    #[test]
    fn testbed_is_reproducible() {
        let a = Testbed::campus(9);
        let b = Testbed::campus(9);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.rssi_dbm, y.rssi_dbm);
        }
        let c = Testbed::campus(10);
        assert!(a.nodes[0].rssi_dbm != c.nodes[0].rssi_dbm);
    }

    #[test]
    fn custom_size_testbeds() {
        let tb = Testbed::with_nodes(5, 1);
        assert_eq!(tb.nodes.len(), 5);
    }

    #[test]
    fn node_seeds_never_collide_with_each_other_or_the_campaign_rng() {
        // regression: `seed ^ (id as u64) << 8` parsed as
        // `seed ^ (id << 8)`, so node 0's session ran on the bare
        // campaign seed and low ids differed in a few bits only
        let campaign_seed = 42u64;
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(campaign_seed));
        for id in 0..2048u32 {
            assert!(
                seen.insert(Testbed::session_seed(campaign_seed, id)),
                "session seed collision at node {id}"
            );
        }
        assert_ne!(Testbed::session_seed(campaign_seed, 0), campaign_seed);
    }

    #[test]
    fn interference_is_per_node_and_order_independent() {
        let a = Testbed::interference_loss(7, 3);
        assert_eq!(a, Testbed::interference_loss(7, 3), "pure in (seed, id)");
        assert!((0.0..0.08).contains(&a));
        assert_ne!(a, Testbed::interference_loss(7, 4));
        assert_ne!(a, Testbed::interference_loss(8, 3));
    }

    #[test]
    fn sharded_campaign_is_bit_identical_to_sequential() {
        // the determinism contract: same seed -> identical reports,
        // regardless of worker count / steal interleaving. block_len 8
        // over 64 nodes gives 8 blocks, so every shard count below
        // genuinely interleaves.
        let tb = Testbed::with_nodes(64, 5);
        let img = FirmwareImage::mcu("fw", 8_000, 2);
        let upd = BlockedUpdate::build(&img);
        let seq = tb.run_campaign(&upd, &CampaignConfig::sequential(11).with_block_len(8));
        assert_eq!(seq.len(), 64);
        for shards in [2usize, 3, 8, 64] {
            let par = tb.run_campaign(&upd, &CampaignConfig::sharded(11, shards).with_block_len(8));
            assert_eq!(seq.reports(), par.reports(), "{shards} shards diverged");
            // the whole report (aggregate included) is bit-identical
            assert_eq!(seq, par, "{shards} shards: aggregate diverged");
            let a = seq.time_ecdf().expect("exact mode");
            let b = par.time_ecdf().expect("exact mode");
            assert_eq!(a.len(), b.len());
            assert_eq!(a.curve(), b.curve());
            // the contract extends to the energy axis: ECDF, merged
            // ledger and per-tag totals are all bit-identical
            assert_eq!(
                seq.energy_ecdf().expect("exact mode").curve(),
                par.energy_ecdf().expect("exact mode").curve(),
                "{shards} shards: energy ECDF diverged"
            );
            assert_eq!(seq.ledger(), par.ledger(), "{shards} shards: ledger");
            assert_eq!(seq.energy_by_tag(), par.energy_by_tag());
            assert_eq!(seq.total_energy_mj(), par.total_energy_mj());
        }
        // shard counts beyond the block count are clamped, not a panic
        let wide = tb.run_campaign(&upd, &CampaignConfig::sharded(11, 1000).with_block_len(8));
        assert_eq!(seq.reports(), wide.reports());
    }

    #[test]
    fn sketch_campaign_matches_exact_mode_contract() {
        // sketch retention obeys the same determinism contract, and
        // its quantiles track the exact run within alpha
        let tb = Testbed::with_nodes(48, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("sk", 8_000, 2));
        let base = CampaignConfig::sequential(11)
            .with_block_len(8)
            .with_retain(RetainMode::sketch());
        let seq = tb.run_campaign(&upd, &base);
        let par = tb.run_campaign(&upd, &CampaignConfig { shards: 4, ..base });
        assert_eq!(seq, par, "sketch mode must stay bit-identical");
        assert!(seq.reports().is_empty(), "sketch mode retains no reports");
        assert!(seq.time_ecdf().is_none());
        let exact = tb.run_campaign(&upd, &CampaignConfig::sequential(11).with_block_len(8));
        assert_eq!(seq.len(), exact.len());
        assert_eq!(seq.completed(), exact.completed());
        assert_eq!(seq.total_energy_mj(), exact.total_energy_mj());
        for q in [0.1, 0.5, 0.9] {
            let s = seq.energy_dist().quantile(q).unwrap();
            let e = exact.energy_dist().quantile(q).unwrap();
            assert!(
                (s - e).abs() <= 0.011 * e.abs(),
                "q={q}: sketch {s} vs exact {e}"
            );
        }
        assert_eq!(seq.energy_dist().min(), exact.energy_dist().min());
        assert_eq!(seq.energy_dist().max(), exact.energy_dist().max());
        // per-tag totals are streamed, not derived from a ledger
        assert!(seq.ledger().is_empty());
        let (s_tags, e_tags) = (seq.energy_by_tag(), exact.energy_by_tag());
        for (tag, mj) in &e_tags {
            assert!((s_tags[tag] - mj).abs() < 1e-9 * mj.abs().max(1.0), "{tag}");
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted() {
        let dir = std::env::temp_dir().join("tinysdr_testbed_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let tb = Testbed::with_nodes(40, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("ck", 8_000, 2));
        for retain in [RetainMode::Exact, RetainMode::sketch()] {
            let cfg = CampaignConfig::sharded(11, 3)
                .with_block_len(8)
                .with_retain(retain);
            let uninterrupted = tb.run_campaign(&upd, &cfg);
            let path = dir.join(format!("c_{}.ckpt", retain.is_exact()));
            std::fs::remove_file(&path).ok();
            // phase 1: killed after 2 of 5 blocks
            let killed = tb
                .run_campaign_checkpointed(
                    &upd,
                    &cfg,
                    &CheckpointConfig::new(&path, 1).stop_after(2),
                )
                .expect("checkpointed run");
            match killed {
                CampaignRun::Interrupted {
                    merged_blocks,
                    total_blocks,
                } => {
                    assert!(merged_blocks >= 2, "stopped at {merged_blocks}");
                    assert_eq!(total_blocks, 5);
                }
                other => panic!("must stop after 2 blocks, got {other:?}"),
            }
            // phase 2: resume to completion
            let resumed = tb
                .run_campaign_checkpointed(&upd, &cfg, &CheckpointConfig::new(&path, 2))
                .expect("resume")
                .expect_complete();
            assert_eq!(
                resumed, uninterrupted,
                "{retain:?}: resume diverged from uninterrupted run"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn checkpoint_refuses_a_different_campaign() {
        let dir = std::env::temp_dir().join("tinysdr_testbed_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        std::fs::remove_file(&path).ok();
        let tb = Testbed::with_nodes(16, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("fp", 8_000, 2));
        let cfg = CampaignConfig::sequential(11).with_block_len(4);
        let run = tb
            .run_campaign_checkpointed(&upd, &cfg, &CheckpointConfig::new(&path, 1).stop_after(2))
            .expect("first run");
        assert!(matches!(run, CampaignRun::Interrupted { .. }));
        // same path, different seed → refuse
        let other = CampaignConfig::sequential(12).with_block_len(4);
        let err = tb
            .run_campaign_checkpointed(&upd, &other, &CheckpointConfig::new(&path, 1))
            .expect_err("mismatched checkpoint must be refused");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_reports_are_keyed_by_node_id() {
        let tb = Testbed::with_nodes(9, 3);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("k", 6_000, 1));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sharded(5, 4).with_block_len(2));
        for n in &tb.nodes {
            assert!(rep.get(n.id).is_some(), "node {} missing", n.id);
        }
        assert!(rep.get(9).is_none());
        let ids: Vec<u32> = rep.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "reports must come back ordered by node id");
    }

    #[test]
    fn empty_campaign_cdf_is_explicit() {
        // regression: with zero completed sessions the ECDF accessors
        // used to panic (min/max/quantile) or lie (mean() == 0.0)
        let mut tb = Testbed::with_nodes(3, 1);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -140.0; // below any fading margin: nothing completes
        }
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("dead", 5_000, 1));
        let (ecdf, reports) = tb.programming_time_cdf(&upd, 2);
        assert_eq!(reports.completed(), 0);
        assert!(ecdf.is_empty());
        assert_eq!(ecdf.mean(), None);
        assert_eq!(ecdf.min(), None);
        assert_eq!(ecdf.max(), None);
        assert_eq!(ecdf.quantile(0.5), None);
    }

    #[test]
    fn campaign_energy_axis_is_consistent() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::paper_mcu("mac", 3));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(7));
        // the ECDF covers every node, the ledger totals the same energy
        let e = rep.energy_ecdf().expect("exact mode");
        assert_eq!(e.len(), rep.len());
        assert!(
            (rep.ledger().total_mj() - rep.total_energy_mj()).abs() < 1e-6 * rep.total_energy_mj(),
            "ledger {} vs sum {}",
            rep.ledger().total_mj(),
            rep.total_energy_mj()
        );
        // per-tag breakdown: the radio dominates an OTA session
        let tags = rep.energy_by_tag();
        assert!(tags["radio_rx"] > tags["mcu"]);
        assert!(tags["radio_rx"] > tags["radio_tx"]);
        assert!(tags.contains_key("flash"));
        // far nodes retransmit more, so energy spreads like time does
        assert!(e.max().unwrap() > e.min().unwrap());
        // paper anchor: an MCU update costs ~1.9 kJ·10⁻³ per node on a
        // strong link; the campus median sits in the same decade
        let med = e.quantile(0.5).unwrap();
        assert!(med > 1000.0 && med < 8000.0, "median {med} mJ");
    }

    #[test]
    fn battery_projection_scales_with_update_period() {
        use tinysdr_power::battery::Battery;
        let tb = Testbed::with_nodes(8, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("fw", 8_000, 2));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(3));
        let b = Battery::lipo_1000mah();
        let sleep = tinysdr_power::state::deep_sleep_mw();
        let d = rep.battery_life_years_ecdf(&b, 86_400.0, sleep);
        let w = rep.battery_life_years_ecdf(&b, 7.0 * 86_400.0, sleep);
        assert_eq!(d.len(), rep.len());
        // updating 7x less often must extend every quantile of life
        assert!(w.quantile(0.5).unwrap() > d.quantile(0.5).unwrap());
        // and nothing can outlive the sleep-floor bound (~14 years)
        let bound = b.lifetime_years(sleep).unwrap();
        assert!(w.max().unwrap() <= bound);
        // a node updated continuously lives measured-in-days
        let frantic = rep.battery_life_years_ecdf(&b, 1.0, sleep);
        assert!(frantic.max().unwrap() < 0.1);
    }

    #[test]
    fn streamed_life_projection_matches_exact_replay() {
        // the sketch-mode path (projection configured up front) and
        // the exact-mode replay produce the same values in exact mode
        let tb = Testbed::with_nodes(8, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("fw", 8_000, 2));
        let b = Battery::lipo_1000mah();
        let sleep = tinysdr_power::state::deep_sleep_mw();
        let proj = LifeProjection {
            period_s: 86_400.0,
            sleep_mw: sleep,
            battery: b,
        };
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(3).with_projection(proj));
        let streamed = rep.life_dist().expect("projection configured");
        let replayed = rep.battery_life_years_ecdf(&b, 86_400.0, sleep);
        assert_eq!(
            streamed.as_ecdf().expect("exact mode"),
            &replayed,
            "streamed and replayed life projections must agree"
        );
    }

    #[test]
    fn broadcast_report_carries_the_energy_axis() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("bc", 10_000, 4));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 6,
            repair: CampaignConfig::sequential(9),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        let e = rep.node_energy_ecdf();
        assert_eq!(e.len(), tb.nodes.len());
        assert!(
            (e.mean().unwrap() * tb.nodes.len() as f64 - rep.total_energy_mj()).abs()
                < 1e-6 * rep.total_energy_mj()
        );
        // stragglers paid broadcast + repair: they sit at the top
        if let Some(&id) = rep.straggler_ids.first() {
            let pos = rep.node_ids.iter().position(|&n| n == id).unwrap();
            let straggler_mj =
                rep.broadcast.node_energy_mj[pos] + rep.repaired.get(id).unwrap().node_energy_mj;
            assert!(straggler_mj > e.quantile(0.5).unwrap());
        }
    }

    #[test]
    fn targeted_repair_completes_what_broadcast_misses() {
        // strong links but location-dependent interference (several
        // percent per-packet loss), and a broadcast phase with zero
        // repair rounds: whoever misses a packet in the single pass
        // must be finished by a targeted unicast session
        let mut tb = Testbed::with_nodes(6, 3);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -90.0;
        }
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("strag", 8_000, 2));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 0,
            repair: CampaignConfig::sequential(4),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(!rep.repaired.is_empty(), "the lossy node must need repair");
        assert!(
            rep.all_complete(),
            "repair phase must finish the stragglers"
        );
        // a repair session is the same session the unicast campaign
        // would have run: same seed stream, same link
        let uni = tb.run_campaign(&upd, &CampaignConfig::sequential(4));
        for (id, r) in rep.repaired.iter() {
            assert_eq!(uni.get(*id), Some(r));
        }
    }

    #[test]
    fn broadcast_campaign_handles_reordered_node_lists() {
        // node ids and vector positions diverge after a reorder; the
        // repair bookkeeping must follow ids, not positions
        let mut tb = Testbed::with_nodes(6, 3);
        for n in tb.nodes.iter_mut() {
            n.rssi_dbm = -90.0;
        }
        tb.nodes.reverse();
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("strag", 8_000, 2));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 0,
            repair: CampaignConfig::sequential(4),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(
            !rep.straggler_ids.is_empty(),
            "single pass must leave stragglers"
        );
        for &id in &rep.straggler_ids {
            assert!(rep.repaired.get(id).is_some(), "repair keyed by id {id}");
        }
        assert!(rep.all_complete());
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let tb = Testbed::with_nodes(96, 5);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("cx", 6_000, 1));
        let cfg = CampaignConfig::sharded(5, 3).with_block_len(8);
        let plain = tb.run_campaign(&upd, &cfg);
        let token = CancelToken::new();
        let run = tb.run_campaign_cancellable(&upd, &cfg, &token);
        match run {
            CampaignRun::Complete(rep) => assert_eq!(rep, plain, "live token must be a no-op"),
            other => panic!("uncancelled run did not complete: {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_block() {
        let tb = Testbed::with_nodes(64, 6);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("cc", 6_000, 1));
        let token = CancelToken::new();
        token.cancel();
        let run = tb.run_campaign_cancellable(
            &upd,
            &CampaignConfig::sequential(6).with_block_len(8),
            &token,
        );
        match run {
            CampaignRun::Cancelled {
                merged_blocks,
                total_blocks,
            } => {
                assert_eq!(merged_blocks, 0);
                assert_eq!(total_blocks, 8);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_checkpoint_resume_is_bit_identical() {
        // A sequential run with a poll-fuse token dies at a
        // deterministic block boundary; the cancellation path must
        // have checkpointed the frontier, and resuming must equal the
        // uninterrupted run bit for bit — the daemon's
        // graceful-shutdown contract.
        let tb = Testbed::with_nodes(128, 7);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("cr", 6_000, 1));
        let cfg = CampaignConfig::sequential(7).with_block_len(8);
        let uninterrupted = tb.run_campaign(&upd, &cfg);

        let dir = std::env::temp_dir().join("tinysdr_core_cancel");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cancel_resume.ckpt");
        std::fs::remove_file(&path).ok();
        // the worker polls once per block claim; trip on the 6th poll
        let token = CancelToken::cancelled_after(6);
        let run = tb
            .run_campaign_checkpointed_cancellable(
                &upd,
                &cfg,
                &CheckpointConfig::new(&path, 1000),
                &token,
            )
            .expect("cancelled run still writes its checkpoint");
        match run {
            CampaignRun::Cancelled { merged_blocks, .. } => {
                assert_eq!(merged_blocks, 5, "fuse trips on the 6th block claim")
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(path.exists(), "cancellation must persist the frontier");

        let resumed = tb
            .run_campaign_checkpointed(&upd, &cfg, &CheckpointConfig::new(&path, 1000))
            .expect("resume")
            .expect_complete();
        assert_eq!(resumed, uninterrupted, "cancel + resume diverged");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_json_round_trips_and_is_deterministic() {
        let tb = Testbed::with_nodes(48, 9);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("js", 6_000, 1));
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(9));
        let summary = rep.summary();
        let doc = summary.to_json().write_pretty();
        assert_eq!(
            doc,
            rep.summary().to_json().write_pretty(),
            "summary JSON must be byte-deterministic"
        );
        let back = CampaignSummary::from_json(&Value::parse(&doc).expect("parses"))
            .expect("well-formed summary");
        assert_eq!(back, summary, "JSON round trip lost information");
        assert_eq!(back.nodes, 48);
        assert!(back.total_energy_mj > 0.0);
    }

    #[test]
    fn ecdf_tables_cover_every_observable() {
        let tb = Testbed::with_nodes(32, 10);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("et", 6_000, 1));
        let proj = LifeProjection {
            period_s: 86_400.0,
            sleep_mw: 0.03,
            battery: Battery::lipo_1000mah(),
        };
        let rep = tb.run_campaign(&upd, &CampaignConfig::sequential(10).with_projection(proj));
        let tables = rep.ecdf_tables(16);
        let labels: Vec<&str> = tables.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["time_min", "energy_mj", "bytes", "life_years"]);
        for t in &tables {
            assert!(t.points.len() >= 2 && t.points.len() <= 16, "{}", t.label);
            let parsed = tinysdr_ota::json::EcdfTable::from_json(
                &Value::parse(&t.to_json().write()).expect("parses"),
            )
            .expect("table round trip");
            assert_eq!(&parsed, t);
        }
    }

    #[test]
    fn broadcast_campaign_repairs_stragglers() {
        let tb = Testbed::campus(42);
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("bc", 10_000, 4));
        let cfg = BroadcastCampaignConfig {
            max_rounds: 6,
            repair: CampaignConfig::sequential(9),
        };
        let rep = tb.broadcast_campaign(&upd, &cfg);
        assert!(
            rep.all_complete(),
            "broadcast + targeted repair must reach the campus"
        );
        // the shared phase plus repairs still crushes 20 unicast sessions
        let uni = tb.run_campaign(&upd, &CampaignConfig::sequential(9));
        assert!(
            rep.total_time_s < uni.total_air_time_s() / 3.0,
            "broadcast {:.0}s vs unicast {:.0}s",
            rep.total_time_s,
            uni.total_air_time_s()
        );
    }
}

//! SDR platform comparison catalog (paper Table 1 and Fig. 2).
//!
//! The non-TinySDR rows are published facts (datasheets/store pages the
//! paper cites); the TinySDR row is *derived* from this workspace's
//! models so the comparison stays live. Fig. 2's bar heights are encoded
//! as read from the figure (the paper prints no table for them).

use crate::profile::{platform_power_mw, OperatingPoint};

/// One platform row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name.
    pub name: &'static str,
    /// Sleep power, mW (`None` = platform cannot sleep / not published).
    pub sleep_mw: Option<f64>,
    /// Works without a host computer.
    pub standalone: bool,
    /// Over-the-air programmable.
    pub ota: bool,
    /// Unit cost, USD.
    pub cost_usd: f64,
    /// Maximum bandwidth, MHz.
    pub max_bw_mhz: f64,
    /// ADC bits.
    pub adc_bits: u8,
    /// Supported spectrum, MHz ranges.
    pub spectrum_mhz: &'static [(f64, f64)],
    /// Board size, cm.
    pub size_cm: (f64, f64),
    /// Fig. 2 radio-module TX power draw, W (at the annotated output
    /// power); `None` = RX-only platform.
    pub fig2_tx_w: Option<f64>,
    /// Fig. 2 radio-module RX power draw, W.
    pub fig2_rx_w: f64,
    /// TX output power annotation from Fig. 2, dBm.
    pub fig2_tx_dbm: Option<f64>,
}

/// Build the full Table 1 + Fig. 2 catalog, with the TinySDR row
/// computed from the workspace models.
pub fn catalog() -> Vec<Platform> {
    let tinysdr_sleep = platform_power_mw(OperatingPoint::Sleep);
    let tinysdr_tx = platform_power_mw(OperatingPoint::SingleTone {
        deci_dbm: 140,
        band_2g4: false,
    });
    vec![
        Platform {
            name: "USRP E310",
            sleep_mw: Some(2820.0),
            standalone: true,
            ota: false,
            cost_usd: 3000.0,
            max_bw_mhz: 30.72,
            adc_bits: 12,
            spectrum_mhz: &[(70.0, 6000.0)],
            size_cm: (6.8, 13.3),
            fig2_tx_w: Some(0.95),
            fig2_rx_w: 0.72,
            fig2_tx_dbm: Some(10.0),
        },
        Platform {
            name: "USRP B200mini",
            sleep_mw: None,
            standalone: false,
            ota: false,
            cost_usd: 733.0,
            max_bw_mhz: 30.72,
            adc_bits: 12,
            spectrum_mhz: &[(70.0, 6000.0)],
            size_cm: (5.0, 8.3),
            fig2_tx_w: Some(0.9),
            fig2_rx_w: 0.65,
            fig2_tx_dbm: Some(10.0),
        },
        Platform {
            name: "bladeRF 2.0",
            sleep_mw: Some(717.0),
            standalone: true,
            ota: false,
            cost_usd: 720.0,
            max_bw_mhz: 30.72,
            adc_bits: 12,
            spectrum_mhz: &[(47.0, 6000.0)],
            size_cm: (6.3, 12.7),
            fig2_tx_w: Some(0.75),
            fig2_rx_w: 0.58,
            fig2_tx_dbm: Some(10.0),
        },
        Platform {
            name: "LimeSDR Mini",
            sleep_mw: None,
            standalone: false,
            ota: false,
            cost_usd: 159.0,
            max_bw_mhz: 30.72,
            adc_bits: 12,
            spectrum_mhz: &[(10.0, 3500.0)],
            size_cm: (3.1, 6.9),
            fig2_tx_w: Some(0.85),
            fig2_rx_w: 0.6,
            fig2_tx_dbm: Some(10.0),
        },
        Platform {
            name: "PlutoSDR",
            sleep_mw: None,
            standalone: false,
            ota: false,
            cost_usd: 149.0,
            max_bw_mhz: 20.0,
            adc_bits: 12,
            spectrum_mhz: &[(325.0, 3800.0)],
            size_cm: (7.9, 11.7),
            fig2_tx_w: Some(0.8),
            fig2_rx_w: 0.62,
            fig2_tx_dbm: Some(10.0),
        },
        Platform {
            name: "uSDR",
            sleep_mw: Some(320.0),
            standalone: true,
            ota: false,
            cost_usd: 150.0,
            max_bw_mhz: 40.0,
            adc_bits: 8,
            spectrum_mhz: &[(2400.0, 2500.0)],
            size_cm: (7.0, 14.5),
            fig2_tx_w: Some(0.45),
            fig2_rx_w: 0.28,
            fig2_tx_dbm: Some(14.0),
        },
        Platform {
            name: "GalioT",
            sleep_mw: Some(350.0),
            standalone: true,
            ota: false,
            cost_usd: 60.0,
            max_bw_mhz: 14.4,
            adc_bits: 8,
            spectrum_mhz: &[(0.5, 1766.0)],
            size_cm: (2.5, 7.0),
            fig2_tx_w: None, // receive-only platform
            fig2_rx_w: 0.3,
            fig2_tx_dbm: None,
        },
        Platform {
            name: "TinySDR",
            sleep_mw: Some(tinysdr_sleep),
            standalone: true,
            ota: true,
            cost_usd: crate::cost::total_cost_usd(),
            max_bw_mhz: 4.0,
            adc_bits: 13,
            spectrum_mhz: &[(389.5, 510.0), (779.0, 1020.0), (2400.0, 2483.0)],
            size_cm: (3.0, 5.0),
            // Fig. 2 plots the radio module alone
            fig2_tx_w: Some(tinysdr_rf::at86rf215::power::tx_mw(14.0) / 1000.0),
            fig2_rx_w: tinysdr_rf::at86rf215::power::RX_MW / 1000.0,
            fig2_tx_dbm: Some(14.0),
        },
    ]
    .into_iter()
    .inspect(|_p| {
        let _ = tinysdr_tx; // documented: platform TX is profile::fig9_curve
    })
    .collect()
}

/// The Table 1 headline: TinySDR's sleep power vs the best competitor.
///
/// # Panics
/// Panics if the static catalog loses its TinySDR row or that row's
/// measured sleep power — a malformed table, not a runtime condition.
pub fn sleep_advantage() -> f64 {
    let cat = catalog();
    let tinysdr = cat
        .iter()
        .find(|p| p.name == "TinySDR")
        .unwrap()
        .sleep_mw
        .unwrap();
    let best_other = cat
        .iter()
        .filter(|p| p.name != "TinySDR")
        .filter_map(|p| p.sleep_mw)
        .fold(f64::MAX, f64::min);
    best_other / tinysdr
}

/// §2's observation: every other platform's *sleep* power exceeds
/// TinySDR's *transmit* power.
pub fn others_sleep_above_tinysdr_tx() -> bool {
    let tx = platform_power_mw(OperatingPoint::SingleTone {
        deci_dbm: 140,
        band_2g4: false,
    });
    catalog()
        .iter()
        .filter(|p| p.name != "TinySDR")
        .filter_map(|p| p.sleep_mw)
        .all(|s| s > tx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tinysdr_is_only_ota_platform() {
        let cat = catalog();
        let ota: Vec<_> = cat.iter().filter(|p| p.ota).collect();
        assert_eq!(ota.len(), 1);
        assert_eq!(ota[0].name, "TinySDR");
    }

    #[test]
    fn sleep_advantage_is_10000x() {
        // abstract: "10,000x lower than existing SDR platforms"
        let adv = sleep_advantage();
        assert!(adv > 10_000.0, "sleep advantage {adv:.0}×");
    }

    #[test]
    fn duty_cycling_argument_holds() {
        assert!(others_sleep_above_tinysdr_tx());
    }

    #[test]
    fn tinysdr_is_cheapest() {
        let cat = catalog();
        let t = cat.iter().find(|p| p.name == "TinySDR").unwrap();
        for p in &cat {
            if p.name != "TinySDR" {
                assert!(t.cost_usd < p.cost_usd, "{} is cheaper", p.name);
            }
        }
    }

    #[test]
    fn tinysdr_is_smallest_standalone() {
        let cat = catalog();
        let t = cat.iter().find(|p| p.name == "TinySDR").unwrap();
        let area = t.size_cm.0 * t.size_cm.1;
        for p in cat.iter().filter(|p| p.standalone && p.name != "TinySDR") {
            assert!(area < p.size_cm.0 * p.size_cm.1, "{} is smaller", p.name);
        }
    }

    #[test]
    fn bandwidth_tradeoff_is_explicit() {
        // TinySDR trades bandwidth for power — it must be the *lowest* BW
        let cat = catalog();
        let t = cat.iter().find(|p| p.name == "TinySDR").unwrap();
        for p in &cat {
            if p.name != "TinySDR" {
                assert!(t.max_bw_mhz < p.max_bw_mhz);
            }
        }
        // but still enough for every IoT protocol in §2 (widest: BLE/Zigbee 2 MHz)
        assert!(t.max_bw_mhz >= 2.0);
    }

    #[test]
    fn fig2_tinysdr_radio_is_5x_below_others_rx() {
        // §3.1.1: "It consumes 5x less power than the radios used on
        // other SDRs"
        let cat = catalog();
        let t = cat.iter().find(|p| p.name == "TinySDR").unwrap();
        let min_other_rx = cat
            .iter()
            .filter(|p| p.name != "TinySDR")
            .map(|p| p.fig2_rx_w)
            .fold(f64::MAX, f64::min);
        assert!(min_other_rx / t.fig2_rx_w > 4.0);
    }

    #[test]
    fn tinysdr_covers_both_iot_bands() {
        let cat = catalog();
        let t = cat.iter().find(|p| p.name == "TinySDR").unwrap();
        let covers = |f: f64| {
            t.spectrum_mhz
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&f))
        };
        assert!(covers(915.0) && covers(2440.0) && covers(433.0));
        assert!(!covers(5800.0));
    }
}

//! BOM cost model (paper Table 5: "TinySDR Cost Breakdown for 1000
//! Units", total $54.53).

/// A BOM line item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostItem {
    /// Subsystem grouping as printed in Table 5.
    pub group: &'static str,
    /// Component description.
    pub component: &'static str,
    /// Unit price at 1000 units, USD.
    pub price_usd: f64,
}

/// Table 5, verbatim.
// the RF switch really does cost $3.14 in Table 5; it is not π
#[allow(clippy::approx_constant)]
pub const BOM: &[CostItem] = &[
    CostItem {
        group: "DSP",
        component: "FPGA",
        price_usd: 8.69,
    },
    CostItem {
        group: "DSP",
        component: "Oscillator",
        price_usd: 0.90,
    },
    CostItem {
        group: "IQ Front-End",
        component: "Radio",
        price_usd: 5.08,
    },
    CostItem {
        group: "IQ Front-End",
        component: "Crystal",
        price_usd: 0.53,
    },
    CostItem {
        group: "IQ Front-End",
        component: "2.4 GHz Balun",
        price_usd: 0.36,
    },
    CostItem {
        group: "IQ Front-End",
        component: "Sub-GHz Balun",
        price_usd: 0.30,
    },
    CostItem {
        group: "Backbone",
        component: "Radio",
        price_usd: 4.50,
    },
    CostItem {
        group: "Backbone",
        component: "Crystal",
        price_usd: 0.40,
    },
    CostItem {
        group: "Backbone",
        component: "Flash Memory",
        price_usd: 1.60,
    },
    CostItem {
        group: "MAC",
        component: "MCU",
        price_usd: 3.89,
    },
    CostItem {
        group: "MAC",
        component: "Crystals",
        price_usd: 0.68,
    },
    CostItem {
        group: "RF",
        component: "Switch",
        price_usd: 3.14,
    },
    CostItem {
        group: "RF",
        component: "Sub-GHz PA",
        price_usd: 1.54,
    },
    CostItem {
        group: "RF",
        component: "2.4 GHz PA",
        price_usd: 1.72,
    },
    CostItem {
        group: "Power Management",
        component: "Regulators",
        price_usd: 3.70,
    },
    CostItem {
        group: "Supporting Components",
        component: "-",
        price_usd: 4.50,
    },
    CostItem {
        group: "Production",
        component: "Fabrication",
        price_usd: 3.00,
    },
    CostItem {
        group: "Production",
        component: "Assembly",
        price_usd: 10.00,
    },
];

/// Total unit cost, USD.
pub fn total_cost_usd() -> f64 {
    BOM.iter().map(|i| i.price_usd).sum()
}

/// Subtotals per group, in Table 5 order.
pub fn group_subtotals() -> Vec<(&'static str, f64)> {
    let mut out: Vec<(&'static str, f64)> = Vec::new();
    for item in BOM {
        match out.iter_mut().find(|(g, _)| *g == item.group) {
            Some((_, total)) => *total += item.price_usd,
            None => out.push((item.group, item.price_usd)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_matches_table5() {
        assert!(
            (total_cost_usd() - 54.53).abs() < 0.01,
            "total {}",
            total_cost_usd()
        );
    }

    #[test]
    fn under_55_dollars() {
        // the paper's headline: "$55" per node
        assert!(total_cost_usd() < 55.0);
    }

    #[test]
    fn production_is_the_biggest_group() {
        // fabrication + assembly ($13) dominates any silicon line item —
        // the practical point Table 5 makes about low-cost deployment
        let groups = group_subtotals();
        let production = groups.iter().find(|(g, _)| *g == "Production").unwrap().1;
        assert!((production - 13.0).abs() < 1e-9);
        let max_silicon = BOM
            .iter()
            .filter(|i| i.group != "Production")
            .map(|i| i.price_usd)
            .fold(0.0, f64::max);
        assert!(max_silicon < production);
    }

    #[test]
    fn component_prices_match_catalog() {
        // the I/Q radio's BOM price is consistent with the Table 2 entry
        let radio = BOM
            .iter()
            .find(|i| i.group == "IQ Front-End" && i.component == "Radio")
            .unwrap();
        let table2 = tinysdr_rf::catalog::IQ_RADIO_CATALOG.last().unwrap();
        assert!((radio.price_usd - table2.cost_usd).abs() < 0.5);
    }

    #[test]
    fn group_subtotals_cover_everything() {
        let sum: f64 = group_subtotals().iter().map(|(_, t)| t).sum();
        assert!((sum - total_cost_usd()).abs() < 1e-9);
    }
}

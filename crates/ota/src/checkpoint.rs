//! Versioned, deterministic on-disk campaign checkpoints.
//!
//! A million-node campaign runs for hours; losing the run to a crash
//! at block 3900/3907 is not acceptable, so the campaign engine
//! periodically persists its merged prefix — completed block count
//! plus the merged [`NodeAggregate`] (and, in exact mode, the session
//! reports) — and can resume **bit-identically** to an uninterrupted
//! run: the remaining blocks are recomputed from their per-node seed
//! streams and merged in block-index order, exactly as the first run
//! would have.
//!
//! The format is hand-rolled (the offline dependency policy rules out
//! serde): little-endian fixed-width integers, `f64` as raw IEEE-754
//! bits (`to_bits`, so round-trips are bit-exact), length-prefixed
//! UTF-8 strings. Framing:
//!
//! ```text
//! magic   b"TSDRCKP\0"            8 bytes
//! version u32                      (currently 1)
//! fingerprint u64                  splitmix64 chain over the campaign
//!                                  configuration + testbed identity;
//!                                  resume refuses a mismatch
//! merged_blocks u64 | total_blocks u64
//! NodeAggregate                    counters, tag totals, metrics
//! reports                          exact mode only: (node id, report)*
//! checksum u64                     splitmix64 chain over everything
//!                                  above — integrity, not crypto
//! ```
//!
//! Everything is written via a temp file + rename, so a kill mid-write
//! leaves the previous checkpoint intact. Corruption (truncation, bit
//! rot, wrong magic) surfaces as [`CheckpointError::Corrupt`] — never
//! a panic and never a silently wrong resume.
//!
//! Determinism note: the ISSUE's splitmix64 keying lives here, in the
//! fingerprint and checksum chains ([`chain_mix`]) — the quantile
//! sketch itself needs no randomness because its bucket grid is fixed
//! (see `tinysdr_dsp::sketch`).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

use tinysdr_dsp::sketch::QuantileSketch;
use tinysdr_dsp::stats::Ecdf;
use tinysdr_power::battery::Battery;
use tinysdr_power::energy::EnergyLedger;

use crate::aggregate::{LifeProjection, NodeAggregate, NodeMetric, RetainMode, TagTotal};
use crate::seed::splitmix64;
use crate::session::SessionReport;

/// File magic: "TSDRCKP" + NUL.
pub const MAGIC: [u8; 8] = *b"TSDRCKP\0";
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The bytes do not decode as a well-formed checkpoint.
    Corrupt(&'static str),
    /// A well-formed checkpoint for a *different* campaign (seed,
    /// config, testbed or format version differ).
    Mismatch(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Fold one word into a splitmix64 hash chain. Used for both the
/// configuration fingerprint and the file checksum; order-dependent by
/// design (a chain, not a multiset hash).
#[inline]
#[must_use]
pub fn chain_mix(h: u64, word: u64) -> u64 {
    splitmix64(h ^ word)
}

/// Checksum a byte slice: the splitmix64 chain over its 8-byte words
/// (zero-padded tail) and its length.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = chain_mix(0x5EED_C4A9_0000_0000, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = chain_mix(h, u64::from_le_bytes(w));
    }
    h
}

/// A campaign's persisted progress: how many leading blocks are merged
/// and the merged state itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the campaign configuration + testbed identity;
    /// resume refuses to continue under a different configuration.
    pub fingerprint: u64,
    /// Number of leading blocks already merged into `agg`.
    pub merged_blocks: u64,
    /// Total blocks in the campaign (progress denominator).
    pub total_blocks: u64,
    /// The merged aggregate over blocks `0..merged_blocks`.
    pub agg: NodeAggregate,
    /// Per-node reports of the merged prefix — exact mode only, empty
    /// in sketch mode.
    pub reports: Vec<(u32, SessionReport)>,
}

impl CampaignCheckpoint {
    /// Serialize to the on-disk format (including checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.bytes(&MAGIC);
        e.u32(VERSION);
        e.u64(self.fingerprint);
        e.u64(self.merged_blocks);
        e.u64(self.total_blocks);
        encode_aggregate(&mut e, &self.agg);
        e.u64(self.reports.len() as u64);
        for (id, rep) in &self.reports {
            e.u32(*id);
            encode_report(&mut e, rep);
        }
        let sum = checksum(&e.buf);
        e.u64(sum);
        e.buf
    }

    /// Decode and validate (magic, version, checksum, internal
    /// consistency). Configuration fingerprint checking is the
    /// caller's job — only it knows the expected value.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::Corrupt("truncated header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        // lint: allow(unjustified-panic, split_at yields exactly 8 tail bytes)
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if checksum(body) != stored {
            return Err(CheckpointError::Corrupt("checksum mismatch"));
        }
        let mut d = Dec { b: body, pos: 0 };
        if d.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic"));
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch("unsupported format version"));
        }
        let fingerprint = d.u64()?;
        let merged_blocks = d.u64()?;
        let total_blocks = d.u64()?;
        if merged_blocks > total_blocks {
            return Err(CheckpointError::Corrupt("merged_blocks > total_blocks"));
        }
        let agg = decode_aggregate(&mut d)?;
        let n = d.u64()? as usize;
        if n > body.len() / 8 {
            return Err(CheckpointError::Corrupt("report count exceeds file size"));
        }
        let mut reports = Vec::with_capacity(n);
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let id = d.u32()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(CheckpointError::Corrupt("report ids not ascending"));
            }
            prev = Some(id);
            reports.push((id, decode_report(&mut d)?));
        }
        if agg.retain().is_exact() && reports.len() != agg.len() {
            return Err(CheckpointError::Corrupt(
                "report count disagrees with aggregate",
            ));
        }
        if d.pos != body.len() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        Ok(CampaignCheckpoint {
            fingerprint,
            merged_blocks,
            total_blocks,
            agg,
            reports,
        })
    }

    /// Write atomically: temp file in the same directory, then rename.
    /// A kill mid-write leaves any previous checkpoint intact.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Read and decode a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        Self::decode(&std::fs::read(path)?)
    }
}

// ---------------------------------------------------------------- codec

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.b.len() {
            return Err(CheckpointError::Corrupt("unexpected end of file"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            // lint: allow(unjustified-panic, take(4) yields exactly 4 bytes)
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn i32(&mut self) -> Result<i32, CheckpointError> {
        Ok(i32::from_le_bytes(
            // lint: allow(unjustified-panic, take(4) yields exactly 4 bytes)
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            // lint: allow(unjustified-panic, take(8) yields exactly 8 bytes)
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| CheckpointError::Corrupt("invalid UTF-8"))
    }
}

fn encode_metric(e: &mut Enc, m: &NodeMetric) {
    match m {
        NodeMetric::Exact(ecdf) => {
            e.u8(0);
            e.u64(ecdf.len() as u64);
            for &x in ecdf.samples() {
                e.f64(x);
            }
        }
        NodeMetric::Sketch(s) => {
            e.u8(1);
            let (alpha, neg, zero, pos, count, min, max) = s.to_parts();
            e.f64(alpha);
            e.u64(neg.len() as u64);
            for (k, n) in neg {
                e.i32(k);
                e.u64(n);
            }
            e.u64(zero);
            e.u64(pos.len() as u64);
            for (k, n) in pos {
                e.i32(k);
                e.u64(n);
            }
            e.u64(count);
            e.f64(min);
            e.f64(max);
        }
    }
}

fn decode_metric(d: &mut Dec) -> Result<NodeMetric, CheckpointError> {
    match d.u8()? {
        0 => {
            let n = d.u64()? as usize;
            if n > d.b.len() / 8 {
                return Err(CheckpointError::Corrupt("sample count exceeds file size"));
            }
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let x = d.f64()?;
                if !x.is_finite() {
                    return Err(CheckpointError::Corrupt("non-finite ECDF sample"));
                }
                samples.push(x);
            }
            if samples.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
                return Err(CheckpointError::Corrupt("ECDF samples not sorted"));
            }
            Ok(NodeMetric::Exact(Ecdf::from_sorted_samples(samples)))
        }
        1 => {
            let alpha = d.f64()?;
            let read_buckets = |d: &mut Dec| -> Result<Vec<(i32, u64)>, CheckpointError> {
                let n = d.u64()? as usize;
                if n > d.b.len() / 12 {
                    return Err(CheckpointError::Corrupt("bucket count exceeds file size"));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = d.i32()?;
                    let c = d.u64()?;
                    if let Some(&(pk, _)) = v.last() {
                        if pk >= k {
                            return Err(CheckpointError::Corrupt("bucket keys not ascending"));
                        }
                    }
                    v.push((k, c));
                }
                Ok(v)
            };
            let neg = read_buckets(d)?;
            let zero = d.u64()?;
            let pos = read_buckets(d)?;
            let count = d.u64()?;
            let min = d.f64()?;
            let max = d.f64()?;
            QuantileSketch::from_parts(alpha, neg, zero, pos, count, min, max)
                .map(NodeMetric::Sketch)
                .map_err(CheckpointError::Corrupt)
        }
        _ => Err(CheckpointError::Corrupt("unknown metric kind")),
    }
}

fn encode_aggregate(e: &mut Enc, a: &NodeAggregate) {
    match a.retain {
        RetainMode::Exact => e.u8(0),
        RetainMode::Sketch { alpha } => {
            e.u8(1);
            e.f64(alpha);
        }
    }
    match &a.projection {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.f64(p.period_s);
            e.f64(p.sleep_mw);
            e.f64(p.battery.capacity_mah);
            e.f64(p.battery.voltage_v);
            e.f64(p.battery.usable_fraction);
        }
    }
    e.u64(a.nodes);
    e.u64(a.completed);
    e.f64(a.total_duration_s);
    e.f64(a.total_energy_mj);
    e.u64(a.total_bytes);
    encode_metric(e, &a.time_min);
    encode_metric(e, &a.energy_mj);
    encode_metric(e, &a.bytes);
    match &a.life_years {
        None => e.u8(0),
        Some(m) => {
            e.u8(1);
            encode_metric(e, m);
        }
    }
    e.u64(a.by_tag.len() as u64);
    for (tag, t) in &a.by_tag {
        e.str(tag);
        e.f64(t.energy_mj);
        e.u64(t.duration_ns);
    }
}

fn decode_aggregate(d: &mut Dec) -> Result<NodeAggregate, CheckpointError> {
    let retain = match d.u8()? {
        0 => RetainMode::Exact,
        1 => {
            let alpha = d.f64()?;
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(CheckpointError::Corrupt("sketch alpha out of range"));
            }
            RetainMode::Sketch { alpha }
        }
        _ => return Err(CheckpointError::Corrupt("unknown retain mode")),
    };
    let projection = match d.u8()? {
        0 => None,
        1 => {
            let period_s = d.f64()?;
            let sleep_mw = d.f64()?;
            let battery = Battery {
                capacity_mah: d.f64()?,
                voltage_v: d.f64()?,
                usable_fraction: d.f64()?,
            };
            if !(period_s > 0.0 && period_s.is_finite()) {
                return Err(CheckpointError::Corrupt("projection period invalid"));
            }
            if !(sleep_mw >= 0.0 && sleep_mw.is_finite()) {
                return Err(CheckpointError::Corrupt("projection sleep floor invalid"));
            }
            Some(LifeProjection {
                period_s,
                sleep_mw,
                battery,
            })
        }
        _ => return Err(CheckpointError::Corrupt("unknown projection flag")),
    };
    let nodes = d.u64()?;
    let completed = d.u64()?;
    if completed > nodes {
        return Err(CheckpointError::Corrupt("completed > nodes"));
    }
    let total_duration_s = d.f64()?;
    let total_energy_mj = d.f64()?;
    let total_bytes = d.u64()?;
    if !total_duration_s.is_finite() || !total_energy_mj.is_finite() {
        return Err(CheckpointError::Corrupt("non-finite totals"));
    }
    let time_min = decode_metric(d)?;
    let energy_mj = decode_metric(d)?;
    let bytes = decode_metric(d)?;
    let life_years = match d.u8()? {
        0 => None,
        1 => Some(decode_metric(d)?),
        _ => return Err(CheckpointError::Corrupt("unknown life flag")),
    };
    if projection.is_some() != life_years.is_some() {
        return Err(CheckpointError::Corrupt("projection/life flag disagree"));
    }
    let ntags = d.u64()? as usize;
    if ntags > d.b.len() / 8 {
        return Err(CheckpointError::Corrupt("tag count exceeds file size"));
    }
    let mut by_tag = BTreeMap::new();
    let mut prev: Option<String> = None;
    for _ in 0..ntags {
        let tag = d.str()?;
        if prev.as_ref().is_some_and(|p| *p >= tag) {
            return Err(CheckpointError::Corrupt("tags not ascending"));
        }
        let energy_mj = d.f64()?;
        let duration_ns = d.u64()?;
        if !energy_mj.is_finite() || energy_mj < 0.0 {
            return Err(CheckpointError::Corrupt("invalid tag energy"));
        }
        prev = Some(tag.clone());
        by_tag.insert(
            tag,
            TagTotal {
                energy_mj,
                duration_ns,
            },
        );
    }
    if energy_mj.len() as u64 != nodes || bytes.len() as u64 != nodes {
        return Err(CheckpointError::Corrupt(
            "metric counts disagree with nodes",
        ));
    }
    if time_min.len() as u64 != completed {
        return Err(CheckpointError::Corrupt(
            "time metric disagrees with completed",
        ));
    }
    Ok(NodeAggregate {
        retain,
        projection,
        nodes,
        completed,
        total_duration_s,
        total_energy_mj,
        total_bytes,
        time_min,
        energy_mj,
        bytes,
        life_years,
        by_tag,
    })
}

fn encode_report(e: &mut Enc, r: &SessionReport) {
    e.f64(r.duration_s);
    e.u32(r.data_packets);
    e.u32(r.retransmissions);
    e.u64(r.bytes_over_air);
    e.f64(r.node_energy_mj);
    e.f64(r.rx_energy_mj);
    e.f64(r.tx_energy_mj);
    e.u8(u8::from(r.completed));
    e.u32(r.ledger.records().len() as u32);
    for rec in r.ledger.records() {
        e.str(&rec.tag);
        e.f64(rec.energy_mj);
        e.u64(rec.duration_ns);
    }
}

fn decode_report(d: &mut Dec) -> Result<SessionReport, CheckpointError> {
    let duration_s = d.f64()?;
    let data_packets = d.u32()?;
    let retransmissions = d.u32()?;
    let bytes_over_air = d.u64()?;
    let node_energy_mj = d.f64()?;
    let rx_energy_mj = d.f64()?;
    let tx_energy_mj = d.f64()?;
    let completed = match d.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CheckpointError::Corrupt("bad completed flag")),
    };
    for v in [duration_s, node_energy_mj, rx_energy_mj, tx_energy_mj] {
        if !v.is_finite() || v < 0.0 {
            return Err(CheckpointError::Corrupt("invalid report quantity"));
        }
    }
    let nrec = d.u32()? as usize;
    if nrec > d.b.len() / 8 {
        return Err(CheckpointError::Corrupt("record count exceeds file size"));
    }
    let mut ledger = EnergyLedger::new();
    for _ in 0..nrec {
        let tag = d.str()?;
        let energy_mj = d.f64()?;
        let duration_ns = d.u64()?;
        if !energy_mj.is_finite() || energy_mj < 0.0 {
            return Err(CheckpointError::Corrupt("invalid ledger record"));
        }
        ledger.record_energy(&tag, energy_mj, duration_ns);
    }
    Ok(SessionReport {
        duration_s,
        data_packets,
        retransmissions,
        bytes_over_air,
        node_energy_mj,
        rx_energy_mj,
        tx_energy_mj,
        ledger,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::RetainMode;
    use crate::blocks::BlockedUpdate;
    use crate::image::FirmwareImage;
    use crate::session::{run_session, LinkModel, SessionConfig};

    fn sample_checkpoint(retain: RetainMode) -> CampaignCheckpoint {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("ckpt", 6_000, 1));
        let mut agg = NodeAggregate::new(
            retain,
            Some(LifeProjection {
                period_s: 86_400.0,
                sleep_mw: 0.030,
                battery: Battery::lipo_1000mah(),
            }),
        );
        let mut reports = Vec::new();
        for id in 0..5u32 {
            let rep = run_session(
                &upd,
                &LinkModel::from_downlink(-95.0 - id as f64),
                &SessionConfig {
                    max_attempts: 40,
                    seed: 1000 + id as u64,
                },
            );
            agg.push_session(&rep);
            if retain.is_exact() {
                reports.push((id, rep));
            }
        }
        CampaignCheckpoint {
            fingerprint: 0xFEED_F00D,
            merged_blocks: 2,
            total_blocks: 7,
            agg,
            reports,
        }
    }

    #[test]
    fn round_trip_is_identity_both_modes() {
        for retain in [RetainMode::Exact, RetainMode::sketch()] {
            let ck = sample_checkpoint(retain);
            let back = CampaignCheckpoint::decode(&ck.encode()).expect("decode");
            assert_eq!(back, ck, "{retain:?} round trip");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = sample_checkpoint(RetainMode::Exact).encode();
        let b = sample_checkpoint(RetainMode::Exact).encode();
        assert_eq!(a, b, "same state must produce identical bytes");
    }

    #[test]
    fn file_round_trip_is_atomic_and_identical() {
        let dir = std::env::temp_dir().join("tinysdr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let ck = sample_checkpoint(RetainMode::sketch());
        ck.write_atomic(&path).expect("write");
        // overwrite with a later checkpoint; the rename replaces whole
        let mut later = ck.clone();
        later.merged_blocks = 5;
        later.write_atomic(&path).expect("rewrite");
        let back = CampaignCheckpoint::read(&path).expect("read");
        assert_eq!(back, later);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let ck = sample_checkpoint(RetainMode::Exact);
        let good = ck.encode();
        // truncation
        assert!(matches!(
            CampaignCheckpoint::decode(&good[..good.len() - 9]),
            Err(CheckpointError::Corrupt(_))
        ));
        // single bit flip anywhere trips the checksum
        for at in [8, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    CampaignCheckpoint::decode(&bad),
                    Err(CheckpointError::Corrupt(_) | CheckpointError::Mismatch(_))
                ),
                "flip at {at} must not decode"
            );
        }
        // wrong magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(CampaignCheckpoint::decode(&bad).is_err());
    }

    #[test]
    fn checksum_chain_pins() {
        // pin the chain so a silent change to the hash breaks loudly
        assert_eq!(checksum(b""), checksum(b""));
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"ab"), checksum(b"ba"), "order must matter");
        // length is mixed in: a zero byte differs from no byte
        assert_ne!(checksum(b"\0"), checksum(b""));
    }

    #[test]
    fn version_bump_is_a_mismatch_not_garbage() {
        let mut bytes = sample_checkpoint(RetainMode::Exact).encode();
        // bump the version field (offset 8..12) and re-checksum
        bytes[8] = 2;
        let body_len = bytes.len() - 8;
        let sum = checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CampaignCheckpoint::decode(&bytes),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}

//! The 30 KB block pipeline (paper §3.4).
//!
//! "The compression ratio of bitstream file varies based on the content
//! […] in the worst case the compressed file could have almost the same
//! size of the original file. This would require a maximum memory
//! allocation of 579 kB which we cannot afford on a low-cost MCU.
//! Instead, we first divide the original update file into blocks of
//! 30 kB that will fit in the MCU memory. Then we compress each block
//! separately and transmit them to the tinySDR node one by one. […]
//! After receiving all the data we turn off the LoRa radio and
//! decompress data. First, we allocate memory on the MCU's SRAM equal to
//! the block size and load a block of data from flash. Next, we perform
//! decompression and write the data in the allocated SRAM memory.
//! Finally, we write the decompressed data back to the flash."

use tinysdr_hw::flash::Flash;
use tinysdr_hw::mcu::Mcu;

use crate::image::FirmwareImage;
use crate::lzo;

/// Block size the paper chose to fit the MCU's 64 KB SRAM (input block +
/// decompressed block both resident during decompression).
pub const BLOCK_SIZE: usize = 30 * 1024;

/// One compressed block with its framing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedBlock {
    /// Block index.
    pub index: u32,
    /// Uncompressed length (≤ `BLOCK_SIZE`).
    pub raw_len: u32,
    /// Compressed payload.
    pub payload: Vec<u8>,
}

/// A blocked, compressed firmware update ready for transmission.
#[derive(Debug, Clone)]
pub struct BlockedUpdate {
    /// Image name (for logs).
    pub name: String,
    /// Total uncompressed size.
    pub raw_len: usize,
    /// Image CRC-32 (sent in the end-of-update packet).
    pub image_crc32: u32,
    /// The compressed blocks in order.
    pub blocks: Vec<CompressedBlock>,
}

impl BlockedUpdate {
    /// Compress an image block-by-block (runs on the AP: "We perform
    /// compression on the AP").
    pub fn build(image: &FirmwareImage) -> Self {
        let blocks = image
            .data
            .chunks(BLOCK_SIZE)
            .enumerate()
            .map(|(i, chunk)| CompressedBlock {
                index: i as u32,
                raw_len: chunk.len() as u32,
                payload: lzo::compress(chunk),
            })
            .collect();
        BlockedUpdate {
            name: image.name.clone(),
            raw_len: image.len(),
            image_crc32: image.crc32,
            blocks,
        }
    }

    /// Total compressed bytes that go over the air.
    pub fn compressed_len(&self) -> usize {
        self.blocks.iter().map(|b| b.payload.len() + 9).sum() // +framing
    }

    /// Assemble the over-the-air byte stream: every compressed block
    /// preceded by its 9-byte header (`index` LE u32, `raw_len` LE u32,
    /// one reserved zero byte). This is the exact stream the session
    /// engine packetizes and the `tinysdr-link` ARQ pipe transfers —
    /// one definition, so the abstract model and the real link cannot
    /// drift apart.
    pub fn wire_stream(&self) -> Vec<u8> {
        let mut stream = Vec::with_capacity(self.compressed_len());
        for b in &self.blocks {
            stream.extend_from_slice(&b.index.to_le_bytes());
            stream.extend_from_slice(&b.raw_len.to_le_bytes());
            stream.push(0);
            stream.extend_from_slice(&b.payload);
        }
        stream
    }

    /// Parse a received [`BlockedUpdate::wire_stream`] back into blocks
    /// and decompress them to the raw image bytes. The inverse is exact:
    /// `unpack_wire_stream(&u.wire_stream())` equals the original image
    /// for any update built by [`BlockedUpdate::build`].
    ///
    /// # Errors
    /// [`PipelineError::Corrupt`] when a header is truncated, a reserved
    /// byte is nonzero, an index is out of sequence, or a block fails to
    /// decompress to its declared length.
    pub fn unpack_wire_stream(stream: &[u8]) -> Result<Vec<u8>, PipelineError> {
        let mut image = Vec::new();
        let mut cursor = 0usize;
        let mut expected_index = 0u32;
        while cursor < stream.len() {
            let header = stream
                .get(cursor..cursor + 9)
                .ok_or(PipelineError::Corrupt {
                    index: expected_index,
                })?;
            let index = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let raw_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
            if header[8] != 0 || index != expected_index || raw_len == 0 || raw_len > BLOCK_SIZE {
                return Err(PipelineError::Corrupt {
                    index: expected_index,
                });
            }
            cursor += 9;
            // the compressed payload's length is not framed: decompress
            // greedily from the cursor and advance by what was consumed
            let (raw, consumed) = lzo::decompress_prefix(&stream[cursor..], raw_len)
                .map_err(|_| PipelineError::Corrupt { index })?;
            if raw.len() != raw_len {
                return Err(PipelineError::Corrupt { index });
            }
            cursor += consumed;
            image.extend_from_slice(&raw);
            expected_index += 1;
        }
        Ok(image)
    }

    /// Overall compression ratio.
    pub fn ratio(&self) -> f64 {
        self.compressed_len() as f64 / self.raw_len as f64
    }
}

/// Errors from the node-side pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// MCU SRAM could not host the working buffers.
    Sram(String),
    /// Flash error while staging data.
    Flash(String),
    /// A block failed to decompress.
    Corrupt {
        /// Which block.
        index: u32,
    },
    /// Reassembled image CRC mismatch.
    CrcMismatch,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sram(e) => write!(f, "SRAM: {e}"),
            PipelineError::Flash(e) => write!(f, "flash: {e}"),
            PipelineError::Corrupt { index } => write!(f, "block {index} corrupt"),
            PipelineError::CrcMismatch => write!(f, "image CRC mismatch after reassembly"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Result of running the node-side decompression pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Where the reassembled image begins in flash.
    pub image_addr: usize,
    /// Reassembled image length.
    pub image_len: usize,
    /// Modelled MCU decompression time, seconds (paper: ≤ 450 ms).
    pub decompress_time_s: f64,
    /// Peak SRAM used by the pipeline, bytes.
    pub peak_sram: usize,
}

/// Node-side pipeline: stage compressed blocks in flash as they arrive,
/// then decompress block-by-block under the MCU SRAM budget and write
/// the image to its flash slot.
///
/// `staging_addr` is where compressed blocks were written as they
/// arrived; `image_addr` is the final image slot.
///
/// # Errors
/// Propagates SRAM/flash failures, corrupt blocks and CRC mismatch.
pub fn reassemble(
    update: &BlockedUpdate,
    mcu: &mut Mcu,
    flash: &mut Flash,
    staging_addr: usize,
    image_addr: usize,
) -> Result<PipelineReport, PipelineError> {
    // stage compressed blocks into flash (this normally happens packet
    // by packet during the transfer; batched here)
    let mut offsets = Vec::with_capacity(update.blocks.len());
    let mut cursor = staging_addr;
    for b in &update.blocks {
        flash
            .erase_and_program(cursor, &b.payload)
            .map_err(|e| PipelineError::Flash(e.to_string()))?;
        offsets.push((cursor, b.payload.len(), b.raw_len as usize, b.index));
        cursor += b.payload.len().div_ceil(4096) * 4096;
    }

    // decompression loop under the SRAM budget: input block + output
    // block resident simultaneously
    mcu.alloc_sram("ota_in_block", BLOCK_SIZE)
        .map_err(|e| PipelineError::Sram(e.to_string()))?;
    mcu.alloc_sram("ota_out_block", BLOCK_SIZE).map_err(|e| {
        let _ = mcu.free_sram("ota_in_block");
        PipelineError::Sram(e.to_string())
    })?;
    let peak_sram = mcu.sram_used();

    let mut image = Vec::with_capacity(update.raw_len);
    let mut decompress_time = 0.0;
    for (addr, clen, raw_len, index) in offsets {
        let comp = flash
            .read(addr, clen)
            .map_err(|e| PipelineError::Flash(e.to_string()))?
            .to_vec();
        let raw =
            lzo::decompress(&comp, BLOCK_SIZE).map_err(|_| PipelineError::Corrupt { index })?;
        if raw.len() != raw_len {
            return Err(PipelineError::Corrupt { index });
        }
        decompress_time += lzo::mcu_decompress_time_s(raw.len());
        image.extend_from_slice(&raw);
    }
    mcu.free_sram("ota_in_block").ok();
    mcu.free_sram("ota_out_block").ok();

    if tinysdr_fpga::bitstream::crc32(&image) != update.image_crc32 {
        return Err(PipelineError::CrcMismatch);
    }
    flash
        .erase_and_program(image_addr, &image)
        .map_err(|e| PipelineError::Flash(e.to_string()))?;
    Ok(PipelineReport {
        image_addr,
        image_len: image.len(),
        decompress_time_s: decompress_time,
        peak_sram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{FirmwareImage, ImageKind};
    use tinysdr_hw::flash::ImageSlot;

    #[test]
    fn block_count_for_579kb() {
        let img = FirmwareImage::ble_fpga(1);
        let upd = BlockedUpdate::build(&img);
        assert_eq!(upd.blocks.len(), (579 * 1024usize).div_ceil(BLOCK_SIZE));
        // every block's raw side fits the MCU allocation
        for b in &upd.blocks {
            assert!(b.raw_len as usize <= BLOCK_SIZE);
        }
    }

    #[test]
    fn full_pipeline_reassembles_bitstream() {
        let img = FirmwareImage::ble_fpga(5);
        let upd = BlockedUpdate::build(&img);
        let mut mcu = Mcu::new();
        let mut flash = Flash::new();
        let staging = 4 * 1024 * 1024; // upper half of flash for staging
        let slot = ImageSlot::Fpga(0).base_addr();
        let rep = reassemble(&upd, &mut mcu, &mut flash, staging, slot).unwrap();
        assert_eq!(rep.image_len, img.len());
        assert_eq!(flash.read(slot, img.len()).unwrap(), &img.data[..]);
        // SRAM was fully released
        assert_eq!(mcu.sram_used(), 0);
        // and the pipeline peak fits in 64 KB
        assert!(rep.peak_sram <= 64 * 1024);
        // decompression inside the 450 ms budget
        assert!(
            rep.decompress_time_s < 0.45,
            "decompress {}",
            rep.decompress_time_s
        );
    }

    #[test]
    fn corrupt_block_detected() {
        let img = FirmwareImage::mcu("m", 70_000, 2);
        let mut upd = BlockedUpdate::build(&img);
        upd.blocks[1].payload[10] ^= 0xFF;
        let mut mcu = Mcu::new();
        let mut flash = Flash::new();
        let err = reassemble(&upd, &mut mcu, &mut flash, 4 << 20, 4096).unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Corrupt { .. } | PipelineError::CrcMismatch
            ),
            "got {err:?}"
        );
        // SRAM must not leak on failure
        assert_eq!(mcu.sram_used(), 0);
    }

    #[test]
    fn crc_mismatch_detected() {
        let img = FirmwareImage::mcu("m", 50_000, 3);
        let mut upd = BlockedUpdate::build(&img);
        upd.image_crc32 ^= 1;
        let mut mcu = Mcu::new();
        let mut flash = Flash::new();
        assert_eq!(
            reassemble(&upd, &mut mcu, &mut flash, 4 << 20, 4096).unwrap_err(),
            PipelineError::CrcMismatch
        );
    }

    #[test]
    fn sram_budget_blocks_oversized_pipelines() {
        let img = FirmwareImage::mcu("m", 40_000, 4);
        let upd = BlockedUpdate::build(&img);
        let mut mcu = Mcu::new();
        // squat on most of the SRAM first
        mcu.alloc_sram("hog", 40 * 1024).unwrap();
        let mut flash = Flash::new();
        let err = reassemble(&upd, &mut mcu, &mut flash, 4 << 20, 4096).unwrap_err();
        assert!(matches!(err, PipelineError::Sram(_)));
        // the partial allocation rolled back
        assert_eq!(mcu.sram_used(), 40 * 1024);
    }

    #[test]
    fn wire_stream_round_trips_to_image_bytes() {
        for img in [
            FirmwareImage::ble_fpga(5),
            FirmwareImage::mcu("m", 70_001, 2), // non-block-aligned tail
            FirmwareImage::new(ImageKind::Mcu, "tiny", vec![0xA5; 17]),
        ] {
            let upd = BlockedUpdate::build(&img);
            let stream = upd.wire_stream();
            assert_eq!(stream.len(), upd.compressed_len(), "{}", img.name);
            let back = BlockedUpdate::unpack_wire_stream(&stream).unwrap();
            assert_eq!(back, img.data, "{}", img.name);
        }
    }

    #[test]
    fn corrupt_wire_stream_is_rejected_not_misparsed() {
        let img = FirmwareImage::mcu("m", 40_000, 9);
        let upd = BlockedUpdate::build(&img);
        let stream = upd.wire_stream();
        // truncation anywhere inside is an error or, at a block
        // boundary cut, a prefix of the image — never silent junk
        let cut = stream.len() / 2;
        assert!(BlockedUpdate::unpack_wire_stream(&stream[..cut]).is_err());
        // a nonzero reserved byte is rejected
        let mut bad = stream.clone();
        bad[8] = 1;
        assert!(BlockedUpdate::unpack_wire_stream(&bad).is_err());
        // an out-of-sequence index is rejected
        let mut bad = stream;
        bad[0] = 7;
        assert!(BlockedUpdate::unpack_wire_stream(&bad).is_err());
    }

    #[test]
    fn compressed_len_and_ratio() {
        let img = FirmwareImage::new(ImageKind::Mcu, "zeros", vec![0u8; 60_000]);
        let upd = BlockedUpdate::build(&img);
        assert!(upd.ratio() < 0.1);
        assert!(upd.compressed_len() < 6_000);
    }
}

//! Firmware images: what the OTA system ships.
//!
//! Two kinds (paper §3.4/§5.3): FPGA bitstreams ("Raw programming files
//! for our FPGA are 579 kB") and MCU programs ("approximately 78 kB").
//! Content is synthetic but *structured* the way the real artifacts are,
//! because the compression results of §5.3 are measured, not asserted:
//! bitstream density tracks design utilization; MCU images look like
//! Thumb-2 code (a small working set of frequently repeated words plus
//! literal pools).

use tinysdr_fpga::bitstream::{crc32, Bitstream};

/// Which processor an image targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// FPGA configuration bitstream.
    Fpga,
    /// MCU program.
    Mcu,
}

/// A firmware image ready for OTA distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Target.
    pub kind: ImageKind,
    /// Human-readable name ("lora_phy_v2").
    pub name: String,
    /// Raw (uncompressed) bytes.
    pub data: Vec<u8>,
    /// CRC-32 of `data` (checked after OTA reassembly and before
    /// reprogramming).
    pub crc32: u32,
}

impl FirmwareImage {
    /// Wrap raw bytes.
    pub fn new(kind: ImageKind, name: &str, data: Vec<u8>) -> Self {
        let crc = crc32(&data);
        FirmwareImage {
            kind,
            name: name.to_string(),
            data,
            crc32: crc,
        }
    }

    /// A synthetic FPGA image for a design occupying `utilization` of
    /// the device.
    pub fn fpga(name: &str, utilization: f64, seed: u64) -> Self {
        let bs = Bitstream::synthesize(name, utilization, seed);
        FirmwareImage::new(ImageKind::Fpga, name, bs.data().to_vec())
    }

    /// The paper's LoRa FPGA image: modulator + demodulator + OTA glue
    /// ≈ 15% utilization → compresses to ≈ 99 KB.
    pub fn lora_fpga(seed: u64) -> Self {
        Self::fpga("lora_phy", 0.15, seed)
    }

    /// The paper's BLE FPGA image: 3% utilization → ≈ 40 KB compressed.
    pub fn ble_fpga(seed: u64) -> Self {
        Self::fpga("ble_beacon", 0.034, seed)
    }

    /// A synthetic MCU program of `size` bytes (paper: ≈ 78 KB → 24 KB
    /// compressed, i.e. ≈ 31%).
    pub fn mcu(name: &str, size: usize, seed: u64) -> Self {
        let mut data = Vec::with_capacity(size);
        let mut s = seed ^ 0xDEAD_BEEF;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        // real Thumb-2 firmware is dominated by repeated basic blocks
        // (prologues, epilogues, call sequences, inlined helpers) broken
        // up by literal pools and unique addresses. Model: a dictionary
        // of 48 code sequences interleaved with short unique runs, which
        // lands LZ compression at the paper's ≈31% (78 KB → 24 KB).
        let dict: Vec<Vec<u8>> = (0..48)
            .map(|_| {
                let len = 24 + (next() % 72) as usize;
                (0..len).map(|_| (next() >> 40) as u8).collect()
            })
            .collect();
        while data.len() < size {
            let r = next();
            if r % 100 < 50 {
                let seq = &dict[(r as usize >> 8) % dict.len()];
                let take = seq.len().min(size - data.len());
                data.extend_from_slice(&seq[..take]);
            } else {
                for _ in 0..4 {
                    if data.len() + 4 > size {
                        break;
                    }
                    data.extend_from_slice(&((next() >> 16) as u32).to_le_bytes());
                }
            }
        }
        data.resize(size, 0);
        FirmwareImage::new(ImageKind::Mcu, name, data)
    }

    /// The paper's 78 KB MCU program.
    pub fn paper_mcu(name: &str, seed: u64) -> Self {
        Self::mcu(name, 78 * 1024, seed)
    }

    /// Image size, bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty image (never for the constructors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Verify integrity.
    pub fn verify(&self) -> bool {
        crc32(&self.data) == self.crc32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzo;

    #[test]
    fn fpga_image_is_579kb() {
        let img = FirmwareImage::lora_fpga(1);
        assert_eq!(img.len(), 579 * 1024);
        assert!(img.verify());
    }

    #[test]
    fn lora_fpga_compresses_to_about_99kb() {
        // §5.3: "our LoRa program compresses to 99 kB"
        let img = FirmwareImage::lora_fpga(1);
        let c = lzo::compress(&img.data);
        let kb = c.len() as f64 / 1024.0;
        assert!(
            (kb - 99.0).abs() < 20.0,
            "LoRa bitstream compressed to {kb:.0} KB"
        );
    }

    #[test]
    fn ble_fpga_compresses_to_about_40kb() {
        // §5.3: "and BLE to 40 kB"
        let img = FirmwareImage::ble_fpga(2);
        let c = lzo::compress(&img.data);
        let kb = c.len() as f64 / 1024.0;
        assert!(
            (kb - 40.0).abs() < 10.0,
            "BLE bitstream compressed to {kb:.0} KB"
        );
    }

    #[test]
    fn mcu_image_compresses_to_about_24kb() {
        // §5.3: "approximately 78 kB … compressed to 24 kB"
        let img = FirmwareImage::paper_mcu("lora_mac", 3);
        assert_eq!(img.len(), 78 * 1024);
        let c = lzo::compress(&img.data);
        let kb = c.len() as f64 / 1024.0;
        assert!(
            (kb - 24.0).abs() < 10.0,
            "MCU image compressed to {kb:.0} KB"
        );
    }

    #[test]
    fn corruption_fails_verification() {
        let mut img = FirmwareImage::mcu("x", 4096, 4);
        img.data[100] ^= 0xFF;
        assert!(!img.verify());
    }

    #[test]
    fn images_round_trip_compression_exactly() {
        for img in [
            FirmwareImage::ble_fpga(7),
            FirmwareImage::mcu("roundtrip", 30_000, 8),
        ] {
            let c = lzo::compress(&img.data);
            let d = lzo::decompress(&c, img.len()).unwrap();
            assert_eq!(d, img.data);
        }
    }

    #[test]
    fn distinct_seeds_distinct_images() {
        let a = FirmwareImage::lora_fpga(1);
        let b = FirmwareImage::lora_fpga(2);
        assert_ne!(a.crc32, b.crc32);
    }
}

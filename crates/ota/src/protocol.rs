//! The OTA MAC protocol (paper §3.4).
//!
//! "the AP sends a programming request as a LoRa packet with specific
//! device IDs indicating the nodes to be programmed along with the time
//! they should wake up to receive the update. Upon processing this
//! packet and detecting its ID, the tinySDR node switches into update
//! mode and sends a ready message to the AP at the scheduled time. Then,
//! the AP transmits the firmware update as a series of LoRa packets with
//! sequence numbers. Upon receiving each packet, the tinySDR node checks
//! the sequence number and CRC. For a correct packet it writes the data
//! to its flash memory and transmits an ACK […] In the case of failure
//! no ACK is sent and the AP re-transmits the corrupted packet after a
//! timeout. After sending all the firmware data, the AP sends a final
//! packet indicating the end of firmware update."

use tinysdr_lora::phy::crc16;

/// Data-packet payload size (paper: "packets of 60 B which we find
/// balances the trade-off of protocol overhead versus range").
pub const DATA_PAYLOAD: usize = 60;

/// Device identifier in the testbed.
pub type DeviceId = u16;

/// OTA protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtaMessage {
    /// AP → nodes: who should update and when to wake.
    ProgramRequest {
        /// Devices being programmed.
        device_ids: Vec<DeviceId>,
        /// Wake time, milliseconds from now.
        wake_in_ms: u32,
        /// Total number of data packets to expect.
        total_packets: u32,
    },
    /// Node → AP: ready to receive.
    Ready {
        /// Responding device.
        device_id: DeviceId,
    },
    /// AP → node: one chunk of the compressed update.
    Data {
        /// Sequence number.
        seq: u32,
        /// Chunk bytes (≤ `DATA_PAYLOAD`).
        chunk: Vec<u8>,
    },
    /// Node → AP: chunk received intact.
    Ack {
        /// Acknowledged sequence number.
        seq: u32,
    },
    /// AP → node: update complete; verify and reprogram.
    EndOfUpdate {
        /// CRC-32 of the full uncompressed image.
        image_crc32: u32,
    },
}

/// Wire type tags.
mod tag {
    pub const REQUEST: u8 = 0x01;
    pub const READY: u8 = 0x02;
    pub const DATA: u8 = 0x03;
    pub const ACK: u8 = 0x04;
    pub const END: u8 = 0x05;
}

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Unknown message tag.
    BadTag(u8),
    /// Message shorter than its header.
    Truncated,
    /// Embedded CRC-16 check failed.
    BadCrc,
    /// Data chunk too large.
    ChunkTooBig(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadTag(t) => write!(f, "unknown OTA message tag {t:#04x}"),
            ProtoError::Truncated => write!(f, "OTA message truncated"),
            ProtoError::BadCrc => write!(f, "OTA message CRC mismatch"),
            ProtoError::ChunkTooBig(n) => write!(f, "chunk of {n} bytes exceeds 60 B"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl OtaMessage {
    /// Serialize: `tag | body | crc16(tag|body)`.
    ///
    /// # Errors
    /// Fails if a data chunk exceeds [`DATA_PAYLOAD`].
    pub fn to_bytes(&self) -> Result<Vec<u8>, ProtoError> {
        let mut buf = Vec::with_capacity(DATA_PAYLOAD + 10);
        match self {
            OtaMessage::ProgramRequest {
                device_ids,
                wake_in_ms,
                total_packets,
            } => {
                buf.push(tag::REQUEST);
                buf.push(device_ids.len() as u8);
                for id in device_ids {
                    buf.extend_from_slice(&id.to_le_bytes());
                }
                buf.extend_from_slice(&wake_in_ms.to_le_bytes());
                buf.extend_from_slice(&total_packets.to_le_bytes());
            }
            OtaMessage::Ready { device_id } => {
                buf.push(tag::READY);
                buf.extend_from_slice(&device_id.to_le_bytes());
            }
            OtaMessage::Data { seq, chunk } => {
                if chunk.len() > DATA_PAYLOAD {
                    return Err(ProtoError::ChunkTooBig(chunk.len()));
                }
                buf.push(tag::DATA);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(chunk.len() as u8);
                buf.extend_from_slice(chunk);
            }
            OtaMessage::Ack { seq } => {
                buf.push(tag::ACK);
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            OtaMessage::EndOfUpdate { image_crc32 } => {
                buf.push(tag::END);
                buf.extend_from_slice(&image_crc32.to_le_bytes());
            }
        }
        let crc = crc16(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        Ok(buf)
    }

    /// Parse and verify.
    ///
    /// # Errors
    /// Fails on truncation, CRC mismatch or unknown tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProtoError> {
        if bytes.len() < 3 {
            return Err(ProtoError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 2);
        let want = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
        if crc16(body) != want {
            return Err(ProtoError::BadCrc);
        }
        let mut it = body.iter().copied();
        let t = it.next().ok_or(ProtoError::Truncated)?;
        let rest: Vec<u8> = it.collect();
        let need = |n: usize| -> Result<(), ProtoError> {
            if rest.len() < n {
                Err(ProtoError::Truncated)
            } else {
                Ok(())
            }
        };
        match t {
            tag::REQUEST => {
                need(1)?;
                let n = rest[0] as usize;
                need(1 + n * 2 + 8)?;
                let mut ids = Vec::with_capacity(n);
                for k in 0..n {
                    ids.push(u16::from_le_bytes([rest[1 + 2 * k], rest[2 + 2 * k]]));
                }
                let o = 1 + 2 * n;
                Ok(OtaMessage::ProgramRequest {
                    device_ids: ids,
                    // lint: allow(unjustified-panic, slice is exactly four bytes by the need() length check)
                    wake_in_ms: u32::from_le_bytes(rest[o..o + 4].try_into().unwrap()),
                    // lint: allow(unjustified-panic, slice is exactly four bytes by the need() length check)
                    total_packets: u32::from_le_bytes(rest[o + 4..o + 8].try_into().unwrap()),
                })
            }
            tag::READY => {
                need(2)?;
                Ok(OtaMessage::Ready {
                    device_id: u16::from_le_bytes([rest[0], rest[1]]),
                })
            }
            tag::DATA => {
                need(5)?;
                // lint: allow(unjustified-panic, slice is exactly four bytes by the need() length check)
                let seq = u32::from_le_bytes(rest[..4].try_into().unwrap());
                let len = rest[4] as usize;
                need(5 + len)?;
                Ok(OtaMessage::Data {
                    seq,
                    chunk: rest[5..5 + len].to_vec(),
                })
            }
            tag::ACK => {
                need(4)?;
                Ok(OtaMessage::Ack {
                    // lint: allow(unjustified-panic, slice is exactly four bytes by the need() length check)
                    seq: u32::from_le_bytes(rest[..4].try_into().unwrap()),
                })
            }
            tag::END => {
                need(4)?;
                Ok(OtaMessage::EndOfUpdate {
                    // lint: allow(unjustified-panic, slice is exactly four bytes by the need() length check)
                    image_crc32: u32::from_le_bytes(rest[..4].try_into().unwrap()),
                })
            }
            other => Err(ProtoError::BadTag(other)),
        }
    }

    /// Wire size, bytes.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().map(|b| b.len()).unwrap_or(0)
    }
}

/// Split a compressed update byte stream into `Data` messages.
pub fn packetize(stream: &[u8]) -> Vec<OtaMessage> {
    stream
        .chunks(DATA_PAYLOAD)
        .enumerate()
        .map(|(i, c)| OtaMessage::Data {
            seq: i as u32,
            chunk: c.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_round_trip() {
        let msgs = vec![
            OtaMessage::ProgramRequest {
                device_ids: vec![1, 5, 19],
                wake_in_ms: 30_000,
                total_packets: 1690,
            },
            OtaMessage::Ready { device_id: 5 },
            OtaMessage::Data {
                seq: 77,
                chunk: vec![0xAB; 60],
            },
            OtaMessage::Ack { seq: 77 },
            OtaMessage::EndOfUpdate {
                image_crc32: 0xDEAD_BEEF,
            },
        ];
        for m in msgs {
            let wire = m.to_bytes().unwrap();
            let back = OtaMessage::from_bytes(&wire).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn data_packet_fits_lora_payload() {
        // 60 B chunk + 5 B header + 2 B CRC = 67 B < the 255 B LoRa limit
        let m = OtaMessage::Data {
            seq: 0,
            chunk: vec![0; DATA_PAYLOAD],
        };
        assert_eq!(m.wire_len(), 68);
        assert!(m.wire_len() <= 255);
    }

    #[test]
    fn oversized_chunk_rejected() {
        let m = OtaMessage::Data {
            seq: 0,
            chunk: vec![0; 61],
        };
        assert_eq!(m.to_bytes().unwrap_err(), ProtoError::ChunkTooBig(61));
    }

    #[test]
    fn crc_catches_corruption() {
        let m = OtaMessage::Ack { seq: 3 };
        let mut wire = m.to_bytes().unwrap();
        for i in 0..wire.len() {
            wire[i] ^= 0x40;
            assert!(OtaMessage::from_bytes(&wire).is_err(), "byte {i}");
            wire[i] ^= 0x40;
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut body = vec![0x7F, 1, 2, 3];
        let crc = crc16(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            OtaMessage::from_bytes(&body).unwrap_err(),
            ProtoError::BadTag(0x7F)
        );
    }

    #[test]
    fn packetize_covers_stream() {
        let stream: Vec<u8> = (0..150).map(|i| i as u8).collect();
        let pkts = packetize(&stream);
        assert_eq!(pkts.len(), 3);
        let mut rebuilt = Vec::new();
        for p in &pkts {
            if let OtaMessage::Data { chunk, .. } = p {
                rebuilt.extend_from_slice(chunk);
            }
        }
        assert_eq!(rebuilt, stream);
    }

    #[test]
    fn lora_fpga_update_is_about_1700_packets() {
        // 99 KB / 60 B ≈ 1690 packets — the number behind the 150 s
        // average programming time
        let n = (99 * 1024usize).div_ceil(DATA_PAYLOAD);
        assert!((1600..1800).contains(&n), "{n} packets");
    }
}

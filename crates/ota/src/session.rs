//! OTA session simulation: one AP programming one node over a lossy
//! LoRa link, with full time and energy accounting (paper §5.3).
//!
//! The numbers this module reproduces:
//!
//! * average programming time — LoRa FPGA ≈ 150 s, BLE FPGA ≈ 59 s,
//!   MCU ≈ 39 s (Fig. 14's CDF comes from running this per testbed
//!   node),
//! * node-side energy — ≈ 6144 mJ per LoRa FPGA update, ≈ 2342 mJ per
//!   BLE update, hence 2100 / 5600 updates per 1000 mAh battery and
//!   71 / 27 µW at one update per day.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tinysdr_lora::modem::LoraPerPhy;
use tinysdr_power::energy::EnergyLedger;
use tinysdr_power::state::OtaEnergyModel;
use tinysdr_rf::phy::PhyModem;
use tinysdr_rf::sx1276::{self, LoRaParams};

use crate::blocks::BlockedUpdate;
use crate::protocol::{packetize, OtaMessage};

/// Node ACK transmit power, dBm. The AP uses a patch antenna ("connected
/// to a patch antenna transmitting at 14 dBm"), whose gain benefits the
/// uplink equally, so nodes close the reverse link at reduced power.
pub const ACK_TX_POWER_DBM: f64 = 6.0;

/// MCU/radio turnaround between packets (processing + TRX switching),
/// seconds. Table 4's 45 µs TX↔RX switches are negligible next to the
/// MCU's packet handling.
pub const TURNAROUND_S: f64 = 0.0015;

/// ACK wait timeout before the AP retransmits, seconds.
pub const ACK_TIMEOUT_S: f64 = 0.08;

/// The radio link between AP and one node.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// LoRa modem parameters (the paper's OTA config: SF8, BW 500 kHz,
    /// CR 4/6, 8-symbol preamble).
    pub params: LoRaParams,
    /// Downlink RSSI at the node, dBm.
    pub downlink_rssi_dbm: f64,
    /// Uplink RSSI at the AP (reduced ACK power + same path), dBm.
    pub uplink_rssi_dbm: f64,
    /// Per-packet log-normal fading standard deviation, dB. Real campus
    /// links flutter packet-to-packet (people, vehicles, multipath);
    /// this is what spreads Fig. 14's CDF for marginal nodes instead of
    /// a binary works/doesn't cliff.
    pub fading_sigma_db: f64,
    /// SNR-independent packet loss from co-channel 900 MHz ISM
    /// interference at the node's location (campus deployments commonly
    /// see several percent). Differentiates programming times even
    /// between strong-signal nodes, as in the paper's Fig. 14.
    pub base_loss_prob: f64,
}

impl LinkModel {
    /// Build a link from the downlink RSSI, assuming a reciprocal path:
    /// uplink RSSI = downlink − (14 − ACK power).
    pub fn from_downlink(downlink_rssi_dbm: f64) -> Self {
        LinkModel {
            params: LoRaParams::ota_link(),
            downlink_rssi_dbm,
            uplink_rssi_dbm: downlink_rssi_dbm - (14.0 - ACK_TX_POWER_DBM),
            fading_sigma_db: 2.0,
            base_loss_prob: 0.0,
        }
    }

    /// The link's modem as a [`PhyModem`] trait object — the framed
    /// LoRa PHY carrying exactly this link's `params` (every flag,
    /// including `explicit_header`/`crc_on`/`low_dr_opt`). Campaign
    /// payload air time is charged through this route
    /// ([`PhyModem::airtime_len_s`]), so every session prices packets
    /// the way the registry's modem does, not via a parallel formula.
    pub fn phy(&self) -> Box<dyn PhyModem> {
        Box::new(LoraPerPhy::from_lora_params(self.params))
    }

    /// Downlink PER for a `len`-byte packet at the median RSSI.
    pub fn downlink_per(&self, len: usize, seed: u64) -> f64 {
        sx1276::packet_error_rate(self.downlink_rssi_dbm, &self.params, len, 4000, seed)
    }

    /// Uplink (ACK) PER at the median RSSI.
    pub fn uplink_per(&self, len: usize, seed: u64) -> f64 {
        sx1276::packet_error_rate(self.uplink_rssi_dbm, &self.params, len, 4000, seed)
    }

    /// PER lookup table over integer-dB fading offsets −6..=+6 around
    /// the median, for fast per-packet draws.
    fn per_table(&self, rssi: f64, len: usize, seed: u64) -> Vec<f64> {
        (-6..=6)
            .map(|o| {
                sx1276::packet_error_rate(
                    rssi + o as f64,
                    &self.params,
                    len,
                    2000,
                    seed ^ ((o + 7) as u64),
                )
            })
            .collect()
    }
}

/// Draw a fading offset index into a −6..=+6 dB table.
fn fading_index(rng: &mut StdRng, sigma_db: f64) -> usize {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    ((g * sigma_db).round().clamp(-6.0, 6.0) + 6.0) as usize
}

/// Outcome of one programming session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Wall-clock programming time, seconds (network downtime).
    pub duration_s: f64,
    /// Distinct data packets actually put on the air. Equals the
    /// update's packet count when the session completes; smaller when
    /// the session aborts partway.
    pub data_packets: u32,
    /// Retransmissions needed.
    pub retransmissions: u32,
    /// Total bytes sent over the air (both directions).
    pub bytes_over_air: u64,
    /// Node energy, mJ — backbone radio + MCU + flash, as the paper
    /// accounts it.
    pub node_energy_mj: f64,
    /// Radio-RX share of the energy, mJ.
    pub rx_energy_mj: f64,
    /// ACK-TX share, mJ.
    pub tx_energy_mj: f64,
    /// Per-component ledger of the same energy: tags `radio_rx`,
    /// `radio_tx`, `mcu`, `flash` — what campaign reports merge across
    /// nodes. Its total equals [`Self::node_energy_mj`] (up to float
    /// association).
    pub ledger: EnergyLedger,
    /// Whether the session completed (false = retry limit exceeded).
    pub completed: bool,
}

/// Session knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Give up after this many attempts per packet.
    pub max_attempts: u32,
    /// RNG seed for loss realizations.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_attempts: 20,
            seed: 1,
        }
    }
}

/// Simulate programming one node with a blocked update over a link.
///
/// Node-side energy is priced through the workspace-wide
/// [`OtaEnergyModel::paper`] calibration (backbone SX1276 RX/ACK-TX,
/// MCU session average, flash page-program bursts) — the same model
/// the broadcast engine and `repro energy` use.
pub fn run_session(update: &BlockedUpdate, link: &LinkModel, cfg: &SessionConfig) -> SessionReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pw = OtaEnergyModel::paper();

    // the over-the-air byte stream: shared with the tinysdr-link ARQ
    // pipe, so both transports move byte-identical payloads
    let stream = update.wire_stream();
    let packets = packetize(&stream);

    let data_wire = OtaMessage::Data {
        seq: 0,
        chunk: vec![0; 60],
    }
    .wire_len();
    let ack_wire = OtaMessage::Ack { seq: 0 }.wire_len();
    // packet air time is charged through the PhyModem trait (the same
    // seam the conformance sweeps and the device use); for LoRa the
    // modem's closed form is the Semtech formula, so this is exact
    let phy = link.phy();
    let t_data = phy.airtime_len_s(data_wire);
    let t_ack = phy.airtime_len_s(ack_wire);

    let per_down = link.per_table(link.downlink_rssi_dbm, data_wire, cfg.seed ^ 0xD0);
    let per_up = link.per_table(link.uplink_rssi_dbm, ack_wire, cfg.seed ^ 0xAC);

    let mut t = 0.0f64;
    let mut rx_mj = 0.0f64;
    let mut tx_mj = 0.0f64;
    // wall-clock the radio spends in each role, for the ledger records
    let mut rx_s = 0.0f64;
    let mut tx_s = 0.0f64;
    let mut retx = 0u32;
    let mut completed = true;
    // transmissions actually on the air, for byte accounting; an aborted
    // session must not be credited with packets that were never sent
    let mut sent_packets = 0u32; // distinct data packets aired
    let mut data_tx = 1u64; // data-frame transmissions (handshake request)
    let mut ack_tx = 1u64; // uplink transmissions (handshake Ready)
    let mut flash_packets = 0u64; // packets the node received and stored

    // handshake: ProgramRequest + Ready (one exchange, retried like data)
    t += t_data + TURNAROUND_S + t_ack + TURNAROUND_S;
    rx_mj += t_data * pw.rx_mw;
    tx_mj += t_ack * pw.ack_tx_mw;
    rx_s += t_data;
    tx_s += t_ack;

    'outer: for _pkt in &packets {
        let mut attempts = 0;
        let mut received = false;
        loop {
            attempts += 1;
            if attempts > cfg.max_attempts {
                completed = false;
                if received {
                    flash_packets += 1;
                }
                break 'outer;
            }
            if attempts == 1 {
                sent_packets += 1;
            }
            // downlink data packet: node listens for its full airtime
            t += t_data + TURNAROUND_S;
            rx_mj += t_data * pw.rx_mw;
            rx_s += t_data;
            data_tx += 1;
            let data_ok = rng.gen::<f64>()
                >= per_down[fading_index(&mut rng, link.fading_sigma_db)]
                && rng.gen::<f64>() >= link.base_loss_prob;
            if !data_ok {
                // node misses it; AP times out waiting for the ACK
                t += ACK_TIMEOUT_S;
                rx_mj += ACK_TIMEOUT_S * pw.rx_mw;
                rx_s += ACK_TIMEOUT_S;
                retx += 1;
                continue;
            }
            received = true;
            // node ACKs
            t += t_ack + TURNAROUND_S;
            tx_mj += t_ack * pw.ack_tx_mw;
            tx_s += t_ack;
            ack_tx += 1;
            let ack_ok = rng.gen::<f64>() >= per_up[fading_index(&mut rng, link.fading_sigma_db)]
                && rng.gen::<f64>() >= link.base_loss_prob / 3.0; // ACKs are short
            if ack_ok {
                break;
            }
            // AP missed the ACK → timeout → retransmit (node will see a
            // duplicate sequence number and re-ACK)
            t += ACK_TIMEOUT_S;
            rx_mj += ACK_TIMEOUT_S * pw.rx_mw;
            rx_s += ACK_TIMEOUT_S;
            retx += 1;
        }
        flash_packets += 1;
    }

    if completed {
        // end-of-update exchange (an aborted session just times out)
        t += t_data + TURNAROUND_S + t_ack;
        rx_mj += t_data * pw.rx_mw;
        tx_mj += t_ack * pw.ack_tx_mw;
        rx_s += t_data;
        tx_s += t_ack;
        data_tx += 1;
        ack_tx += 1;
    }

    let mcu_mj = t * pw.mcu_mw;
    let flash_mj = flash_packets as f64 * pw.flash_mj_per_packet;
    let node_energy = rx_mj + tx_mj + mcu_mj + flash_mj;

    // the same energy as a per-component ledger (burst records carry
    // the exact mJ; durations attribute wall clock per component)
    let mut ledger = EnergyLedger::new();
    ledger.record_energy("radio_rx", rx_mj, (rx_s * 1e9) as u64);
    ledger.record_energy("radio_tx", tx_mj, (tx_s * 1e9) as u64);
    ledger.record_energy("mcu", mcu_mj, (t * 1e9) as u64);
    ledger.record_energy(
        "flash",
        flash_mj,
        flash_packets * tinysdr_hw::flash::timing::PAGE_PROGRAM_NS,
    );

    SessionReport {
        duration_s: t,
        data_packets: sent_packets,
        retransmissions: retx,
        bytes_over_air: data_tx * data_wire as u64 + ack_tx * ack_wire as u64,
        node_energy_mj: node_energy,
        rx_energy_mj: rx_mj,
        tx_energy_mj: tx_mj,
        ledger,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FirmwareImage;

    fn strong_link() -> LinkModel {
        LinkModel::from_downlink(-90.0)
    }

    #[test]
    fn lora_fpga_update_time_and_energy_match_paper() {
        // §5.3: ≈150 s average (that includes far nodes; a strong link
        // is the fast edge of the CDF, ≈135-145 s), ≈6144 mJ
        let img = FirmwareImage::lora_fpga(1);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(&upd, &strong_link(), &SessionConfig::default());
        assert!(rep.completed);
        assert!(
            rep.duration_s > 110.0 && rep.duration_s < 165.0,
            "LoRa FPGA session {} s",
            rep.duration_s
        );
        assert!(
            (rep.node_energy_mj - 6144.0).abs() < 1200.0,
            "LoRa update energy {} mJ",
            rep.node_energy_mj
        );
    }

    #[test]
    fn ble_fpga_update_time_and_energy_match_paper() {
        // §5.3: ≈59 s, ≈2342 mJ
        let img = FirmwareImage::ble_fpga(2);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(&upd, &strong_link(), &SessionConfig::default());
        assert!(
            rep.duration_s > 40.0 && rep.duration_s < 70.0,
            "BLE FPGA session {} s",
            rep.duration_s
        );
        assert!(
            (rep.node_energy_mj - 2342.0).abs() < 600.0,
            "BLE update energy {} mJ",
            rep.node_energy_mj
        );
    }

    #[test]
    fn mcu_update_is_fastest() {
        // §5.3: MCU images ≈39 s
        let img = FirmwareImage::paper_mcu("mac", 3);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(&upd, &strong_link(), &SessionConfig::default());
        assert!(
            rep.duration_s > 20.0 && rep.duration_s < 50.0,
            "MCU session {} s",
            rep.duration_s
        );
    }

    #[test]
    fn battery_update_counts_match_paper() {
        use tinysdr_power::battery::Battery;
        let b = Battery::lipo_1000mah();
        let lora = BlockedUpdate::build(&FirmwareImage::lora_fpga(1));
        let ble = BlockedUpdate::build(&FirmwareImage::ble_fpga(2));
        let e_lora = run_session(&lora, &strong_link(), &SessionConfig::default()).node_energy_mj;
        let e_ble = run_session(&ble, &strong_link(), &SessionConfig::default()).node_energy_mj;
        let n_lora = b.operations(e_lora).expect("positive update energy");
        let n_ble = b.operations(e_ble).expect("positive update energy");
        // §5.3: "we could OTA program each tinySDR node with LoRa 2100
        // times and BLE 5600 times"
        assert!(
            (n_lora as f64 - 2100.0).abs() < 500.0,
            "LoRa updates {n_lora}"
        );
        assert!(
            (n_ble as f64 - 5600.0).abs() < 1400.0,
            "BLE updates {n_ble}"
        );
        // daily updates → µW-scale average power (71 / 27 µW)
        let avg_lora_uw = e_lora / 86_400.0 * 1000.0;
        let avg_ble_uw = e_ble / 86_400.0 * 1000.0;
        assert!((avg_lora_uw - 71.0).abs() < 18.0, "avg {avg_lora_uw} µW");
        assert!((avg_ble_uw - 27.0).abs() < 8.0, "avg {avg_ble_uw} µW");
    }

    #[test]
    fn weak_links_take_longer() {
        let img = FirmwareImage::ble_fpga(4);
        let upd = BlockedUpdate::build(&img);
        let fast = run_session(
            &upd,
            &LinkModel::from_downlink(-90.0),
            &SessionConfig::default(),
        );
        // −114 dBm is ~7 dB above SF8/BW500 sensitivity (−121): lossy
        let slow = run_session(
            &upd,
            &LinkModel::from_downlink(-114.0),
            &SessionConfig::default(),
        );
        assert!(slow.retransmissions > fast.retransmissions);
        assert!(slow.duration_s > fast.duration_s);
    }

    #[test]
    fn dead_link_gives_up() {
        let img = FirmwareImage::mcu("x", 30_000, 5);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(
            &upd,
            &LinkModel::from_downlink(-135.0),
            &SessionConfig {
                max_attempts: 5,
                seed: 2,
            },
        );
        assert!(!rep.completed);
    }

    #[test]
    fn aborted_session_counts_only_transmitted_packets() {
        // regression: an aborted session used to report every packet of
        // the update as sent, even ones that never went on the air
        let img = FirmwareImage::mcu("x", 30_000, 5);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(
            &upd,
            &LinkModel::from_downlink(-140.0), // dead: PER = 1 at every fading offset
            &SessionConfig {
                max_attempts: 1,
                seed: 2,
            },
        );
        assert!(!rep.completed);
        assert_eq!(rep.data_packets, 1, "only the first packet was ever aired");
        assert_eq!(rep.retransmissions, 1);
        let data_wire = crate::protocol::OtaMessage::Data {
            seq: 0,
            chunk: vec![0; 60],
        }
        .wire_len() as u64;
        let ack_wire = crate::protocol::OtaMessage::Ack { seq: 0 }.wire_len() as u64;
        // handshake (request + Ready) plus the single failed data
        // attempt; no end-of-update exchange on an aborted session
        assert_eq!(rep.bytes_over_air, 2 * data_wire + ack_wire);
        // a completed session still reports the full update
        let full = run_session(&upd, &strong_link(), &SessionConfig::default());
        assert!(full.completed);
        assert!(full.data_packets > 100, "MCU update spans many packets");
        assert!(rep.bytes_over_air < full.bytes_over_air / 50);
    }

    #[test]
    fn link_phy_airtime_is_the_semtech_closed_form() {
        // routing air time through the PhyModem trait must not move a
        // single session number: the LoRa modem's airtime override IS
        // the AN1200.13 formula the session engine always used
        let link = strong_link();
        let phy = link.phy();
        for len in [1usize, OtaMessage::Ack { seq: 0 }.wire_len(), 69, 120] {
            let via_phy = phy.airtime_len_s(len);
            let via_params = link.params.airtime_s(len);
            assert!(
                (via_phy - via_params).abs() < 1e-12,
                "{len} bytes: {via_phy} vs {via_params}"
            );
            // the frame-based route agrees with the length-based one
            assert_eq!(phy.airtime_s(&vec![0u8; len]), via_phy);
        }
        assert_eq!(phy.label(), "LoRa PER SF8 BW500");
    }

    #[test]
    fn link_phy_airtime_honors_customized_link_flags() {
        // LinkModel.params is public: a caller flipping crc_on or
        // explicit_header must see the trait-routed air time follow
        // (regression: phy() used to rebuild params from defaults)
        let mut link = strong_link();
        link.params.crc_on = false;
        link.params.explicit_header = false;
        link.params.preamble_symbols = 12;
        let phy = link.phy();
        for len in [10usize, 69] {
            assert!(
                (phy.airtime_len_s(len) - link.params.airtime_s(len)).abs() < 1e-12,
                "customized flags must flow through the modem"
            );
        }
        // and the customization genuinely changes the number
        assert!(phy.airtime_len_s(69) < strong_link().phy().airtime_len_s(69));
    }

    #[test]
    fn ledger_accounts_for_the_whole_session() {
        // the per-component ledger must agree with the scalar report:
        // same total (up to float association), all four tags present,
        // shares matching the rx/tx fields exactly
        let img = FirmwareImage::ble_fpga(2);
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(&upd, &strong_link(), &SessionConfig::default());
        let tags = rep.ledger.by_tag();
        assert_eq!(tags["radio_rx"], rep.rx_energy_mj);
        assert_eq!(tags["radio_tx"], rep.tx_energy_mj);
        assert!(tags.contains_key("mcu") && tags.contains_key("flash"));
        assert!(
            (rep.ledger.total_mj() - rep.node_energy_mj).abs() < 1e-9,
            "ledger {} vs report {}",
            rep.ledger.total_mj(),
            rep.node_energy_mj
        );
        // the radio cannot listen longer than the session lasted
        let rx_s = rep.ledger.records()[0].duration_ns as f64 / 1e9;
        assert!(rx_s > 0.0 && rx_s < rep.duration_s);
    }

    #[test]
    fn deterministic_per_seed() {
        let img = FirmwareImage::mcu("d", 20_000, 6);
        let upd = BlockedUpdate::build(&img);
        let a = run_session(
            &upd,
            &strong_link(),
            &SessionConfig {
                max_attempts: 10,
                seed: 9,
            },
        );
        let b = run_session(
            &upd,
            &strong_link(),
            &SessionConfig {
                max_attempts: 10,
                seed: 9,
            },
        );
        assert_eq!(a, b);
    }
}

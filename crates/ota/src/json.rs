//! Hand-rolled JSON: the workspace's one report/spec codec.
//!
//! The approved offline crate set has no `serde`, and the testbed
//! control plane (job specs over HTTP, reports and ECDF tables on
//! disk, the `repro --json` output) needs a wire format — so this
//! module carries a small, fully deterministic JSON layer the same way
//! [`crate::checkpoint`] carries the binary one. One codec, every
//! consumer: the daemon and the CLI emit reports through the exact
//! same functions, which is what makes "a job run through the daemon
//! is bit-identical to the library call" checkable as plain string
//! equality.
//!
//! Determinism contract:
//!
//! * Objects are ordered vectors, not hash maps — a document writes
//!   the same bytes every time, and field order is part of the value.
//! * Finite `f64`s print via Rust's shortest-round-trip `Display` and
//!   therefore re-[`parse`](Value::parse) **bit-exactly**; non-finite
//!   values serialize as `null` (reports never carry them — the
//!   checkpoint codec rejects them outright).
//! * Full-width integers (fingerprints, checksums) do **not** fit in a
//!   JSON number's 53-bit mantissa; [`Value::hex_u64`] /
//!   [`Value::as_hex_u64`] carry them as fixed-width hex strings.
//!
//! The parser is a recursive-descent reader with an explicit depth
//! limit, accepts exactly the JSON grammar (RFC 8259) and nothing
//! else, and reports byte offsets in errors.

use std::fmt;

/// Nesting depth the parser accepts before giving up — generous for
/// every document this workspace produces, small enough to keep a
/// hostile input from exhausting the stack.
const MAX_DEPTH: usize = 96;

/// A parsed (or to-be-written) JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Always finite (the writer maps non-finite to `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: insertion-ordered key/value pairs (order is
    /// significant — it is what makes writes byte-deterministic).
    Obj(Vec<(String, Value)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a number from anything losslessly representable as `f64`
    /// (counts up to 2^53; for full-width words use
    /// [`Value::hex_u64`]).
    pub fn num(x: f64) -> Value {
        Value::Num(x)
    }

    /// A `u64` carried exactly: a 16-digit lowercase hex string.
    pub fn hex_u64(v: u64) -> Value {
        Value::Str(format!("{v:016x}"))
    }

    /// Object field lookup (first match; documents here never repeat
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (rejects fractions,
    /// negatives and anything past 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Decode a [`Value::hex_u64`]-encoded word.
    pub fn as_hex_u64(&self) -> Option<u64> {
        let s = self.as_str()?;
        if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
            u64::from_str_radix(s, 16).ok()
        } else {
            None
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Write compactly (no whitespace). `parse(write(v)) == v` for
    /// every value this module can produce.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Write human-readably (two-space indent, one field per line,
    /// trailing newline) — the artifact-file format.
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) => write_num(*x, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Shortest-round-trip number formatting: Rust's `Display` prints the
/// fewest digits that re-parse to the same bits, which is exactly the
/// bit-exactness contract this codec promises for finite values.
fn write_num(x: f64, out: &mut String) {
    if x.is_finite() {
        // Display never emits `inf`/`NaN` here, and its `1e300`-style
        // exponent form is valid JSON number syntax
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // fast path: a run of plain UTF-8 up to the next quote,
            // backslash or control byte
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair: the low half must follow
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: 0 alone or a nonzero-led digit run
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // the grammar above only admits valid f64 text, so this parse
        // cannot fail; huge magnitudes saturate to infinity, which we
        // reject to keep the "Num is always finite" invariant
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of f64 range"));
        }
        Ok(Value::Num(x))
    }
}

/// One named ECDF curve, the artifact-file form of
/// [`tinysdr_dsp::stats::Ecdf::curve`] /
/// `NodeMetric::curve` output: `(x, P[X <= x])` steps, ascending in
/// `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct EcdfTable {
    /// What the curve measures (e.g. `"time_min"`, `"energy_mj"`).
    pub label: String,
    /// `(x, cumulative probability)` steps.
    pub points: Vec<(f64, f64)>,
}

impl EcdfTable {
    /// Build from a metric curve, thinning to at most `max_points`
    /// evenly strided steps (first and last always kept) so exact-mode
    /// million-node campaigns don't write million-row artifacts.
    pub fn from_curve(label: impl Into<String>, curve: &[(f64, f64)], max_points: usize) -> Self {
        let max_points = max_points.max(2);
        let points = if curve.len() <= max_points {
            curve.to_vec()
        } else {
            let stride = (curve.len() - 1) as f64 / (max_points - 1) as f64;
            (0..max_points)
                .map(|i| curve[(i as f64 * stride).round() as usize])
                .collect()
        };
        EcdfTable {
            label: label.into(),
            points,
        }
    }

    /// As a JSON object `{label, points: [[x, p], ...]}`.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("label".into(), Value::str(&self.label)),
            (
                "points".into(),
                Value::Arr(
                    self.points
                        .iter()
                        .map(|&(x, p)| Value::Arr(vec![Value::num(x), Value::num(p)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`Self::to_json`].
    pub fn from_json(v: &Value) -> Option<EcdfTable> {
        let label = v.get("label")?.as_str()?.to_string();
        let mut points = Vec::new();
        for pair in v.get("points")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            points.push((pair[0].as_f64()?, pair[1].as_f64()?));
        }
        Some(EcdfTable { label, points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let compact = v.write();
        assert_eq!(&Value::parse(&compact).expect("compact parses"), v);
        let pretty = v.write_pretty();
        assert_eq!(&Value::parse(&pretty).expect("pretty parses"), v);
    }

    #[test]
    fn scalar_round_trips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::num(0.0));
        roundtrip(&Value::num(-0.0));
        roundtrip(&Value::num(1.5e-9));
        roundtrip(&Value::num(f64::MAX));
        roundtrip(&Value::num(f64::MIN_POSITIVE));
        roundtrip(&Value::str("plain"));
        roundtrip(&Value::str("esc \" \\ \n \t \u{1} snowman ☃"));
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        // awkward values: shortest-display must restore the exact bits
        for &x in &[
            1.0 / 3.0,
            std::f64::consts::PI,
            6.02214076e23,
            -2.2250738585072014e-308,
            9_007_199_254_740_993.0,
        ] {
            let mut s = String::new();
            write_num(x, &mut s);
            let back: f64 = s.parse().expect("reparses");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled to {back}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::num(1.0)),
            ("name".into(), Value::str("campaign")),
            (
                "tags".into(),
                Value::Arr(vec![Value::str("a"), Value::Null, Value::Bool(false)]),
            ),
            (
                "nested".into(),
                Value::Obj(vec![("fp".into(), Value::hex_u64(0xDEAD_BEEF_0BAD_F00D))]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        roundtrip(&doc);
        assert_eq!(
            doc.get("nested")
                .and_then(|n| n.get("fp"))
                .and_then(Value::as_hex_u64),
            Some(0xDEAD_BEEF_0BAD_F00D)
        );
    }

    #[test]
    fn parser_accepts_foreign_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\ud83d\\ude00\" ] } ")
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::num(25.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2],
            Value::str("A\u{1F600}")
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "\"abc",
            "\"\\q\"",
            "{\"a\":1} x",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn non_finite_writes_as_null() {
        assert_eq!(Value::num(f64::NAN).write(), "null");
        assert_eq!(Value::num(f64::INFINITY).write(), "null");
    }

    #[test]
    fn as_u64_is_exactness_checked() {
        assert_eq!(Value::num(42.0).as_u64(), Some(42));
        assert_eq!(Value::num(42.5).as_u64(), None);
        assert_eq!(Value::num(-1.0).as_u64(), None);
        assert_eq!(Value::num(1e300).as_u64(), None);
    }

    #[test]
    fn ecdf_table_round_trips_and_downsamples() {
        let curve: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 * 0.25, (i + 1) as f64 / 100.0))
            .collect();
        let t = EcdfTable::from_curve("time_min", &curve, 16);
        assert_eq!(t.points.len(), 16);
        assert_eq!(t.points[0], curve[0], "first step kept");
        assert_eq!(t.points[15], curve[99], "last step kept");
        let back = EcdfTable::from_json(&Value::parse(&t.to_json().write()).unwrap()).unwrap();
        assert_eq!(back, t);
    }
}

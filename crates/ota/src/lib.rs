//! # tinysdr-ota
//!
//! Over-the-air programming (paper §3.4 and §5.3): "the first over-the-air
//! SDR programming capability to support PHY and MAC updates in a
//! wireless testbed."
//!
//! * [`lzo`] — a from-scratch byte-oriented LZ77 compressor/decompressor
//!   in the miniLZO spirit (no entropy coder, byte-aligned tokens,
//!   decompression working memory equal to the output size — the exact
//!   property the paper leans on for the MCU).
//! * [`image`] — firmware images: FPGA bitstreams (579 KB, content tied
//!   to design utilization) and MCU programs (code-like content), with
//!   CRC-32 integrity.
//! * [`blocks`] — the 30 KB blocking pipeline: "we first divide the
//!   original update file into blocks of 30 kB that will fit in the MCU
//!   memory. Then we compress each block separately", and the
//!   flash-backed decompression loop that respects the 64 KB SRAM.
//! * [`protocol`] — the OTA MAC: ProgramRequest (device IDs + wake
//!   time), Ready, sequenced+CRC'd Data packets, per-packet ACK,
//!   End-of-update.
//! * [`broadcast`] — the §7 "simultaneously broadcast the updates"
//!   extension: one shared broadcast plus NACK-driven repair rounds,
//!   with the sequential-vs-broadcast ablation.
//! * [`session`] — the AP↔node session simulation over a lossy LoRa
//!   link: programming time, retransmissions, and the §5.3 node-side
//!   energy (6144 mJ per LoRa FPGA update, 2342 mJ per BLE update).
//! * [`seed`] — splitmix64-based, order-independent seed derivation for
//!   campaign RNG streams (what makes sharded campaigns bit-identical
//!   to sequential ones).
//! * [`aggregate`] — streaming per-node aggregation
//!   ([`aggregate::NodeAggregate`]): counters, per-tag energy totals
//!   and exact-or-sketch distributions, the bounded-memory replacement
//!   for retaining every session report at million-node scale.
//! * [`checkpoint`] — versioned, deterministic on-disk campaign
//!   checkpoints (hand-rolled codec, splitmix64-chained checksum) for
//!   kill/resume of long campaigns.
//! * [`json`] — the hand-rolled, byte-deterministic JSON codec behind
//!   report serialization: job specs and reports for the testbed
//!   control plane (`tinysdr-testbedd`) and the `repro --json` output
//!   share these exact encode/decode paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod blocks;
pub mod broadcast;
pub mod checkpoint;
pub mod image;
pub mod json;
pub mod lzo;
pub mod protocol;
pub mod seed;
pub mod session;

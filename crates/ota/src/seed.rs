//! Deterministic, order-independent seed derivation for campaign RNGs.
//!
//! A testbed campaign runs one randomized session per node. For the
//! results to be reproducible *and* parallelizable, every node must draw
//! its randomness from a seed that depends only on `(campaign seed,
//! node id, stream)` — never on the order nodes happen to be programmed
//! in, and never colliding with the campaign-level RNG or with another
//! node. The previous scheme (`seed ^ (node_id << 8)`) failed both ways:
//! node 0's seed *was* the campaign seed, and nearby ids differed in a
//! handful of bits, which a small RNG state does not hide.
//!
//! This module provides a [`splitmix64`]-style finalizer (Steele,
//! Lea & Flood, "Fast splittable pseudorandom number generators",
//! OOPSLA 2014 — the same avalanche used to seed xoshiro generators)
//! and two derivation helpers built from it. Each input word passes
//! through the full mixer before being combined, so structured inputs
//! (small consecutive ids, round stream tags) land in uncorrelated
//! regions of the seed space.

/// One splitmix64 output step: add the Weyl constant, then finalize with
/// the two multiply-xorshift rounds. Full avalanche: every input bit
/// flips every output bit with probability ~1/2.
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream tag for a node's unicast programming-session RNG.
pub const STREAM_SESSION: u64 = 0x5E55_0001;
/// Stream tag for a node's location-dependent interference draw.
pub const STREAM_INTERFERENCE: u64 = 0x1F7E_0002;
/// Stream tag for the shared broadcast-medium RNG.
pub const STREAM_BROADCAST: u64 = 0xB0AD_0003;
/// Stream tag for per-node PER sampling inside the broadcast engine.
pub const STREAM_BROADCAST_PER: u64 = 0xB0AD_0004;

/// Campaign-level sub-stream seed: one derived RNG stream per `stream`
/// tag (e.g. the shared broadcast medium). Independent of node count and
/// iteration order.
#[must_use]
pub fn stream_seed(campaign_seed: u64, stream: u64) -> u64 {
    splitmix64(campaign_seed ^ splitmix64(stream))
}

/// Per-node sub-stream seed. Order-independent: depends only on the
/// three inputs, so a node programmed by shard 7 of 8 draws exactly the
/// sequence it would draw in a single-threaded campaign.
#[must_use]
pub fn node_stream_seed(campaign_seed: u64, node_id: u64, stream: u64) -> u64 {
    // The node id passes through its own mixer round (offset by an
    // arbitrary odd constant) before entering the stream state, so the
    // node axis and the stream axis cannot cancel each other.
    splitmix64(stream_seed(campaign_seed, stream) ^ splitmix64(node_id ^ 0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const STREAMS: [u64; 4] = [
        STREAM_SESSION,
        STREAM_INTERFERENCE,
        STREAM_BROADCAST,
        STREAM_BROADCAST_PER,
    ];

    #[test]
    fn splitmix_avalanche_changes_roughly_half_the_bits() {
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = splitmix64(x);
            let b = splitmix64(x ^ 1);
            let flipped = (a ^ b).count_ones();
            assert!(
                (16..=48).contains(&flipped),
                "weak avalanche: {flipped} bits for x={x}"
            );
        }
    }

    #[test]
    fn node_seeds_are_unique_across_nodes_and_streams() {
        // the regression the campaign engine depends on: for realistic
        // campaign sizes, no node/stream pair shares a seed with any
        // other, nor with the campaign seed or a campaign-level stream
        for campaign_seed in [0u64, 1, 42, 0xBEEF] {
            let mut seen = HashSet::new();
            assert!(seen.insert(campaign_seed));
            for stream in STREAMS {
                assert!(seen.insert(stream_seed(campaign_seed, stream)));
            }
            for node in 0..4096u64 {
                for stream in STREAMS {
                    let s = node_stream_seed(campaign_seed, node, stream);
                    assert!(
                        seen.insert(s),
                        "collision at node {node} stream {stream:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_zero_does_not_degenerate_to_the_campaign_seed() {
        // the old expression `seed ^ (id << 8)` returned the bare
        // campaign seed for node 0
        for seed in [0u64, 7, 99, u64::MAX] {
            assert_ne!(node_stream_seed(seed, 0, STREAM_SESSION), seed);
            assert_ne!(node_stream_seed(seed, 0, STREAM_INTERFERENCE), seed);
        }
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(
            node_stream_seed(9, 17, STREAM_SESSION),
            node_stream_seed(9, 17, STREAM_SESSION)
        );
        assert_ne!(
            node_stream_seed(9, 17, STREAM_SESSION),
            node_stream_seed(10, 17, STREAM_SESSION)
        );
        assert_ne!(
            node_stream_seed(9, 17, STREAM_SESSION),
            node_stream_seed(9, 18, STREAM_SESSION)
        );
    }
}

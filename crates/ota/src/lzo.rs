//! Byte-oriented LZ77 compression in the miniLZO spirit.
//!
//! The paper: "We choose the miniLZO compression algorithm, which is a
//! lightweight subset of the Lempel–Ziv–Oberhumer (LZO) algorithm. Our
//! implementation of miniLZO only requires a memory allocation equal to
//! the size of the uncompressed data" (§3.4).
//!
//! This module implements the same *trade*, not the proprietary token
//! grammar: greedy hash-chain matching, byte-aligned tokens, no entropy
//! coder, single-pass decompression whose only working memory is the
//! output buffer. Format (documented so the AP and MCU sides agree):
//!
//! ```text
//! token T:
//!   0x00..=0x7F  literal run of T+1 bytes (1..=128), bytes follow
//!   0x80..=0xFF  match: length (T & 0x7F) + MIN_MATCH (4..=131),
//!                followed by 2-byte little-endian distance (1..=65535)
//! ```

/// Minimum match length worth a 3-byte token.
pub const MIN_MATCH: usize = 4;
/// Maximum match length encodable in one token.
pub const MAX_MATCH: usize = 127 + MIN_MATCH;
/// Maximum literal run per token.
pub const MAX_LITERALS: usize = 128;
/// Sliding-window (max match distance).
pub const WINDOW: usize = 65_535;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzoError {
    /// Input ended inside a token.
    Truncated,
    /// A match referenced data before the start of the output.
    BadDistance {
        /// Offending distance.
        distance: usize,
        /// Output length at that point.
        have: usize,
    },
    /// Output exceeded the caller's stated capacity (guards the MCU's
    /// fixed allocation).
    OutputOverflow,
}

impl std::fmt::Display for LzoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzoError::Truncated => write!(f, "compressed stream truncated"),
            LzoError::BadDistance { distance, have } => {
                write!(
                    f,
                    "match distance {distance} exceeds produced output {have}"
                )
            }
            LzoError::OutputOverflow => write!(f, "output exceeds stated capacity"),
        }
    }
}

impl std::error::Error for LzoError {}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`. The output is self-framing; pair with
/// [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(MAX_LITERALS);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[s..s + run]);
            s += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let cand = head[h];
        head[h] = i;
        let mut match_len = 0usize;
        if cand != usize::MAX && i - cand <= WINDOW {
            // verify and extend
            let max = (input.len() - i).min(MAX_MATCH);
            while match_len < max && input[cand + match_len] == input[i + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i, input);
            let dist = i - cand;
            out.push(0x80 | ((match_len - MIN_MATCH) as u8));
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            // index the skipped positions sparsely (every other byte) —
            // the speed/ratio trade miniLZO makes
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                head[hash4(&input[j..])] = j;
                j += 2;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, input.len(), input);
    out
}

/// Decompress into a buffer of at most `max_output` bytes (the MCU's
/// fixed allocation).
///
/// # Errors
/// Fails on truncation, invalid back-references, or output overflow.
pub fn decompress(input: &[u8], max_output: usize) -> Result<Vec<u8>, LzoError> {
    let mut out: Vec<u8> = Vec::with_capacity(max_output.min(1 << 20));
    let mut i = 0usize;
    while i < input.len() {
        let t = input[i];
        i += 1;
        if t < 0x80 {
            let run = t as usize + 1;
            if i + run > input.len() {
                return Err(LzoError::Truncated);
            }
            if out.len() + run > max_output {
                return Err(LzoError::OutputOverflow);
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            if i + 2 > input.len() {
                return Err(LzoError::Truncated);
            }
            let len = (t & 0x7F) as usize + MIN_MATCH;
            let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(LzoError::BadDistance {
                    distance: dist,
                    have: out.len(),
                });
            }
            if out.len() + len > max_output {
                return Err(LzoError::OutputOverflow);
            }
            // overlapping copy, byte at a time (RLE via dist < len)
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Decompress exactly `want_output` bytes from the front of `input`,
/// returning the bytes and how much of `input` was consumed. This is
/// how concatenated per-block streams (the OTA wire stream) are split
/// without explicit compressed-length framing: each block's tokens are
/// consumed until its declared raw length is produced, and the next
/// block's header begins right after.
///
/// # Errors
/// Fails on truncation, invalid back-references, or a token that would
/// overshoot `want_output` (block boundaries always align with token
/// boundaries in a stream produced by [`compress`]).
pub fn decompress_prefix(input: &[u8], want_output: usize) -> Result<(Vec<u8>, usize), LzoError> {
    let mut out: Vec<u8> = Vec::with_capacity(want_output.min(1 << 20));
    let mut i = 0usize;
    while out.len() < want_output {
        if i >= input.len() {
            return Err(LzoError::Truncated);
        }
        let t = input[i];
        i += 1;
        if t < 0x80 {
            let run = t as usize + 1;
            if i + run > input.len() {
                return Err(LzoError::Truncated);
            }
            if out.len() + run > want_output {
                return Err(LzoError::OutputOverflow);
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            if i + 2 > input.len() {
                return Err(LzoError::Truncated);
            }
            let len = (t & 0x7F) as usize + MIN_MATCH;
            let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(LzoError::BadDistance {
                    distance: dist,
                    have: out.len(),
                });
            }
            if out.len() + len > want_output {
                return Err(LzoError::OutputOverflow);
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok((out, i))
}

/// Convenience ratio helper.
pub fn ratio(uncompressed: usize, compressed: usize) -> f64 {
    compressed as f64 / uncompressed as f64
}

/// MSP432-class decompression time model: the paper measures "a maximum
/// of 450 ms" to decompress a full update. A byte-oriented LZ inner loop
/// costs ~25 CPU cycles per *output* byte on a Cortex-M4F at 48 MHz.
pub fn mcu_decompress_time_s(output_bytes: usize) -> f64 {
    const CYCLES_PER_BYTE: f64 = 25.0;
    const CLOCK_HZ: f64 = 48e6;
    output_bytes as f64 * CYCLES_PER_BYTE / CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c, data.len()).expect("decompresses")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(&[]), Vec::<u8>::new());
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn zeros_compress_hard() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 30,
            "zeros: {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn random_data_stays_put() {
        let mut s = 1u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        // incompressible: ≤ 1% expansion
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"tinySDR tinySDR tinySDR over the air over the air!".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 5,
            "text {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "abcabcabc..." exercises dist < len copies
        let data: Vec<u8> = b"abc".iter().cycle().take(10_000).copied().collect();
        assert_eq!(round_trip(&data), data);
        let c = compress(&data);
        assert!(c.len() < 400);
    }

    #[test]
    fn mixed_structure() {
        let mut data = vec![0u8; 4096];
        data.extend(b"header".repeat(64));
        data.extend((0u32..1024).flat_map(|x| x.to_le_bytes()));
        data.extend(vec![0xFF; 2048]);
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn truncation_detected() {
        let c = compress(b"hello world hello world hello world");
        for cut in 1..c.len() {
            // any prefix either errors or yields a strict prefix — never junk
            if let Ok(partial) = decompress(&c[..cut], 1024) {
                assert!(b"hello world hello world hello world".starts_with(partial.as_slice()))
            }
        }
    }

    #[test]
    fn bad_distance_rejected() {
        // match token with distance 100 but no produced output
        let stream = [0x80, 100, 0];
        assert!(matches!(
            decompress(&stream, 1024),
            Err(LzoError::BadDistance { .. })
        ));
    }

    #[test]
    fn output_cap_enforced() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert_eq!(decompress(&c, 999), Err(LzoError::OutputOverflow));
        assert!(decompress(&c, 1000).is_ok());
    }

    #[test]
    fn decompress_prefix_splits_concatenated_blocks() {
        let a = b"the first block compresses compresses compresses".repeat(20);
        let b: Vec<u8> = (0..997u32).flat_map(|x| x.to_le_bytes()).collect();
        let mut joined = compress(&a);
        let a_clen = joined.len();
        joined.extend_from_slice(&compress(&b));
        let (got_a, used) = decompress_prefix(&joined, a.len()).unwrap();
        assert_eq!(got_a, a);
        assert_eq!(used, a_clen, "consumed exactly the first block's tokens");
        let (got_b, used_b) = decompress_prefix(&joined[used..], b.len()).unwrap();
        assert_eq!(got_b, b);
        assert_eq!(used + used_b, joined.len());
        // asking for more than the stream holds is truncation
        assert_eq!(
            decompress_prefix(&joined, a.len() + b.len() + 1),
            Err(LzoError::Truncated)
        );
        // zero-length prefix consumes nothing
        assert_eq!(decompress_prefix(&joined, 0), Ok((Vec::new(), 0)));
    }

    #[test]
    fn decompress_time_model_under_budget() {
        // a full 579 KB bitstream decompresses in < 450 ms on the MCU
        let t = mcu_decompress_time_s(579 * 1024);
        assert!(t < 0.450, "decompress model {t} s");
        assert!(t > 0.1, "should not be free either: {t} s");
    }

    #[test]
    fn window_limit_respected() {
        // matches must never reference beyond 64 KB back
        let mut data = vec![0xAAu8; 10];
        data.extend(vec![0x55u8; WINDOW + 100]);
        data.extend(vec![0xAAu8; 10]); // same as the prefix, but too far
        assert_eq!(round_trip(&data), data);
    }
}

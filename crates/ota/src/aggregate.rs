//! Streaming campaign aggregation: bounded-memory accumulation of
//! per-node session outcomes.
//!
//! The paper's 20-node campus keeps every [`SessionReport`] and builds
//! exact ECDFs — fine at paper scale, fatal at the ROADMAP's million-
//! node north star (a 1M-node campaign would retain ~4M ledger records
//! and four raw-sample ECDFs). [`NodeAggregate`] replaces the
//! per-node vector in the hot path: counters, per-tag energy totals,
//! and one [`NodeMetric`] per observable (programming time, node
//! energy, bytes over the air, projected battery life), each either an
//! exact [`Ecdf`] or a bounded-memory
//! [`QuantileSketch`] depending on [`RetainMode`].
//!
//! Determinism: the aggregate is built per *block* of node ids and
//! merged in block-index order (see `tinysdr-core`'s scheduler), so
//! every floating-point sum has a fixed association regardless of how
//! worker threads interleave. `merge` itself is pure state-on-state:
//! counters add, sketches add bucket-wise, ECDFs merge sorted runs,
//! and per-tag totals add in `BTreeMap` key order.

use std::collections::BTreeMap;

use tinysdr_dsp::sketch::QuantileSketch;
use tinysdr_dsp::stats::{Distribution, Ecdf};
use tinysdr_power::battery::Battery;
use tinysdr_power::duty::projected_life_years;

use crate::session::SessionReport;

/// What a campaign retains per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetainMode {
    /// Keep every session report and exact ECDFs — the paper-scale
    /// default; figures are bit-identical to the pre-streaming engine.
    Exact,
    /// Keep only counters and quantile sketches at relative accuracy
    /// `alpha` — flat memory, million-node scale.
    Sketch {
        /// Sketch relative accuracy in `(0, 1)`.
        alpha: f64,
    },
}

impl RetainMode {
    /// Sketch retention at the default accuracy
    /// ([`QuantileSketch::DEFAULT_ALPHA`]).
    pub fn sketch() -> Self {
        RetainMode::Sketch {
            alpha: QuantileSketch::DEFAULT_ALPHA,
        }
    }

    /// `true` when per-node session reports are retained.
    pub fn is_exact(&self) -> bool {
        matches!(self, RetainMode::Exact)
    }

    fn metric(&self) -> NodeMetric {
        match *self {
            RetainMode::Exact => NodeMetric::Exact(Ecdf::new()),
            RetainMode::Sketch { alpha } => NodeMetric::Sketch(QuantileSketch::with_alpha(alpha)),
        }
    }
}

/// Battery-life projection parameters carried by a campaign: each node
/// repeats its session every `period_s` seconds and spends the rest at
/// the `sleep_mw` floor. The streaming counterpart of the exact-mode
/// `battery_life_years_ecdf` — both call
/// [`tinysdr_power::duty::projected_life_years`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifeProjection {
    /// Seconds between updates.
    pub period_s: f64,
    /// Sleep-floor power between sessions, mW.
    pub sleep_mw: f64,
    /// The battery the projection drains.
    pub battery: Battery,
}

/// One observable's distribution, in whichever retention mode the
/// campaign runs. Inherent accessors mirror the
/// [`Distribution`] trait so callers need no trait import.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMetric {
    /// Exact: every observation retained, sorted.
    Exact(Ecdf),
    /// Bounded-memory logarithmic-bucket sketch.
    Sketch(QuantileSketch),
}

impl NodeMetric {
    fn dist(&self) -> &dyn Distribution {
        match self {
            NodeMetric::Exact(e) => e,
            NodeMetric::Sketch(s) => s,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        match self {
            NodeMetric::Exact(e) => e.push(x),
            NodeMetric::Sketch(s) => s.push(x),
        }
    }

    /// Fold another metric of the same retention mode into this one.
    ///
    /// # Panics
    /// Panics on a retention-mode mismatch — merging an exact metric
    /// into a sketch would silently change what the numbers mean.
    pub fn merge(&mut self, other: &NodeMetric) {
        match (self, other) {
            (NodeMetric::Exact(a), NodeMetric::Exact(b)) => a.merge(b),
            (NodeMetric::Sketch(a), NodeMetric::Sketch(b)) => a.merge(b),
            _ => panic!("NodeMetric::merge: retention-mode mismatch"),
        }
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.dist().len()
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.dist().is_empty()
    }

    /// `P[X <= x]`; 0 when empty.
    pub fn cdf(&self, x: f64) -> f64 {
        self.dist().cdf(x)
    }

    /// Quantile `q` in `[0,1]` (nearest-rank), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.dist().quantile(q)
    }

    /// Median, `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.dist().median()
    }

    /// Mean (exact, or over bucket representatives), `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.dist().mean()
    }

    /// Minimum observation (exact in both modes), `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.dist().min()
    }

    /// Maximum observation (exact in both modes), `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.dist().max()
    }

    /// Bytes of state currently held.
    pub fn memory_bytes(&self) -> usize {
        self.dist().memory_bytes()
    }

    /// `(x, P[X<=x])` series for plotting.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        match self {
            NodeMetric::Exact(e) => e.curve(),
            NodeMetric::Sketch(s) => s.curve(),
        }
    }

    /// The exact ECDF behind this metric, when in exact mode.
    pub fn as_ecdf(&self) -> Option<&Ecdf> {
        match self {
            NodeMetric::Exact(e) => Some(e),
            NodeMetric::Sketch(_) => None,
        }
    }
}

/// Per-tag energy totals (the streaming replacement for carrying every
/// node's full [`tinysdr_power::energy::EnergyLedger`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TagTotal {
    /// Summed energy under this tag, mJ.
    pub energy_mj: f64,
    /// Summed dwell time under this tag, ns.
    pub duration_ns: u64,
}

/// Streaming accumulator over per-node session outcomes — counters,
/// per-tag energy totals, and four [`NodeMetric`] distributions.
/// Memory is `O(occupied sketch buckets)` in sketch mode, independent
/// of node count.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAggregate {
    pub(crate) retain: RetainMode,
    pub(crate) projection: Option<LifeProjection>,
    pub(crate) nodes: u64,
    pub(crate) completed: u64,
    pub(crate) total_duration_s: f64,
    pub(crate) total_energy_mj: f64,
    pub(crate) total_bytes: u64,
    /// Programming time of completed sessions, minutes (Fig. 14 axis).
    pub(crate) time_min: NodeMetric,
    /// Per-node session energy, mJ — all nodes, completed or not.
    pub(crate) energy_mj: NodeMetric,
    /// Per-node bytes over the air — all nodes.
    pub(crate) bytes: NodeMetric,
    /// Projected battery life, years — only when a projection is set.
    pub(crate) life_years: Option<NodeMetric>,
    /// Per-component energy totals, keyed by ledger tag.
    pub(crate) by_tag: BTreeMap<String, TagTotal>,
}

impl NodeAggregate {
    /// Fresh accumulator in the given retention mode, optionally
    /// streaming a battery-life projection per node.
    pub fn new(retain: RetainMode, projection: Option<LifeProjection>) -> Self {
        if let Some(p) = &projection {
            assert!(
                p.period_s > 0.0 && p.period_s.is_finite(),
                "update period must be positive"
            );
            assert!(
                p.sleep_mw >= 0.0 && p.sleep_mw.is_finite(),
                "sleep floor must be >= 0"
            );
        }
        NodeAggregate {
            retain,
            projection,
            nodes: 0,
            completed: 0,
            total_duration_s: 0.0,
            total_energy_mj: 0.0,
            total_bytes: 0,
            time_min: retain.metric(),
            energy_mj: retain.metric(),
            bytes: retain.metric(),
            life_years: projection.is_some().then(|| retain.metric()),
            by_tag: BTreeMap::new(),
        }
    }

    /// Fold one node's session into the aggregate.
    pub fn push_session(&mut self, rep: &SessionReport) {
        self.nodes += 1;
        if rep.completed {
            self.completed += 1;
            self.time_min.push(rep.duration_s / 60.0);
        }
        self.total_duration_s += rep.duration_s;
        self.total_energy_mj += rep.node_energy_mj;
        self.total_bytes += rep.bytes_over_air;
        self.energy_mj.push(rep.node_energy_mj);
        self.bytes.push(rep.bytes_over_air as f64);
        if let (Some(p), Some(life)) = (&self.projection, &mut self.life_years) {
            if let Some(years) = projected_life_years(
                rep.node_energy_mj,
                rep.duration_s,
                p.period_s,
                p.sleep_mw,
                &p.battery,
            ) {
                life.push(years);
            }
        }
        for rec in rep.ledger.records() {
            let t = self.by_tag.entry(rec.tag.clone()).or_default();
            t.energy_mj += rec.energy_mj;
            t.duration_ns += rec.duration_ns;
        }
    }

    /// Fold another aggregate into this one. Deterministic given the
    /// two states: counters add, metrics merge mode-wise, per-tag
    /// totals add in key order.
    ///
    /// # Panics
    /// Panics when the retention modes or life projections differ —
    /// the two aggregates measure different things.
    pub fn merge(&mut self, other: &NodeAggregate) {
        assert!(
            self.retain == other.retain,
            "NodeAggregate::merge: retention-mode mismatch"
        );
        assert!(
            self.projection == other.projection,
            "NodeAggregate::merge: life-projection mismatch"
        );
        self.nodes += other.nodes;
        self.completed += other.completed;
        self.total_duration_s += other.total_duration_s;
        self.total_energy_mj += other.total_energy_mj;
        self.total_bytes += other.total_bytes;
        self.time_min.merge(&other.time_min);
        self.energy_mj.merge(&other.energy_mj);
        self.bytes.merge(&other.bytes);
        match (&mut self.life_years, &other.life_years) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            // unreachable: projection equality is asserted above
            _ => panic!("NodeAggregate::merge: life metric mismatch"),
        }
        for (tag, t) in &other.by_tag {
            let e = self.by_tag.entry(tag.clone()).or_default();
            e.energy_mj += t.energy_mj;
            e.duration_ns += t.duration_ns;
        }
    }

    /// The retention mode this aggregate runs in.
    pub fn retain(&self) -> RetainMode {
        self.retain
    }

    /// The battery-life projection streamed per node, if any.
    pub fn projection(&self) -> Option<LifeProjection> {
        self.projection
    }

    /// Number of nodes folded in.
    pub fn len(&self) -> usize {
        self.nodes as usize
    }

    /// `true` when no node has been folded in.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Number of nodes whose session completed.
    pub fn completed(&self) -> usize {
        self.completed as usize
    }

    /// Sum of session durations, seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.total_duration_s
    }

    /// Total node-side energy, mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.total_energy_mj
    }

    /// Total bytes over the air across all sessions.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Programming time of completed sessions, minutes.
    pub fn time_dist(&self) -> &NodeMetric {
        &self.time_min
    }

    /// Per-node session energy, mJ — all nodes, completed or not.
    pub fn energy_dist(&self) -> &NodeMetric {
        &self.energy_mj
    }

    /// Per-node bytes over the air.
    pub fn bytes_dist(&self) -> &NodeMetric {
        &self.bytes
    }

    /// Projected battery life, years — present iff a
    /// [`LifeProjection`] was configured.
    pub fn life_dist(&self) -> Option<&NodeMetric> {
        self.life_years.as_ref()
    }

    /// Campaign energy per ledger tag, mJ.
    pub fn energy_by_tag(&self) -> BTreeMap<String, f64> {
        self.by_tag
            .iter()
            .map(|(k, t)| (k.clone(), t.energy_mj))
            .collect()
    }

    /// Per-tag `(energy, dwell-time)` totals.
    pub fn tag_totals(&self) -> &BTreeMap<String, TagTotal> {
        &self.by_tag
    }

    /// Bytes of state currently held — the quantity `repro campaign`
    /// proves independent of node count in sketch mode.
    pub fn memory_bytes(&self) -> usize {
        let tags: usize = self
            .by_tag
            .keys()
            .map(|k| k.len() + std::mem::size_of::<TagTotal>())
            .sum();
        std::mem::size_of::<Self>()
            + tags
            + self.time_min.memory_bytes()
            + self.energy_mj.memory_bytes()
            + self.bytes.memory_bytes()
            + self.life_years.as_ref().map_or(0, |l| l.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockedUpdate;
    use crate::image::FirmwareImage;
    use crate::session::{run_session, LinkModel, SessionConfig};

    fn session(seed: u64, rssi: f64) -> SessionReport {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("agg", 6_000, 1));
        run_session(
            &upd,
            &LinkModel::from_downlink(rssi),
            &SessionConfig {
                max_attempts: 40,
                seed,
            },
        )
    }

    fn projection() -> LifeProjection {
        LifeProjection {
            period_s: 86_400.0,
            sleep_mw: 0.030,
            battery: Battery::lipo_1000mah(),
        }
    }

    #[test]
    fn aggregate_counters_match_reports() {
        let reps: Vec<SessionReport> = (0..6).map(|i| session(i, -95.0)).collect();
        let mut agg = NodeAggregate::new(RetainMode::Exact, Some(projection()));
        for r in &reps {
            agg.push_session(r);
        }
        assert_eq!(agg.len(), 6);
        assert_eq!(agg.completed(), reps.iter().filter(|r| r.completed).count());
        let sum: f64 = reps.iter().map(|r| r.node_energy_mj).sum();
        assert_eq!(agg.total_energy_mj(), sum);
        assert_eq!(
            agg.total_bytes(),
            reps.iter().map(|r| r.bytes_over_air).sum::<u64>()
        );
        assert_eq!(agg.energy_dist().len(), 6);
        assert_eq!(agg.bytes_dist().len(), 6);
        assert_eq!(agg.time_dist().len(), agg.completed());
        assert_eq!(agg.life_dist().unwrap().len(), 6);
        // per-tag totals cover the whole energy
        let tag_sum: f64 = agg.energy_by_tag().values().sum();
        assert!((tag_sum - sum).abs() < 1e-6 * sum);
    }

    #[test]
    fn block_order_merge_is_canonical() {
        // the scheduler's contract: per-block aggregates merged in
        // block-index order give one well-defined result, no matter
        // which worker computed which block or in what order the
        // blocks *finished*. (One-pass push order is NOT bit-identical
        // to blockwise sums — float addition is not associative —
        // which is exactly why the engine always aggregates blockwise,
        // with the sequential path using the same block structure.)
        let reps: Vec<SessionReport> = (0..9).map(|i| session(i * 3 + 1, -100.0)).collect();
        for retain in [RetainMode::Exact, RetainMode::sketch()] {
            let block_of = |chunk: &[SessionReport]| {
                let mut b = NodeAggregate::new(retain, Some(projection()));
                for r in chunk {
                    b.push_session(r);
                }
                b
            };
            // worker A computes blocks 0..3 in order
            let in_order: Vec<NodeAggregate> = reps.chunks(3).map(block_of).collect();
            // worker B "stole" them and computed the same blocks
            // backwards — the per-block states must be identical
            let mut stolen: Vec<NodeAggregate> = reps.chunks(3).rev().map(block_of).collect();
            stolen.reverse();
            let fold = |blocks: &[NodeAggregate]| {
                let mut acc = NodeAggregate::new(retain, Some(projection()));
                for b in blocks {
                    acc.merge(b);
                }
                acc
            };
            assert_eq!(
                fold(&in_order),
                fold(&stolen),
                "{retain:?}: steal order leaked into the merged state"
            );
            // a single block IS the one-pass accumulation
            let mut whole = NodeAggregate::new(retain, Some(projection()));
            for r in &reps {
                whole.push_session(r);
            }
            assert_eq!(whole, block_of(&reps), "{retain:?}: single block");
        }
    }

    #[test]
    fn sketch_mode_memory_is_flat() {
        let rep = session(1, -95.0);
        let mut small = NodeAggregate::new(RetainMode::sketch(), Some(projection()));
        let mut big = NodeAggregate::new(RetainMode::sketch(), Some(projection()));
        for _ in 0..10 {
            small.push_session(&rep);
        }
        for _ in 0..10_000 {
            big.push_session(&rep);
        }
        assert_eq!(big.len(), 10_000);
        assert!(
            big.memory_bytes() <= small.memory_bytes(),
            "identical sessions occupy identical buckets: {} vs {}",
            big.memory_bytes(),
            small.memory_bytes()
        );
        // exact mode grows linearly instead
        let mut exact = NodeAggregate::new(RetainMode::Exact, None);
        for _ in 0..10_000 {
            exact.push_session(&rep);
        }
        assert!(exact.memory_bytes() > 20 * big.memory_bytes());
    }

    #[test]
    fn sketch_quantiles_track_exact() {
        let reps: Vec<SessionReport> = (0..40).map(|i| session(i, -104.0)).collect();
        let mut exact = NodeAggregate::new(RetainMode::Exact, None);
        let mut sk = NodeAggregate::new(RetainMode::sketch(), None);
        for r in &reps {
            exact.push_session(r);
            sk.push_session(r);
        }
        for q in [0.1, 0.5, 0.9] {
            let e = exact.energy_dist().quantile(q).unwrap();
            let s = sk.energy_dist().quantile(q).unwrap();
            assert!(
                (s - e).abs() <= 0.011 * e.abs(),
                "q={q}: sketch {s} vs exact {e}"
            );
        }
        assert_eq!(exact.energy_dist().min(), sk.energy_dist().min());
        assert_eq!(exact.energy_dist().max(), sk.energy_dist().max());
    }

    #[test]
    #[should_panic(expected = "retention-mode mismatch")]
    fn merge_rejects_mode_mismatch() {
        let mut a = NodeAggregate::new(RetainMode::Exact, None);
        let b = NodeAggregate::new(RetainMode::sketch(), None);
        a.merge(&b);
    }
}

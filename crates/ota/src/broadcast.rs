//! Broadcast OTA — the paper's §7 extension, implemented.
//!
//! "we could explore modified MAC protocols that simultaneously
//! broadcast the updates across the network to reduce programming time."
//!
//! Protocol: the AP broadcasts every data packet once; nodes record the
//! sequence numbers they missed; in each repair round the AP polls the
//! nodes for NACK bitmaps (one short uplink per incomplete node) and
//! re-broadcasts the union of missing packets. Compared with the paper's
//! sequential unicast (§3.4), total campaign airtime drops from
//! `O(nodes × packets)` to `O(packets + losses)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tinysdr_power::state::OtaEnergyModel;

use crate::blocks::BlockedUpdate;
use crate::protocol::{packetize, OtaMessage};
use crate::seed::{node_stream_seed, STREAM_BROADCAST_PER, STREAM_SESSION};
use crate::session::{LinkModel, ACK_TIMEOUT_S, TURNAROUND_S};

/// Result of one broadcast campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastReport {
    /// Total campaign wall-clock time (network downtime for everyone).
    pub total_time_s: f64,
    /// Repair rounds used.
    pub rounds: u32,
    /// Packets re-broadcast across all repair rounds.
    pub repairs: u64,
    /// Per-node received-everything flags.
    pub node_complete: Vec<bool>,
    /// Per-node energy, mJ.
    pub node_energy_mj: Vec<f64>,
}

impl BroadcastReport {
    /// `true` if every node holds the full image.
    pub fn all_complete(&self) -> bool {
        self.node_complete.iter().all(|&c| c)
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastConfig {
    /// Give up after this many repair rounds.
    pub max_rounds: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            max_rounds: 12,
            seed: 1,
        }
    }
}

/// Run a broadcast campaign over per-node links, with the per-node PER
/// stream keyed by position (`node id == slice index`). Callers whose
/// links are a subset or reordering of a larger fleet should use
/// [`run_broadcast_keyed`] so each node keeps its own stream.
pub fn run_broadcast(
    update: &BlockedUpdate,
    links: &[LinkModel],
    cfg: &BroadcastConfig,
) -> BroadcastReport {
    let ids: Vec<u64> = (0..links.len() as u64).collect();
    run_broadcast_keyed(update, links, &ids, cfg)
}

/// [`run_broadcast`] with explicit node ids keying each node's PER
/// sampling stream. The shared-medium RNG still hands out per-packet
/// draws in slice order (one ether, one sequence of fades), so the
/// engine is deterministic per `(seed, link order)`; the ids make the
/// *per-node* statistics follow the node rather than its position.
///
/// An empty `links` slice yields an empty, complete report.
///
/// # Panics
/// Panics if `links` and `node_ids` differ in length.
pub fn run_broadcast_keyed(
    update: &BlockedUpdate,
    links: &[LinkModel],
    node_ids: &[u64],
    cfg: &BroadcastConfig,
) -> BroadcastReport {
    assert_eq!(links.len(), node_ids.len(), "one id per link");
    // node-side powers: the same shared calibration the unicast session
    // prices with (broadcast nodes do the identical station-keeping)
    let pw = OtaEnergyModel::paper();
    if links.is_empty() {
        return BroadcastReport {
            total_time_s: 0.0,
            rounds: 0,
            repairs: 0,
            node_complete: Vec::new(),
            node_energy_mj: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // over-the-air stream, as in the unicast session
    let mut stream = Vec::with_capacity(update.compressed_len());
    for b in &update.blocks {
        stream.extend_from_slice(&b.index.to_le_bytes());
        stream.extend_from_slice(&b.raw_len.to_le_bytes());
        stream.push(0);
        stream.extend_from_slice(&b.payload);
    }
    let packets = packetize(&stream);
    let n_packets = packets.len();

    let data_wire = OtaMessage::Data {
        seq: 0,
        chunk: vec![0; 60],
    }
    .wire_len();
    let nack_wire = OtaMessage::Ack { seq: 0 }.wire_len() + 8; // bitmap summary
    let params = &links[0].params;
    let t_data = params.airtime_s(data_wire);
    let t_nack = params.airtime_s(nack_wire);

    // per-node PER at the median RSSI (per-packet fading folded in by
    // sampling around it, as in the unicast session); seeds are mixed
    // per node so no node's PER sampling aliases the shared-medium RNG
    let pers: Vec<f64> = links
        .iter()
        .enumerate()
        .map(|(i, l)| {
            l.downlink_per(
                data_wire,
                node_stream_seed(cfg.seed, node_ids[i], STREAM_BROADCAST_PER),
            )
        })
        .collect();

    let mut missing: Vec<Vec<bool>> = links.iter().map(|_| vec![true; n_packets]).collect();
    let mut time = 0.0f64;
    let mut node_energy = vec![0.0f64; links.len()];
    let mut repairs = 0u64;
    let mut rounds = 0u32;

    // initial full broadcast
    let mut to_send: Vec<usize> = (0..n_packets).collect();
    loop {
        for &seq in &to_send {
            time += t_data + TURNAROUND_S;
            for (n, per) in pers.iter().enumerate() {
                node_energy[n] += t_data * pw.rx_mw;
                if missing[n][seq]
                    && rng.gen::<f64>() >= *per
                    && rng.gen::<f64>() >= links[n].base_loss_prob
                {
                    missing[n][seq] = false;
                }
            }
        }
        repairs += to_send.len() as u64;

        // who still needs what?
        let mut union: Vec<usize> = Vec::new();
        let mut any_incomplete = false;
        for (n, miss) in missing.iter().enumerate() {
            let missing_now: Vec<usize> = miss
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i)
                .collect();
            if !missing_now.is_empty() {
                any_incomplete = true;
                // NACK poll: one short uplink per incomplete node
                time += t_nack + TURNAROUND_S + ACK_TIMEOUT_S / 4.0;
                node_energy[n] += t_nack * pw.ack_tx_mw;
                for m in missing_now {
                    if !union.contains(&m) {
                        union.push(m);
                    }
                }
            }
        }
        if !any_incomplete || rounds >= cfg.max_rounds {
            break;
        }
        rounds += 1;
        union.sort_unstable();
        to_send = union;
    }
    repairs = repairs.saturating_sub(n_packets as u64);

    for e in node_energy.iter_mut() {
        *e += time * pw.mcu_mw;
    }
    BroadcastReport {
        total_time_s: time,
        rounds,
        repairs,
        node_complete: missing.iter().map(|m| m.iter().all(|&x| !x)).collect(),
        node_energy_mj: node_energy,
    }
}

/// The ablation the §7 text asks for: total campaign time, broadcast vs
/// the paper's sequential unicast, over the same links. Returns
/// `(sequential_s, broadcast_s)`.
pub fn sequential_vs_broadcast(
    update: &BlockedUpdate,
    links: &[LinkModel],
    seed: u64,
) -> (f64, f64) {
    let seq_total: f64 = links
        .iter()
        .enumerate()
        .map(|(i, l)| {
            crate::session::run_session(
                update,
                l,
                &crate::session::SessionConfig {
                    max_attempts: 40,
                    seed: node_stream_seed(seed, i as u64, STREAM_SESSION),
                },
            )
            .duration_s
        })
        .sum();
    let bc = run_broadcast(
        update,
        links,
        &BroadcastConfig {
            max_rounds: 12,
            seed,
        },
    );
    (seq_total, bc.total_time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FirmwareImage;

    fn links(n: usize, rssi: f64) -> Vec<LinkModel> {
        (0..n)
            .map(|i| LinkModel::from_downlink(rssi - i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn broadcast_completes_on_good_links() {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("m", 30_000, 1));
        let rep = run_broadcast(&upd, &links(10, -90.0), &BroadcastConfig::default());
        assert!(rep.all_complete());
        assert_eq!(rep.rounds, 0, "clean links need no repair");
    }

    #[test]
    fn broadcast_beats_sequential_by_an_order_of_magnitude() {
        // the §7 motivation: 20 nodes, one shared broadcast instead of
        // 20 unicast sessions
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("m", 40_000, 2));
        let ls = links(20, -92.0);
        let (seq, bc) = sequential_vs_broadcast(&upd, &ls, 7);
        assert!(
            bc < seq / 10.0,
            "broadcast {bc:.0}s must crush sequential {seq:.0}s on 20 nodes"
        );
    }

    #[test]
    fn lossy_nodes_drive_repair_rounds() {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("m", 25_000, 3));
        // one marginal node among good ones (−121 ≈ 1 dB below the
        // BW500 demodulation threshold → high PER on 68-byte packets)
        let mut ls = links(5, -90.0);
        ls.push(LinkModel::from_downlink(-121.0));
        let rep = run_broadcast(
            &upd,
            &ls,
            &BroadcastConfig {
                max_rounds: 30,
                seed: 5,
            },
        );
        assert!(rep.rounds > 0, "marginal node must trigger repairs");
        assert!(rep.repairs > 0);
        // the good nodes were done after round 0 regardless
        for c in &rep.node_complete[..5] {
            assert!(c);
        }
    }

    #[test]
    fn unreachable_node_does_not_hang_campaign() {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("m", 20_000, 4));
        let mut ls = links(3, -90.0);
        ls.push(LinkModel::from_downlink(-135.0)); // dead
        let rep = run_broadcast(
            &upd,
            &ls,
            &BroadcastConfig {
                max_rounds: 5,
                seed: 6,
            },
        );
        assert!(!rep.node_complete[3]);
        assert!(rep.node_complete[..3].iter().all(|&c| c));
        assert_eq!(rep.rounds, 5, "bounded by max_rounds");
    }

    #[test]
    fn per_node_energy_is_comparable_to_unicast_rx() {
        // broadcast nodes listen to the whole stream once (plus repairs)
        // — energy per node should be within ~2x of a unicast session
        let upd = BlockedUpdate::build(&FirmwareImage::ble_fpga(5));
        let ls = links(10, -90.0);
        let bc = run_broadcast(&upd, &ls, &BroadcastConfig::default());
        let uni =
            crate::session::run_session(&upd, &ls[0], &crate::session::SessionConfig::default());
        let e = bc.node_energy_mj[0];
        assert!(
            e < uni.node_energy_mj * 2.0 && e > uni.node_energy_mj * 0.3,
            "broadcast node energy {e:.0} vs unicast {:.0}",
            uni.node_energy_mj
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let upd = BlockedUpdate::build(&FirmwareImage::mcu("m", 15_000, 7));
        let ls = links(4, -100.0);
        let a = run_broadcast(
            &upd,
            &ls,
            &BroadcastConfig {
                max_rounds: 8,
                seed: 9,
            },
        );
        let b = run_broadcast(
            &upd,
            &ls,
            &BroadcastConfig {
                max_rounds: 8,
                seed: 9,
            },
        );
        assert_eq!(a, b);
    }
}

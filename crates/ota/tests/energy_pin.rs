//! Regression gate for the power-model refactor: moving `ota::session`'s
//! private power constants into the shared
//! `tinysdr_power::state::OtaEnergyModel` must not move a single
//! reported number.
//!
//! The pins below were captured from the pre-refactor engine (private
//! `mod power` constants) with `{:?}` formatting — shortest
//! round-trippable f64 literals — and are compared **bit-identically**
//! (`==`, no tolerance). If a change to the shared model shifts any of
//! these, the test names exactly which paper-anchored figure moved.

use tinysdr_ota::blocks::BlockedUpdate;
use tinysdr_ota::image::FirmwareImage;
use tinysdr_ota::session::{run_session, LinkModel, SessionConfig};

struct Pin {
    name: &'static str,
    node_mj: f64,
    rx_mj: f64,
    tx_mj: f64,
    duration_s: f64,
}

#[test]
fn session_energies_are_bit_identical_to_pre_refactor_values() {
    let link = LinkModel::from_downlink(-90.0);
    let cfg = SessionConfig::default();
    let pins = [
        (
            FirmwareImage::lora_fpga(1),
            Pin {
                name: "LoRa FPGA update",
                node_mj: 6752.873443200199,
                rx_mj: 4477.706956800141,
                tx_mj: 1652.4587520000505,
                duration_s: 151.9615560000034,
            },
        ),
        (
            FirmwareImage::ble_fpga(2),
            Pin {
                name: "BLE FPGA update",
                node_mj: 2713.5166751999855,
                rx_mj: 1799.4037247999913,
                tx_mj: 664.0542719999938,
                duration_s: 61.06611600000007,
            },
        ),
        (
            FirmwareImage::paper_mcu("mac", 3),
            Pin {
                name: "MCU update",
                node_mj: 1913.4887328000016,
                rx_mj: 1268.9436672000038,
                tx_mj: 468.29260799999736,
                duration_s: 43.06352400000005,
            },
        ),
    ];
    for (img, pin) in pins {
        let upd = BlockedUpdate::build(&img);
        let rep = run_session(&upd, &link, &cfg);
        assert!(
            rep.completed,
            "{} must complete on a -90 dBm link",
            pin.name
        );
        assert_eq!(
            rep.node_energy_mj, pin.node_mj,
            "{}: node energy drifted from the pre-refactor value",
            pin.name
        );
        assert_eq!(
            rep.rx_energy_mj, pin.rx_mj,
            "{}: RX share drifted",
            pin.name
        );
        assert_eq!(
            rep.tx_energy_mj, pin.tx_mj,
            "{}: TX share drifted",
            pin.name
        );
        assert_eq!(rep.duration_s, pin.duration_s, "{}: time drifted", pin.name);
    }
}

#[test]
fn lossy_link_energies_are_bit_identical_to_pre_refactor_values() {
    // the retransmission/timeout path multiplies the RX constant through
    // different code — pin it separately on a marginal link
    let weak = LinkModel::from_downlink(-114.0);
    let upd = BlockedUpdate::build(&FirmwareImage::ble_fpga(4));
    let rep = run_session(&upd, &weak, &SessionConfig::default());
    assert_eq!(rep.node_energy_mj, 6681.9549888001075);
    assert_eq!(rep.rx_energy_mj, 5009.743411200096);
    assert_eq!(rep.tx_energy_mj, 1197.6007680000048);
    assert_eq!(rep.duration_s, 154.69200400000284);
}

#[test]
fn paper_anchor_ranges_still_hold() {
    // belt and braces on top of the bit pins: the pinned values are the
    // ones that satisfy the paper's §5.3 anchors
    let link = LinkModel::from_downlink(-90.0);
    let cfg = SessionConfig::default();
    let lora = run_session(
        &BlockedUpdate::build(&FirmwareImage::lora_fpga(1)),
        &link,
        &cfg,
    );
    let ble = run_session(
        &BlockedUpdate::build(&FirmwareImage::ble_fpga(2)),
        &link,
        &cfg,
    );
    assert!((lora.node_energy_mj - 6144.0).abs() < 1200.0);
    assert!((ble.node_energy_mj - 2342.0).abs() < 600.0);
}

//! Property-based invariants for the OTA system.

use proptest::prelude::*;
use tinysdr_ota::lzo;
use tinysdr_ota::protocol::{packetize, OtaMessage};

proptest! {
    /// LZ compression round-trips arbitrary data.
    #[test]
    fn lzo_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzo::compress(&data);
        let d = lzo::decompress(&c, data.len()).expect("decompresses");
        prop_assert_eq!(d, data);
    }

    /// Compression of highly repetitive data always shrinks it.
    #[test]
    fn lzo_shrinks_repetition(byte in any::<u8>(), len in 256usize..8192) {
        let data = vec![byte; len];
        let c = lzo::compress(&data);
        prop_assert!(c.len() < data.len() / 10);
    }

    /// Decompression never exceeds the stated output cap.
    #[test]
    fn lzo_respects_cap(data in prop::collection::vec(any::<u8>(), 1..1024)) {
        let c = lzo::compress(&data);
        match lzo::decompress(&c, data.len() - 1) {
            Ok(out) => prop_assert!(out.len() < data.len()),
            Err(lzo::LzoError::OutputOverflow) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// OTA messages round-trip and their CRC catches any single-bit
    /// corruption.
    #[test]
    fn ota_message_round_trip(
        seq in any::<u32>(),
        chunk in prop::collection::vec(any::<u8>(), 0..=60),
        flip in any::<u16>(),
    ) {
        let m = OtaMessage::Data { seq, chunk };
        let wire = m.to_bytes().unwrap();
        prop_assert_eq!(OtaMessage::from_bytes(&wire).unwrap(), m);
        let mut bad = wire.clone();
        let i = flip as usize % bad.len();
        let bit = 1u8 << (flip % 8);
        bad[i] ^= bit;
        prop_assert!(OtaMessage::from_bytes(&bad).is_err());
    }

    /// Packetizing then concatenating the chunks reproduces the stream,
    /// with sequence numbers dense from zero.
    #[test]
    fn packetize_lossless(stream in prop::collection::vec(any::<u8>(), 0..2000)) {
        let pkts = packetize(&stream);
        let mut rebuilt = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            match p {
                OtaMessage::Data { seq, chunk } => {
                    prop_assert_eq!(*seq, i as u32);
                    rebuilt.extend_from_slice(chunk);
                }
                _ => prop_assert!(false, "packetize must emit Data"),
            }
        }
        prop_assert_eq!(rebuilt, stream);
    }
}

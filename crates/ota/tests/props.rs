//! Property-based invariants for the OTA system.

use proptest::prelude::*;
use tinysdr_ota::lzo;
use tinysdr_ota::protocol::{packetize, OtaMessage};

proptest! {
    /// LZ compression round-trips arbitrary data.
    #[test]
    fn lzo_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzo::compress(&data);
        let d = lzo::decompress(&c, data.len()).expect("decompresses");
        prop_assert_eq!(d, data);
    }

    /// Compression of highly repetitive data always shrinks it.
    #[test]
    fn lzo_shrinks_repetition(byte in any::<u8>(), len in 256usize..8192) {
        let data = vec![byte; len];
        let c = lzo::compress(&data);
        prop_assert!(c.len() < data.len() / 10);
    }

    /// Decompression never exceeds the stated output cap.
    #[test]
    fn lzo_respects_cap(data in prop::collection::vec(any::<u8>(), 1..1024)) {
        let c = lzo::compress(&data);
        match lzo::decompress(&c, data.len() - 1) {
            Ok(out) => prop_assert!(out.len() < data.len()),
            Err(lzo::LzoError::OutputOverflow) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// OTA messages round-trip and their CRC catches any single-bit
    /// corruption.
    #[test]
    fn ota_message_round_trip(
        seq in any::<u32>(),
        chunk in prop::collection::vec(any::<u8>(), 0..=60),
        flip in any::<u16>(),
    ) {
        let m = OtaMessage::Data { seq, chunk };
        let wire = m.to_bytes().unwrap();
        prop_assert_eq!(OtaMessage::from_bytes(&wire).unwrap(), m);
        let mut bad = wire.clone();
        let i = flip as usize % bad.len();
        let bit = 1u8 << (flip % 8);
        bad[i] ^= bit;
        prop_assert!(OtaMessage::from_bytes(&bad).is_err());
    }

    /// Packetizing then concatenating the chunks reproduces the stream,
    /// with sequence numbers dense from zero.
    #[test]
    fn packetize_lossless(stream in prop::collection::vec(any::<u8>(), 0..2000)) {
        let pkts = packetize(&stream);
        let mut rebuilt = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            match p {
                OtaMessage::Data { seq, chunk } => {
                    prop_assert_eq!(*seq, i as u32);
                    rebuilt.extend_from_slice(chunk);
                }
                _ => prop_assert!(false, "packetize must emit Data"),
            }
        }
        prop_assert_eq!(rebuilt, stream);
    }
}

use tinysdr_ota::aggregate::{LifeProjection, NodeAggregate, RetainMode};
use tinysdr_ota::checkpoint::{checksum, CampaignCheckpoint, CheckpointError};
use tinysdr_ota::session::SessionReport;
use tinysdr_power::battery::Battery;
use tinysdr_power::energy::EnergyLedger;

/// Build a synthetic (but internally consistent) session report from
/// raw non-negative draws.
fn synth_report(duration_s: f64, energy_scale: f64, bytes: u64, completed: bool) -> SessionReport {
    let rx = energy_scale * 0.6;
    let tx = energy_scale * 0.1;
    let mcu = energy_scale * 0.2;
    let flash = energy_scale * 0.1;
    let mut ledger = EnergyLedger::new();
    let ns = (duration_s * 1e9) as u64;
    ledger.record_energy("radio_rx", rx, ns / 2);
    ledger.record_energy("radio_tx", tx, ns / 8);
    ledger.record_energy("mcu", mcu, ns / 4);
    ledger.record_energy("flash", flash, ns / 8);
    SessionReport {
        duration_s,
        data_packets: (bytes / 200) as u32,
        retransmissions: (bytes % 7) as u32,
        bytes_over_air: bytes,
        node_energy_mj: rx + tx + mcu + flash,
        rx_energy_mj: rx,
        tx_energy_mj: tx,
        ledger,
        completed,
    }
}

proptest! {
    /// A campaign checkpoint round-trips bit for bit through the
    /// on-disk codec, for any session mix and both retention modes.
    #[test]
    fn checkpoint_round_trips_bit_for_bit(
        raw in prop::collection::vec((0.01f64..5e4, 0.1f64..1e6, 1u64..1_000_000, 0u8..4), 0..60),
        exact_mode in 0u8..2,
        fingerprint in 0u64..u64::MAX,
        merged in 0u64..1000,
    ) {
        let retain = if exact_mode == 0 {
            RetainMode::Exact
        } else {
            RetainMode::sketch()
        };
        let proj = LifeProjection {
            period_s: 86_400.0,
            sleep_mw: 0.03,
            battery: Battery::lipo_1000mah(),
        };
        let mut agg = NodeAggregate::new(retain, Some(proj));
        let mut reports = Vec::new();
        for (i, &(dur, mj, bytes, flags)) in raw.iter().enumerate() {
            let rep = synth_report(dur, mj, bytes, flags % 2 == 0);
            agg.push_session(&rep);
            if retain.is_exact() {
                reports.push((i as u32, rep));
            }
        }
        let ck = CampaignCheckpoint {
            fingerprint,
            merged_blocks: merged,
            total_blocks: merged + 1,
            agg,
            reports,
        };
        let bytes = ck.encode();
        let back = CampaignCheckpoint::decode(&bytes).expect("round trip");
        prop_assert_eq!(&back, &ck);
        // and the re-encoding is byte-identical (deterministic format)
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Any single-bit corruption anywhere in the file is detected — the
    /// decoder errors out rather than returning a different checkpoint.
    #[test]
    fn checkpoint_detects_single_bit_corruption(
        raw in prop::collection::vec((0.01f64..5e4, 0.1f64..1e6, 1u64..1_000_000, 0u8..4), 1..20),
        flip_ppm in 0u32..1_000_000,
    ) {
        let mut agg = NodeAggregate::new(RetainMode::Exact, None);
        let mut reports = Vec::new();
        for (i, &(dur, mj, bytes, flags)) in raw.iter().enumerate() {
            let rep = synth_report(dur, mj, bytes, flags % 2 == 0);
            agg.push_session(&rep);
            reports.push((i as u32, rep));
        }
        let ck = CampaignCheckpoint {
            fingerprint: 7,
            merged_blocks: 1,
            total_blocks: 2,
            agg,
            reports,
        };
        let mut bytes = ck.encode();
        let bit = (flip_ppm as usize * bytes.len() * 8) / 1_000_000;
        bytes[bit / 8] ^= 1 << (bit % 8);
        match CampaignCheckpoint::decode(&bytes) {
            Ok(back) => prop_assert!(
                back == ck,
                "corruption at bit {bit} silently changed the checkpoint"
            ),
            Err(CheckpointError::Corrupt(_)) | Err(CheckpointError::Mismatch(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// The trailing checksum is a pure function of the bytes and
    /// changes under any flipped word.
    #[test]
    fn checkpoint_checksum_is_sensitive(data in prop::collection::vec(any::<u8>(), 1..256), at_ppm in 0u32..1_000_000) {
        let h = checksum(&data);
        prop_assert_eq!(h, checksum(&data));
        let mut other = data.clone();
        let at = (at_ppm as usize * data.len()) / 1_000_000;
        other[at] ^= 0x01;
        prop_assert_ne!(h, checksum(&other));
    }
}
